"""Parameter-space tests: bounds, encode/decode, mutators."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.rand import substream
from repro.scenarios.space import (
    MAX_EXTREME_LIFETIME_MASS,
    MUTATORS,
    SEARCH_PARAMETERS,
    SPECS_BY_NAME,
    build_profile,
    clamp_values,
    parameter_vector,
    validate_values,
)
from repro.workloads.catalog import get_profile


class TestParameterSpec:
    def test_clamp_clips_into_bounds(self):
        spec = SPECS_BY_NAME["code_expansion"]
        assert spec.clamp(0.0) == spec.low
        assert spec.clamp(100.0) == spec.high
        assert spec.clamp(3.0) == 3.0

    def test_integer_specs_round(self):
        spec = SPECS_BY_NAME["hot_records"]
        assert spec.clamp(99.6) == 100.0
        assert spec.clamp(99.6) == int(spec.clamp(99.6))

    def test_validate_raises_out_of_bounds(self):
        spec = SPECS_BY_NAME["unmap_fraction"]
        with pytest.raises(ConfigError, match="unmap_fraction"):
            spec.validate(0.7)

    def test_stepped_stays_in_bounds(self):
        for spec in SEARCH_PARAMETERS:
            for direction in (1, -1):
                value = spec.stepped(spec.high, direction)
                assert spec.low <= value <= spec.high

    def test_stepped_moves_from_interior(self):
        spec = SPECS_BY_NAME["total_trace_kb"]
        mid = 1000.0
        assert spec.stepped(mid, 1) > mid
        assert spec.stepped(mid, -1) < mid

    def test_jitter_deterministic_and_bounded(self):
        spec = SPECS_BY_NAME["reaccess_long"]
        a = spec.jitter(50.0, substream(3, "t"))
        b = spec.jitter(50.0, substream(3, "t"))
        assert a == b
        assert spec.low <= a <= spec.high


class TestVectorRoundTrip:
    def test_encode_covers_every_dimension(self):
        values = parameter_vector(get_profile("word"))
        assert set(values) == set(SPECS_BY_NAME)

    def test_build_then_encode_is_identity(self):
        base = get_profile("word")
        values = clamp_values(parameter_vector(base))
        rebuilt = parameter_vector(build_profile(base, values))
        for name, value in values.items():
            spec = SPECS_BY_NAME[name]
            expected = float(int(value)) if spec.integer else value
            assert rebuilt[name] == pytest.approx(expected)

    def test_build_profile_renames(self):
        base = get_profile("word")
        values = clamp_values(parameter_vector(base))
        assert build_profile(base, values, name="adv").name == "adv"

    def test_lifetime_mix_sums_to_one(self):
        base = get_profile("word")
        values = clamp_values(parameter_vector(base))
        values["lifetime_short"] = 0.5
        values["lifetime_long"] = 0.3
        profile = build_profile(base, clamp_values(values))
        mix = profile.lifetime_mix
        assert mix.short + mix.medium + mix.long == pytest.approx(1.0)


class TestValidation:
    def test_unknown_parameter_rejected(self):
        with pytest.raises(ConfigError, match="unknown scenario parameter"):
            validate_values({"bogus": 1.0})

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ConfigError, match="pin_fraction"):
            validate_values({"pin_fraction": 0.5})

    def test_overfull_lifetime_mix_rejected(self):
        with pytest.raises(ConfigError, match="lifetime_short"):
            validate_values({"lifetime_short": 0.9, "lifetime_long": 0.9})

    def test_clamp_rescales_lifetime_mass_under_ceiling(self):
        clamped = clamp_values({"lifetime_short": 0.9, "lifetime_long": 0.9})
        total = clamped["lifetime_short"] + clamped["lifetime_long"]
        assert total <= MAX_EXTREME_LIFETIME_MASS
        validate_values(clamped)  # must not raise

    def test_clamp_output_always_validates(self):
        # The fuzzer relies on this: any clamped vector builds a profile.
        wild = {name: spec.high * 2 for name, spec in SPECS_BY_NAME.items()}
        validate_values(clamp_values(wild))


class TestMutators:
    def test_every_mutator_yields_valid_vector(self):
        base = clamp_values(parameter_vector(get_profile("gcc")))
        for name in sorted(MUTATORS):
            mutated = MUTATORS[name](dict(base), substream(11, name))
            validate_values(mutated)
            profile = build_profile(get_profile("gcc"), mutated)
            assert profile.n_phases >= 1

    def test_mutators_deterministic(self):
        base = clamp_values(parameter_vector(get_profile("gcc")))
        for name in sorted(MUTATORS):
            a = MUTATORS[name](dict(base), substream(5, name))
            b = MUTATORS[name](dict(base), substream(5, name))
            assert a == b

    def test_unmap_storm_raises_unmap_fraction(self):
        base = clamp_values(parameter_vector(get_profile("word")))
        mutated = MUTATORS["unmap-storm"](dict(base), substream(1, "u"))
        assert mutated["unmap_fraction"] >= 0.3

    def test_churn_shortens_lifetimes(self):
        base = clamp_values(parameter_vector(get_profile("word")))
        mutated = MUTATORS["churn"](dict(base), substream(1, "c"))
        assert mutated["lifetime_short"] >= 0.7
        assert mutated["lifetime_long"] <= 0.1
