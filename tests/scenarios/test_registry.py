"""Registry institutionalization: catalog wiring, persistence, isolation."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.errors import ConfigError, ScenarioError, WorkloadError
from repro.scenarios import registry
from repro.scenarios.artifact import ScenarioArtifact
from repro.workloads.catalog import all_profiles, get_profile

from tests.scenarios.test_artifact import make_artifact


class TestBuiltins:
    def test_builtins_register_on_first_use(self):
        names = [artifact.name for artifact in registry.registered()]
        assert len(names) >= 2
        assert names == sorted(names)
        assert all(name.startswith("cx-") for name in names)

    def test_get_scenario_unknown_raises(self):
        with pytest.raises(ScenarioError, match="unknown scenario"):
            registry.get_scenario("cx-nonexistent")

    def test_static_benchmark_count_untouched(self):
        # The paper's 38-benchmark population must not absorb scenario
        # profiles by default.
        registry.ensure_builtin()
        assert len(all_profiles()) == 38
        with_scenarios = all_profiles(include_scenarios=True)
        assert len(with_scenarios) > 38

    def test_scenario_profiles_resolve_by_name(self):
        for artifact in registry.registered():
            profile = get_profile(artifact.name)
            assert profile == artifact.profile
            assert profile.suite == "scenario"


class TestRegister:
    def test_register_is_idempotent_for_same_content(self):
        artifact = make_artifact()
        registry.register(artifact)
        registry.register(artifact)  # no error
        assert registry.get_scenario("cx-test") == artifact

    def test_register_rejects_name_reuse_with_new_content(self):
        registry.register(make_artifact())
        conflicting = make_artifact(capacity_fraction=0.5)
        with pytest.raises(ConfigError, match="different content"):
            registry.register(conflicting)

    def test_register_replace_overwrites(self):
        registry.register(make_artifact())
        conflicting = make_artifact(capacity_fraction=0.5)
        registry.register(conflicting, replace=True)
        assert registry.get_scenario("cx-test") == conflicting

    def test_register_rejects_static_name_collision(self):
        word = get_profile("word")
        artifact = make_artifact(
            name="word", profile=replace(word, suite="scenario")
        )
        with pytest.raises(WorkloadError, match="collides"):
            registry.register(artifact)


class TestDirectoryLoading:
    def test_load_directory(self, tmp_path):
        artifact = make_artifact()
        artifact.save(tmp_path)
        loaded = registry.load_directory(tmp_path)
        assert loaded == (artifact,)
        assert registry.get_scenario("cx-test") == artifact

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(ConfigError, match="does not exist"):
            registry.load_directory(tmp_path / "absent")

    def test_env_directory_loads_with_builtins(self, tmp_path, monkeypatch):
        make_artifact().save(tmp_path)
        monkeypatch.setenv(registry.ENV_DIR, str(tmp_path))
        registry.reset()
        names = [artifact.name for artifact in registry.registered()]
        assert "cx-test" in names
        assert len(names) >= 3  # builtins still present

    def test_reset_reloads_builtins_lazily(self):
        registry.register(make_artifact())
        registry.reset()
        names = [artifact.name for artifact in registry.registered()]
        assert "cx-test" not in names
        assert len(names) >= 2
