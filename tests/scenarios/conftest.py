"""Registry isolation for the scenario tests.

The scenario registry and the workload catalog both hold process-wide
dynamic state (registered artifacts / profiles).  Every test in this
package runs against a snapshot-restored copy so registrations made by
one test can never leak into another — or into the rest of the suite.
"""

from __future__ import annotations

import pytest

from repro.scenarios import registry
from repro.workloads import catalog


@pytest.fixture(autouse=True)
def clean_registry(monkeypatch):
    """Snapshot and restore both dynamic populations around each test."""
    monkeypatch.delenv(registry.ENV_DIR, raising=False)
    saved_registry = dict(registry._registry)
    saved_loaded = registry._builtin_loaded
    saved_extra = dict(catalog._EXTRA_PROFILES)
    registry.reset()
    catalog._EXTRA_PROFILES.clear()
    yield
    registry._registry.clear()
    registry._registry.update(saved_registry)
    registry._builtin_loaded = saved_loaded
    catalog._EXTRA_PROFILES.clear()
    catalog._EXTRA_PROFILES.update(saved_extra)
