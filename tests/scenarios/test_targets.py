"""Target statistics, measurement, and the calibration objective."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.metrics.lifetimes import BUCKET_LABELS
from repro.scenarios.targets import (
    CAPACITY_FRACTIONS,
    ScenarioTarget,
    WorkloadStatistics,
    measure_profile,
    objective,
    target_from_profile,
)
from repro.workloads.catalog import get_profile

SCALE = 512.0


def stats(curve=(0.2, 0.1, 0.05, 0.01), unmap=0.1):
    return WorkloadStatistics(
        capacity_fractions=CAPACITY_FRACTIONS,
        miss_curve=curve,
        lifetime_fractions=(20.0, 20.0, 20.0, 20.0, 20.0),
        insertion_rate_kb_s=10.0,
        unmap_fraction=unmap,
    )


class TestWorkloadStatistics:
    def test_curve_length_must_match_probes(self):
        with pytest.raises(ConfigError, match="miss curve"):
            WorkloadStatistics(
                capacity_fractions=(0.25, 0.5),
                miss_curve=(0.1,),
                lifetime_fractions=(20.0,) * len(BUCKET_LABELS),
                insertion_rate_kb_s=1.0,
                unmap_fraction=0.0,
            )

    def test_histogram_needs_all_buckets(self):
        with pytest.raises(ConfigError, match="buckets"):
            WorkloadStatistics(
                capacity_fractions=(0.25,),
                miss_curve=(0.1,),
                lifetime_fractions=(50.0, 50.0),
                insertion_rate_kb_s=1.0,
                unmap_fraction=0.0,
            )

    def test_dict_round_trip(self):
        original = stats()
        assert WorkloadStatistics.from_dict(original.to_dict()) == original

    def test_from_dict_missing_fields(self):
        with pytest.raises(ConfigError, match="missing fields"):
            WorkloadStatistics.from_dict({"miss_curve": [0.1]})

    def test_from_dict_rejects_non_mapping(self):
        with pytest.raises(ConfigError, match="mapping"):
            WorkloadStatistics.from_dict([1, 2])


class TestScenarioTarget:
    def test_requires_name(self):
        with pytest.raises(ConfigError, match="non-empty"):
            ScenarioTarget(name="", statistics=stats())

    def test_unknown_weight_component(self):
        with pytest.raises(ConfigError, match="objective component"):
            ScenarioTarget(
                name="t", statistics=stats(), weights=(("bogus", 1.0),)
            )

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigError, match="non-negative"):
            ScenarioTarget(
                name="t", statistics=stats(), weights=(("miss_curve", -1.0),)
            )

    def test_dict_round_trip(self):
        original = ScenarioTarget(name="t", statistics=stats())
        rebuilt = ScenarioTarget.from_dict(original.to_dict())
        assert rebuilt == original

    def test_from_dict_needs_name_and_statistics(self):
        with pytest.raises(ConfigError, match="'name' and 'statistics'"):
            ScenarioTarget.from_dict({"name": "t"})


class TestObjective:
    def test_zero_distance_at_identity(self):
        target = ScenarioTarget(name="t", statistics=stats())
        total, components = objective(target, stats())
        assert total == 0.0
        assert all(value == 0.0 for value in components.values())

    def test_mismatched_probes_rejected(self):
        target = ScenarioTarget(name="t", statistics=stats())
        other = WorkloadStatistics(
            capacity_fractions=(0.25,),
            miss_curve=(0.1,),
            lifetime_fractions=(20.0,) * len(BUCKET_LABELS),
            insertion_rate_kb_s=10.0,
            unmap_fraction=0.1,
        )
        with pytest.raises(ConfigError, match="probes"):
            objective(target, other)

    def test_miss_curve_dominates(self):
        target = ScenarioTarget(name="t", statistics=stats())
        worse_curve = stats(curve=(0.4, 0.3, 0.25, 0.21))
        worse_unmap = stats(unmap=0.3)
        curve_total, _ = objective(target, worse_curve)
        unmap_total, _ = objective(target, worse_unmap)
        assert curve_total > unmap_total


class TestMeasureProfile:
    def test_measurement_is_deterministic(self):
        word = get_profile("word")
        a = measure_profile(word, 7, SCALE)
        b = measure_profile(word, 7, SCALE)
        assert a == b

    def test_miss_curve_monotone_in_capacity(self):
        measured = measure_profile(get_profile("word"), 7, SCALE)
        curve = measured.miss_curve
        assert all(a >= b for a, b in zip(curve, curve[1:]))

    def test_bad_fraction_rejected(self):
        with pytest.raises(ConfigError, match="capacity fraction"):
            measure_profile(get_profile("word"), 7, SCALE, fractions=(1.5,))

    def test_target_from_profile_scores_zero_on_itself(self):
        word = get_profile("word")
        target = target_from_profile(word, 7, SCALE)
        assert target.name == "word"
        total, _ = objective(target, measure_profile(word, 7, SCALE))
        assert total == 0.0
