"""Adversarial search: regret measurement, shrinking, campaign wiring."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.scenarios.fuzz import (
    CONTENDERS,
    DEFAULT_MIN_REGRET,
    fuzz,
    regret_of,
    shrink,
)
from repro.scenarios.space import SPECS_BY_NAME, clamp_values, parameter_vector
from repro.workloads.catalog import get_profile

SCALE = 512.0


class TestRegretOf:
    def test_regret_is_antisymmetric(self):
        word = get_profile("word")
        a, va, ra = regret_of(word, "generational", "unified", 7, SCALE, 0.25)
        b, vb, rb = regret_of(word, "unified", "generational", 7, SCALE, 0.25)
        assert a == pytest.approx(-b)
        assert va == rb
        assert ra == vb

    def test_unknown_contender_rejected(self):
        with pytest.raises(ConfigError, match="unknown contender"):
            regret_of(get_profile("word"), "bogus", "unified", 7, SCALE, 0.25)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ConfigError, match="capacity fraction"):
            regret_of(
                get_profile("word"), "generational", "unified", 7, SCALE, 0.0
            )

    def test_every_contender_constructs(self):
        for name in sorted(CONTENDERS):
            manager = CONTENDERS[name](64 * 1024)
            assert hasattr(manager, "insert")


class TestShrink:
    """Shrinking runs against a synthetic evaluate function, so these
    tests pin the minimizer's contract without any simulation."""

    @staticmethod
    def _setup():
        base = clamp_values(parameter_vector(get_profile("word")))
        mutated = dict(base)
        mutated["unmap_fraction"] = 0.5
        mutated["total_trace_kb"] = base["total_trace_kb"] * 4
        mutated["hot_records"] = 16.0
        return clamp_values(mutated), base

    def test_reverts_irrelevant_dimensions(self):
        mutated, base = self._setup()

        # Only unmap_fraction matters: regret is high iff it stays big.
        def evaluate(values):
            return 0.05 if values["unmap_fraction"] >= 0.4 else 0.0

        shrunk, steps = shrink(mutated, base, evaluate, DEFAULT_MIN_REGRET)
        assert shrunk["total_trace_kb"] == base["total_trace_kb"]
        assert shrunk["hot_records"] == base["hot_records"]
        assert shrunk["unmap_fraction"] >= 0.4
        assert steps >= 2

    def test_monotone_difference_set_never_grows(self):
        mutated, base = self._setup()
        trail = []

        def evaluate(values):
            trail.append(dict(values))
            return 0.05  # accept everything: maximal shrinking

        shrunk, _ = shrink(mutated, base, evaluate, DEFAULT_MIN_REGRET)

        def diff(values):
            return {
                name
                for name in values
                if values[name] != base.get(name)
            }

        # No tried candidate ever introduces a dimension that did not
        # already differ: the shrinker only removes or narrows.
        initial = diff(mutated)
        for candidate in trail:
            assert diff(candidate) <= initial
        # With every step accepted, everything reverts to base.
        assert diff(shrunk) == set()

    def test_result_still_clears_threshold(self):
        mutated, base = self._setup()

        def evaluate(values):
            # Regret decays as the vector approaches base.
            return 0.02 + 0.06 * abs(values["unmap_fraction"] - base["unmap_fraction"])

        shrunk, _ = shrink(mutated, base, evaluate, 0.03)
        assert evaluate(shrunk) >= 0.03

    def test_identical_vectors_shrink_to_nothing(self):
        base = clamp_values(parameter_vector(get_profile("word")))
        shrunk, steps = shrink(dict(base), base, lambda v: 1.0, 0.01)
        assert shrunk == base
        assert steps == 0


class TestFuzzValidation:
    def test_victim_must_differ_from_reference(self):
        with pytest.raises(ConfigError, match="must differ"):
            fuzz(victim="unified", reference="unified")

    def test_unknown_victim(self):
        with pytest.raises(ConfigError, match="unknown contender"):
            fuzz(victim="bogus")

    def test_rounds_must_be_positive(self):
        with pytest.raises(ConfigError, match="rounds"):
            fuzz(rounds=0)

    def test_min_regret_must_be_positive(self):
        with pytest.raises(ConfigError, match="min_regret"):
            fuzz(min_regret=0.0)

    def test_needs_a_base(self):
        with pytest.raises(ConfigError, match="base profile"):
            fuzz(bases=())


class TestFuzzCampaign:
    def test_seeded_campaign_is_deterministic(self):
        kwargs = dict(
            victim="generational",
            reference="unified",
            seed=13,
            scale=SCALE,
            rounds=3,
            bases=("word",),
            min_regret=0.5,  # nothing survives: structure-only check
        )
        a = fuzz(**kwargs)
        b = fuzz(**kwargs)
        assert a == b
        assert a.rounds == 3
        assert a.candidates == 3
        assert a.counterexamples == ()
        assert a.best_regret < 0.5

    def test_trivial_threshold_yields_counterexample(self):
        # With an epsilon threshold any measurable difference survives,
        # exercising the shrink + dedup + re-measure pipeline quickly.
        result = fuzz(
            victim="flush-all",
            reference="unified",
            seed=13,
            scale=SCALE,
            rounds=2,
            bases=("word",),
            min_regret=1e-6,
            max_counterexamples=1,
        )
        assert len(result.counterexamples) == 1
        cx = result.counterexamples[0]
        assert cx.regret >= 1e-6
        assert cx.victim == "flush-all"
        assert cx.mutators
        assert cx.profile.name.startswith("fuzz-flush-all-r")
