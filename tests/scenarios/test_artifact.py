"""Content-addressed scenario artifacts: identity, bytes, round trips."""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.errors import ConfigError
from repro.scenarios.artifact import (
    ARTIFACT_FORMAT,
    ScenarioArtifact,
    counterexample_name,
    profile_from_dict,
    profile_to_dict,
    scenario_id,
)
from repro.scenarios.registry import BUILTIN_COUNTEREXAMPLES
from repro.workloads.catalog import get_profile


def make_artifact(name="cx-test", **overrides):
    fields = dict(
        kind="counterexample",
        name=name,
        profile=replace(get_profile("word"), name=name, suite="scenario"),
        seed=42,
        scale=128.0,
        victim="generational",
        reference="unified",
        capacity_fraction=0.25,
        expected_regret=0.02,
    )
    fields.update(overrides)
    return ScenarioArtifact(**fields)


class TestProfilePayload:
    def test_round_trip(self):
        word = get_profile("word")
        assert profile_from_dict(profile_to_dict(word)) == word

    def test_rejects_non_mapping(self):
        with pytest.raises(ConfigError, match="mapping"):
            profile_from_dict([])

    def test_rejects_missing_mix(self):
        payload = profile_to_dict(get_profile("word"))
        del payload["lifetime_mix"]
        with pytest.raises(ConfigError, match="lifetime_mix"):
            profile_from_dict(payload)

    def test_rejects_unknown_field(self):
        payload = profile_to_dict(get_profile("word"))
        payload["bogus"] = 1
        with pytest.raises(ConfigError, match="malformed profile"):
            profile_from_dict(payload)


class TestValidation:
    def test_unknown_kind(self):
        with pytest.raises(ConfigError, match="artifact kind"):
            make_artifact(kind="mystery")

    def test_counterexample_needs_outcome_fields(self):
        with pytest.raises(ConfigError, match="missing fields"):
            make_artifact(expected_regret=None)

    def test_victim_must_differ(self):
        with pytest.raises(ConfigError, match="must differ"):
            make_artifact(victim="unified", reference="unified")

    def test_fraction_bounds(self):
        with pytest.raises(ConfigError, match="capacity_fraction"):
            make_artifact(capacity_fraction=1.5)

    def test_scale_positive(self):
        with pytest.raises(ConfigError, match="scale"):
            make_artifact(scale=0.0)


class TestIdentity:
    def test_id_shape(self):
        sid = make_artifact().scenario_id
        assert sid.startswith("s")
        assert len(sid) == 32

    def test_id_ignores_names_and_outcomes(self):
        # Names derive from the digest and outcomes are measured after
        # naming, so neither may feed the digest.
        a = make_artifact()
        b = make_artifact(
            name="cx-other",
            profile=replace(a.profile, name="cx-other"),
            expected_regret=0.9,
            provenance={"mutators": ["churn"]},
        )
        assert a.scenario_id == b.scenario_id

    def test_id_tracks_content(self):
        a = make_artifact()
        b = make_artifact(capacity_fraction=0.5)
        c = make_artifact(seed=43)
        assert len({a.scenario_id, b.scenario_id, c.scenario_id}) == 3

    def test_counterexample_name_embeds_digest(self):
        sid = make_artifact().scenario_id
        name = counterexample_name("generational", "unified", sid)
        assert name == f"cx-generational-vs-unified-{sid[1:9]}"


class TestSerialization:
    def test_to_json_is_byte_stable(self):
        assert make_artifact().to_json() == make_artifact().to_json()
        assert make_artifact().to_json().endswith("\n")

    def test_dict_round_trip(self):
        original = make_artifact(provenance={"mutators": ["churn"]})
        rebuilt = ScenarioArtifact.from_dict(original.to_dict())
        assert rebuilt == original
        assert rebuilt.scenario_id == original.scenario_id

    def test_from_dict_rejects_id_mismatch(self):
        payload = make_artifact().to_dict()
        payload["id"] = "s" + "0" * 31
        with pytest.raises(ConfigError, match="id mismatch"):
            ScenarioArtifact.from_dict(payload)

    def test_from_dict_rejects_future_format(self):
        payload = make_artifact().to_dict()
        payload["format"] = ARTIFACT_FORMAT + 1
        with pytest.raises(ConfigError, match="format"):
            ScenarioArtifact.from_dict(payload)

    def test_from_dict_missing_fields(self):
        with pytest.raises(ConfigError, match="missing fields"):
            ScenarioArtifact.from_dict({"kind": "counterexample"})

    def test_save_load_round_trip(self, tmp_path):
        original = make_artifact()
        path = original.save(tmp_path)
        assert path.name == f"{original.scenario_id}.json"
        assert ScenarioArtifact.load(path) == original

    def test_save_is_byte_stable(self, tmp_path):
        original = make_artifact()
        first = original.save(tmp_path).read_bytes()
        second = original.save(tmp_path).read_bytes()
        assert first == second

    def test_load_rejects_corrupt_json(self, tmp_path):
        path = tmp_path / "s0.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigError, match="not JSON"):
            ScenarioArtifact.load(path)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            ScenarioArtifact.load(tmp_path / "absent.json")


class TestBuiltinPayloads:
    def test_builtin_ids_verify(self):
        # from_dict recomputes the digest and compares it against the
        # declared id, so this also proves the checked-in payloads were
        # not hand-edited.
        for payload in BUILTIN_COUNTEREXAMPLES:
            artifact = ScenarioArtifact.from_dict(payload)
            assert artifact.scenario_id == payload["id"]
            assert artifact.name == payload["name"]
            assert artifact.profile.suite == "scenario"

    def test_builtin_payloads_survive_reserialization(self):
        for payload in BUILTIN_COUNTEREXAMPLES:
            artifact = ScenarioArtifact.from_dict(payload)
            rebuilt = ScenarioArtifact.from_dict(json.loads(artifact.to_json()))
            assert rebuilt == artifact
            # The checked-in payload is a subset of the canonical dict
            # (it omits keys that are None for counterexamples).
            canonical = artifact.to_dict()
            assert all(canonical[key] == value for key, value in payload.items())
