"""Inverse synthesis: determinism, convergence, validation."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.scenarios.calibrate import calibrate
from repro.scenarios.space import clamp_values, parameter_vector
from repro.scenarios.targets import (
    ROUND_TRIP_TOLERANCE,
    target_from_profile,
)
from repro.workloads.catalog import get_profile

SCALE = 512.0


def word_target():
    return target_from_profile(get_profile("word"), 7, SCALE)


class TestValidation:
    def test_budget_must_be_positive(self):
        with pytest.raises(ConfigError, match="budget"):
            calibrate(word_target(), get_profile("word"), budget=0)

    def test_tolerance_must_be_positive(self):
        with pytest.raises(ConfigError, match="tolerance"):
            calibrate(word_target(), get_profile("word"), tolerance=0.0)

    def test_scale_must_be_positive(self):
        with pytest.raises(ConfigError, match="scale"):
            calibrate(word_target(), get_profile("word"), scale=-1.0)

    def test_unknown_parameter_restriction(self):
        with pytest.raises(ConfigError, match="unknown search parameters"):
            calibrate(
                word_target(), get_profile("word"), parameters=("bogus",)
            )

    def test_empty_parameter_restriction(self):
        with pytest.raises(ConfigError, match="selects nothing"):
            calibrate(word_target(), get_profile("word"), parameters=())


class TestDeterminism:
    def test_same_seed_same_trajectory(self):
        target = word_target()
        base = get_profile("excel")
        kwargs = dict(
            seed=11,
            scale=SCALE,
            budget=8,
            parameters=("total_trace_kb", "unmap_fraction"),
        )
        a = calibrate(target, base, **kwargs)
        b = calibrate(target, base, **kwargs)
        assert a.best_values == b.best_values
        assert a.best_objective == b.best_objective
        assert a.history == b.history
        assert a.evaluations == b.evaluations

    def test_budget_bounds_evaluations(self):
        result = calibrate(
            word_target(),
            get_profile("excel"),
            seed=11,
            scale=SCALE,
            budget=5,
            parameters=("total_trace_kb",),
        )
        assert result.evaluations <= 5


class TestRoundTrip:
    def test_recovers_hidden_profile_within_tolerance(self):
        # Hide a perturbed word profile, fingerprint it, and check the
        # search walks the base back within the documented tolerance.
        base = get_profile("word")
        hidden_values = clamp_values(parameter_vector(base))
        hidden_values["total_trace_kb"] *= 2.0
        hidden_values["unmap_fraction"] = 0.25
        hidden_values = clamp_values(hidden_values)
        from repro.scenarios.space import build_profile

        hidden = build_profile(base, hidden_values, name="hidden")
        target = target_from_profile(hidden, 7, SCALE, name="hidden")

        result = calibrate(
            target,
            base,
            seed=7,
            scale=SCALE,
            budget=32,
            tolerance=0.01,
            parameters=("total_trace_kb", "unmap_fraction"),
        )
        assert result.components["miss_curve"] <= ROUND_TRIP_TOLERANCE
        assert result.best_objective < 0.25
        assert result.best_profile.name == "fit-hidden"

    def test_self_target_converges_immediately(self):
        # The base already matches its own fingerprint: objective 0 at
        # the first evaluation, one history entry, converged.
        base = get_profile("word")
        result = calibrate(
            word_target(), base, seed=7, scale=SCALE, budget=4
        )
        assert result.converged
        assert result.best_objective == 0.0
        assert result.evaluations == 1
        assert result.history == ((1, 0.0),)
