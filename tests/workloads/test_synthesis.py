"""Tests for the log synthesizer: aggregate fidelity and determinism."""

from __future__ import annotations

import pytest

from repro.metrics.lifetimes import lifetime_histogram
from repro.tracelog.stats import summarize_log
from repro.workloads.catalog import get_profile
from repro.workloads.synthesis import plan_workload, synthesize_log


@pytest.fixture(scope="module")
def gzip_log():
    return synthesize_log(get_profile("gzip"), seed=7)


@pytest.fixture(scope="module")
def word_log():
    return synthesize_log(get_profile("word"), seed=7)


class TestStructuralValidity:
    def test_logs_validate(self, gzip_log, word_log):
        gzip_log.validate()
        word_log.validate()

    def test_total_bytes_match_scaled_profile(self, gzip_log):
        profile = get_profile("gzip")
        assert gzip_log.total_trace_bytes == profile.scaled_trace_bytes()

    def test_end_time_matches_duration(self, gzip_log):
        profile = get_profile("gzip")
        assert gzip_log.end_time == int(profile.duration_seconds * 1_000_000)

    def test_deterministic(self):
        profile = get_profile("art")
        a = synthesize_log(profile, seed=3)
        b = synthesize_log(profile, seed=3)
        assert a.records == b.records

    def test_seed_changes_log(self):
        profile = get_profile("art")
        a = synthesize_log(profile, seed=3)
        b = synthesize_log(profile, seed=4)
        assert a.records != b.records

    def test_scale_divides_population(self):
        profile = get_profile("gzip")
        full = synthesize_log(profile, seed=1, scale=1.0)
        half = synthesize_log(profile, seed=1, scale=2.0)
        assert half.n_traces == pytest.approx(full.n_traces / 2, rel=0.1)


class TestCalibrationFidelity:
    def test_unmap_fraction_near_target(self, word_log):
        profile = get_profile("word")
        stats = summarize_log(word_log)
        assert stats.unmapped_fraction == pytest.approx(
            profile.unmap_fraction, abs=0.06
        )

    def test_spec_has_no_unmaps(self, gzip_log):
        assert summarize_log(gzip_log).n_unmaps == 0

    def test_lifetimes_u_shaped(self, gzip_log, word_log):
        assert lifetime_histogram(gzip_log).is_u_shaped
        assert lifetime_histogram(word_log).is_u_shaped

    def test_lifetime_mix_matches_profile(self, word_log):
        profile = get_profile("word")
        histogram = lifetime_histogram(word_log)
        assert histogram.short_lived == pytest.approx(
            profile.lifetime_mix.short * 100, abs=8
        )
        assert histogram.long_lived == pytest.approx(
            profile.lifetime_mix.long * 100, abs=8
        )

    def test_median_size_near_242(self, word_log):
        stats = summarize_log(word_log)
        assert stats.median_trace_size == pytest.approx(242, rel=0.35)


class TestPlan:
    def test_categories_cover_population(self):
        plan = plan_workload(get_profile("gzip"), seed=1)
        categories = {t.category for t in plan.traces}
        assert categories == {"short", "medium", "long"}

    def test_short_traces_die_young(self):
        plan = plan_workload(get_profile("word"), seed=1)
        for planned in plan.traces:
            if planned.category == "short" and planned.accesses:
                last = planned.accesses[-1][0]
                lifetime = (last - planned.t_create) / plan.end_time
                assert lifetime <= 0.2

    def test_long_traces_live_long(self):
        plan = plan_workload(get_profile("word"), seed=1)
        long_traces = [t for t in plan.traces if t.category == "long"]
        spans = []
        for planned in long_traces:
            if planned.accesses:
                spans.append(
                    (planned.accesses[-1][0] - planned.t_create) / plan.end_time
                )
        assert min(spans) > 0.8

    def test_dll_traces_die_before_their_unmap(self):
        plan = plan_workload(get_profile("word"), seed=1)
        unmap_times = dict()
        for time, module_id in plan.unmaps:
            unmap_times[module_id] = time
        for planned in plan.traces:
            if planned.module_id in unmap_times and planned.accesses:
                assert planned.accesses[-1][0] < unmap_times[planned.module_id]

    def test_pins_reference_real_traces(self):
        plan = plan_workload(get_profile("word"), seed=1)
        ids = {t.trace_id for t in plan.traces}
        for t_pin, t_unpin, trace_id in plan.pins:
            assert trace_id in ids
            assert t_pin < t_unpin
