"""Unit tests for workload profiles and the calibrated catalogs."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.metrics.summary import arithmetic_mean
from repro.units import KB, MB
from repro.workloads.catalog import all_profiles, get_profile, profiles_for_suite
from repro.workloads.interactive import INTERACTIVE_PROFILES, interactive_profile
from repro.workloads.profiles import LifetimeMix, WorkloadProfile
from repro.workloads.spec2000 import SPEC2000_PROFILES, spec2000_profile


class TestLifetimeMix:
    def test_must_sum_to_one(self):
        with pytest.raises(WorkloadError):
            LifetimeMix(short=0.5, medium=0.5, long=0.5)

    def test_bounds(self):
        with pytest.raises(WorkloadError):
            LifetimeMix(short=1.2, medium=-0.2, long=0.0)


class TestProfileValidation:
    def base(self, **overrides):
        fields = dict(
            name="x", suite="spec", description="d",
            total_trace_kb=100.0, duration_seconds=10.0,
        )
        fields.update(overrides)
        return WorkloadProfile(**fields)

    def test_valid_profile(self):
        profile = self.base()
        assert profile.total_trace_bytes == 100 * KB
        assert profile.insertion_rate_kb_per_s == pytest.approx(10.0)

    def test_unknown_suite(self):
        with pytest.raises(WorkloadError):
            self.base(suite="desktop")

    def test_footprint_from_expansion(self):
        profile = self.base(code_expansion=5.0)
        assert profile.code_footprint_bytes == pytest.approx(20 * KB, abs=2)

    def test_scaled_bytes(self):
        profile = self.base(default_scale=4.0)
        assert profile.scaled_trace_bytes() == 25 * KB
        assert profile.scaled_trace_bytes(2.0) == 50 * KB
        with pytest.raises(WorkloadError):
            profile.scaled_trace_bytes(0)

    def test_unmap_fraction_bounds(self):
        with pytest.raises(WorkloadError):
            self.base(unmap_fraction=1.0)


class TestSpecCatalogCalibration:
    """The catalog must match the paper's Figure 1a/3a aggregates."""

    def test_has_26_benchmarks(self):
        assert len(SPEC2000_PROFILES) == 26

    def test_average_cache_size_near_736kb(self):
        sizes = [p.total_trace_kb for p in SPEC2000_PROFILES]
        assert arithmetic_mean(sizes) == pytest.approx(736, rel=0.05)

    def test_gcc_is_4_3mb(self):
        assert spec2000_profile("gcc").total_trace_kb == pytest.approx(4300)

    def test_vortex_is_1_6mb(self):
        assert spec2000_profile("vortex").total_trace_kb == pytest.approx(1600)

    def test_insertion_rates_mostly_below_5(self):
        above = [
            p.name for p in SPEC2000_PROFILES if p.insertion_rate_kb_per_s > 5.0
        ]
        assert sorted(above) == ["gcc", "perlbmk"]

    def test_gcc_rate_232(self):
        assert spec2000_profile("gcc").insertion_rate_kb_per_s == pytest.approx(232)

    def test_perlbmk_rate_89(self):
        assert spec2000_profile("perlbmk").insertion_rate_kb_per_s == pytest.approx(89)

    def test_spec_never_unmaps(self):
        assert all(p.unmap_fraction == 0.0 for p in SPEC2000_PROFILES)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            spec2000_profile("doom")


class TestInteractiveCatalogCalibration:
    """Table 1 + Figures 1b/3b/4 aggregates."""

    def test_has_12_applications(self):
        assert len(INTERACTIVE_PROFILES) == 12

    def test_table1_durations(self):
        expected = {
            "access": 202, "acroread": 376, "defrag": 46, "excel": 208,
            "iexplore": 247, "mpeg": 257, "outlook": 196, "pinball": 372,
            "powerpoint": 173, "solitaire": 335, "winzip": 92, "word": 212,
        }
        for name, seconds in expected.items():
            assert interactive_profile(name).duration_seconds == seconds

    def test_average_cache_near_16_1mb(self):
        sizes = [p.total_trace_kb * KB for p in INTERACTIVE_PROFILES]
        assert arithmetic_mean(sizes) == pytest.approx(16.1 * MB, rel=0.05)

    def test_word_is_largest_at_34_2mb(self):
        largest = max(INTERACTIVE_PROFILES, key=lambda p: p.total_trace_kb)
        assert largest.name == "word"
        assert largest.total_trace_kb * KB == pytest.approx(34.2 * MB, rel=0.01)

    def test_twenty_fold_increase_over_spec(self):
        spec_avg = arithmetic_mean(p.total_trace_kb for p in SPEC2000_PROFILES)
        app_avg = arithmetic_mean(p.total_trace_kb for p in INTERACTIVE_PROFILES)
        assert app_avg / spec_avg == pytest.approx(20, rel=0.25)

    def test_only_solitaire_below_5kbs(self):
        below = [
            p.name for p in INTERACTIVE_PROFILES
            if p.insertion_rate_kb_per_s <= 5.0
        ]
        assert below == ["solitaire"]

    def test_average_unmap_fraction_near_15pct(self):
        fractions = [p.unmap_fraction for p in INTERACTIVE_PROFILES]
        assert arithmetic_mean(fractions) == pytest.approx(0.15, abs=0.02)


class TestCatalogLookup:
    def test_all_profiles_is_38(self):
        assert len(all_profiles()) == 38

    def test_names_unique(self):
        names = [p.name for p in all_profiles()]
        assert len(set(names)) == len(names)

    def test_get_profile_spans_suites(self):
        assert get_profile("gzip").suite == "spec"
        assert get_profile("word").suite == "interactive"

    def test_get_profile_unknown(self):
        with pytest.raises(WorkloadError):
            get_profile("nope")

    def test_profiles_for_suite(self):
        assert len(profiles_for_suite("spec")) == 26
        assert len(profiles_for_suite("interactive")) == 12
        with pytest.raises(WorkloadError):
            profiles_for_suite("mobile")

    def test_expansions_around_500pct(self):
        expansions = [p.code_expansion for p in all_profiles()]
        assert 4.0 < arithmetic_mean(expansions) < 6.0
