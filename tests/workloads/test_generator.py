"""Tests for the full-pipeline program generator."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.tracelog.records import ModuleUnmap
from repro.tracelog.stats import summarize_log
from repro.workloads.catalog import get_profile
from repro.workloads.generator import build_program, build_session


@pytest.fixture(scope="module")
def gzip_session():
    return build_session(get_profile("gzip"), seed=3)


class TestBuildProgram:
    def test_program_validates(self):
        program, script = build_program(get_profile("gzip"), seed=1)
        program.validate()
        assert script.total_blocks > 0

    def test_interactive_program_has_unloadable_dlls(self):
        program, script = build_program(get_profile("winzip"), seed=1)
        dlls = [m for m in program.modules.values() if m.unloadable]
        assert dlls
        unloads = [s for s in script.steps if type(s).__name__ == "UnloadModule"]
        assert unloads

    def test_spec_program_has_single_module(self):
        program, _ = build_program(get_profile("gzip"), seed=1)
        assert len(program.modules) == 1

    def test_rejects_bad_arguments(self):
        with pytest.raises(WorkloadError):
            build_program(get_profile("gzip"), loops_per_phase=0)


class TestRecordedSession:
    def test_session_produces_traces_and_accesses(self, gzip_session):
        stats = summarize_log(gzip_session)
        assert stats.n_traces > 5
        assert stats.n_accesses > stats.n_traces

    def test_log_validates(self, gzip_session):
        gzip_session.validate()

    def test_interactive_session_records_unmaps(self):
        log = build_session(get_profile("winzip"), seed=3)
        unmaps = [r for r in log.records if isinstance(r, ModuleUnmap)]
        assert unmaps
        assert summarize_log(log).unmapped_trace_bytes > 0

    def test_deterministic(self):
        a = build_session(get_profile("gzip"), seed=9)
        b = build_session(get_profile("gzip"), seed=9)
        assert a.records == b.records
