"""Hardened ServiceClient transport tests against a flaky stub server.

The stub drops connections on demand, so the retry/no-retry contract is
exercised on real sockets: idempotent GETs are retried with backoff,
POSTs never are (the server may already have acted on them), and 429
responses surface as typed OverloadedError with the Retry-After hint.
"""

from __future__ import annotations

import json
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.errors import ConfigError, OverloadedError, ServiceError
from repro.service.client import ServiceClient


class _FlakyHandler(BaseHTTPRequestHandler):
    """Drops the first N GET connections, counts every arrival."""

    protocol_version = "HTTP/1.1"
    state: dict = {}

    def log_message(self, format, *args):  # noqa: A002
        pass  # keep test output clean

    def _drop(self) -> None:
        # shutdown() sends the FIN immediately (a bare close() is
        # deferred while rfile/wfile hold the socket open), so the
        # client sees a dead keep-alive socket: RemoteDisconnected,
        # a ConnectionResetError subclass.
        self.connection.shutdown(socket.SHUT_RDWR)
        self.close_connection = True

    def do_GET(self):
        self.state["gets"] += 1
        if self.state["drop_gets"] > 0:
            self.state["drop_gets"] -= 1
            self._drop()
            return
        self._send(200, {"ok": True})

    def do_POST(self):
        self.state["posts"] += 1
        if self.state["drop_posts"] > 0:
            self.state["drop_posts"] -= 1
            self._drop()
            return
        if self.state.get("shed"):
            body = json.dumps(
                {"error": "overloaded", "reason": "queue", "retry_after": 2.5}
            ).encode()
            self.send_response(429)
            self.send_header("Retry-After", "3")
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        self._send(200, {"accepted": True})

    def _send(self, status: int, body: dict) -> None:
        data = json.dumps(body).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)


@pytest.fixture
def flaky():
    """A live stub server; yields (base_url, state)."""
    state = {"gets": 0, "posts": 0, "drop_gets": 0, "drop_posts": 0}
    _FlakyHandler.state = state
    server = ThreadingHTTPServer(("127.0.0.1", 0), _FlakyHandler)
    server.daemon_threads = True
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}", state
    finally:
        server.shutdown()
        server.server_close()


class TestUrlValidation:
    def test_bad_url_is_config_error(self):
        with pytest.raises(ConfigError, match="must look like"):
            ServiceClient("not-a-url")

    def test_missing_port_is_config_error(self):
        with pytest.raises(ConfigError, match="must look like"):
            ServiceClient("http://hostonly")


class TestRetries:
    def test_get_retried_through_dropped_connections(self, flaky):
        base_url, state = flaky
        state["drop_gets"] = 2
        with ServiceClient(base_url, backoff_base=0.001) as client:
            assert client._request("GET", "/healthz") == {"ok": True}
        assert state["gets"] == 3  # 2 drops + 1 success

    def test_get_retries_exhaust_to_service_error(self, flaky):
        base_url, state = flaky
        state["drop_gets"] = 100
        client = ServiceClient(base_url, max_retries=2, backoff_base=0.001)
        with pytest.raises(ServiceError, match="cannot reach"):
            client._request("GET", "/healthz")
        assert state["gets"] == 3  # initial attempt + 2 retries, no more

    def test_post_is_never_retried(self, flaky):
        # A dropped POST may or may not have been processed server-side;
        # silently resending it could double-submit, so the client must
        # surface the failure after exactly one attempt.
        base_url, state = flaky
        state["drop_posts"] = 1
        client = ServiceClient(base_url, backoff_base=0.001)
        with pytest.raises(ServiceError, match="cannot reach"):
            client._request("POST", "/jobs", {"kind": "experiment"})
        assert state["posts"] == 1


class TestOverloadedResponses:
    def test_429_is_typed_with_retry_after_from_body(self, flaky):
        base_url, state = flaky
        state["shed"] = True
        with ServiceClient(base_url) as client:
            with pytest.raises(OverloadedError) as excinfo:
                client._request("POST", "/jobs", {"kind": "experiment"})
        assert excinfo.value.retry_after == pytest.approx(2.5)
        assert excinfo.value.reason == "queue"
