"""fleet-cell jobs: spec validation, execution, and id stability."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.experiments.fleet import simulate_fleet_cell
from repro.service.jobs import JobSpec, job_id, spec_from_dict
from repro.service.workers import execute_job


def _spec(**overrides) -> JobSpec:
    fields = dict(
        kind="fleet-cell",
        mix="heterogeneous",
        processes=8,
        policy="shared-persistent",
        scale_multiplier=128.0,
    )
    fields.update(overrides)
    return JobSpec(**fields)


class TestSpecValidation:
    def test_valid_spec_passes(self):
        _spec().validate()

    @pytest.mark.parametrize(
        ("field", "value", "match"),
        [
            ("mix", "bimodal", "mix"),
            ("mix", None, "mix"),
            ("processes", 1, "processes"),
            ("processes", None, "processes"),
            ("policy", "shared-sometimes", "policy"),
            ("policy", None, "policy"),
            ("schedule", "fifo", "schedule"),
            ("quantum", 0, "quantum"),
        ],
    )
    def test_invalid_field_rejected(self, field, value, match):
        with pytest.raises(ConfigError, match=match):
            _spec(**{field: value}).validate()

    def test_round_trips_through_dict(self):
        spec = _spec(schedule="random", quantum=16, seed=7)
        again = spec_from_dict(spec.to_dict())
        assert again == spec
        assert job_id(again) == job_id(spec)

    def test_distinct_from_shared_mix_job(self):
        # Same fields, different kind: distinct content addresses, so
        # the store never conflates fleet and reference cells.
        assert job_id(_spec()) != job_id(_spec(kind="shared-mix"))

    def test_job_id_covers_cell_fields(self):
        base = job_id(_spec())
        assert job_id(_spec(policy="private")) != base
        assert job_id(_spec(processes=64)) != base
        assert job_id(_spec(mix="homogeneous")) != base
        assert job_id(_spec(quantum=8)) != base


class TestExecution:
    def test_payload_matches_direct_cell(self):
        spec = _spec()
        payload = execute_job(spec)
        assert payload["kind"] == "fleet-cell"
        assert payload["config_digest"] == job_id(spec)
        assert payload["result"] == simulate_fleet_cell(
            "heterogeneous",
            8,
            "shared-persistent",
            seed=spec.seed,
            scale_multiplier=128.0,
            schedule=spec.schedule,
            quantum=spec.quantum,
        )

    def test_result_is_json_safe(self):
        import json

        payload = execute_job(_spec(processes=4))
        json.dumps(payload)
