"""Graceful shutdown regression tests: SIGTERM mid-job must drain.

Runs the real CLI verbs (``serve`` and ``cluster-serve``) as
subprocesses, submits real sweep-point jobs over HTTP, signals the
process while work is queued, and asserts the accepted jobs all made
it to the on-disk store before the process exited cleanly.
"""

from __future__ import annotations

import re
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.service.client import ServiceClient
from repro.service.jobs import JobSpec, job_id
from repro.service.store import ResultStore

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

LISTEN_RE = re.compile(r"listening on http://([0-9.]+):(\d+)")


def _specs(count: int) -> list[JobSpec]:
    return [
        JobSpec(
            kind="sweep-point",
            benchmark="gzip",
            seed=seed,
            scale_multiplier=256.0,
            manager="unified",
        )
        for seed in range(count)
    ]


def _spawn(verb_args: list[str]) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *verb_args],
        env={"PYTHONPATH": str(REPO_SRC), "PATH": "/usr/bin:/bin"},
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def _wait_for_listen(process: subprocess.Popen) -> str:
    line = process.stdout.readline()
    match = LISTEN_RE.search(line)
    if match is None:  # pragma: no cover - diagnostics only
        process.kill()
        raise AssertionError(f"no listen line, got {line!r}")
    return f"http://{match.group(1)}:{match.group(2)}"


def _drain_under_signal(process: subprocess.Popen, base_url: str, store_dir):
    specs = _specs(3)
    with ServiceClient(base_url) as client:
        for spec in specs:
            client.submit(spec)
        # Signal while jobs are queued behind a single worker: the
        # server must stop accepting, finish what it took, then exit.
        process.send_signal(signal.SIGTERM)
    _, stderr = process.communicate(timeout=120)
    assert process.returncode == 0, stderr
    assert "drained in-flight jobs" in stderr
    store = ResultStore(store_dir)
    for spec in specs:
        payload = store.get(job_id(spec))
        assert payload is not None, f"accepted job {job_id(spec)} dropped"


class TestServeDrainsOnSignal:
    def test_sigterm_mid_job_drains_then_exits_zero(self, tmp_path):
        store_dir = tmp_path / "store"
        process = _spawn(
            [
                "serve",
                "--host",
                "127.0.0.1",
                "--port",
                "0",
                "--jobs",
                "1",
                "--store",
                str(store_dir),
            ]
        )
        try:
            base_url = _wait_for_listen(process)
            _drain_under_signal(process, base_url, store_dir)
        finally:
            if process.poll() is None:
                process.kill()

    def test_sigint_also_drains(self, tmp_path):
        store_dir = tmp_path / "store"
        process = _spawn(
            [
                "serve",
                "--host",
                "127.0.0.1",
                "--port",
                "0",
                "--jobs",
                "1",
                "--store",
                str(store_dir),
            ]
        )
        try:
            base_url = _wait_for_listen(process)
            specs = _specs(1)
            with ServiceClient(base_url) as client:
                client.submit(specs[0])
                process.send_signal(signal.SIGINT)
            _, stderr = process.communicate(timeout=120)
            assert process.returncode == 0, stderr
            assert "drained in-flight jobs" in stderr
            assert ResultStore(store_dir).get(job_id(specs[0])) is not None
        finally:
            if process.poll() is None:
                process.kill()


class TestClusterServeDrainsOnSignal:
    def test_sigterm_mid_job_drains_then_exits_zero(self, tmp_path):
        store_dir = tmp_path / "store"
        process = _spawn(
            [
                "cluster-serve",
                "--host",
                "127.0.0.1",
                "--port",
                "0",
                "--shards",
                "2",
                "--workers-per-shard",
                "1",
                "--store",
                str(store_dir),
            ]
        )
        try:
            base_url = _wait_for_listen(process)
            _drain_under_signal(process, base_url, store_dir)
        finally:
            if process.poll() is None:
                process.kill()
