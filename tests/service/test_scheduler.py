"""Scheduler and worker-pool behaviour tests.

These tests swap the real simulation worker for tiny injectable
targets (echo, sleep, crash) so pool mechanics — dispatch, memoization,
retry, timeout — are exercised in milliseconds.  One end-to-end test at
the bottom runs a real replay job through the real worker.
"""

from __future__ import annotations

import base64
import os
import time

import pytest

from repro.errors import ConfigError, JobQueueFullError, JobNotFoundError
from repro.service.jobs import JobSpec, job_id
from repro.service.scheduler import (
    DONE,
    FAILED,
    RUNNING,
    Scheduler,
    run_jobs,
)
from repro.service.store import ResultStore
from repro.tracelog.binary import dumps_binary

#: A cheap, always-valid spec for pool-mechanics tests.
SPEC = JobSpec(kind="experiment", experiment_id="figure-1")


def _spec(n: int) -> JobSpec:
    return JobSpec(kind="experiment", experiment_id="figure-1", seed=n)


def echo_worker(slot: int, tasks, events) -> None:
    """Completes every job instantly with an echo payload."""
    while True:
        item = tasks.get()
        if item is None:
            return
        jid, spec = item
        events.put(("done", jid, {"echo": spec["experiment_id"], "slot": slot}))


def sleepy_worker(slot: int, tasks, events) -> None:
    """Accepts jobs and never finishes them."""
    import time

    while True:
        item = tasks.get()
        if item is None:
            return
        time.sleep(600)


def crashy_worker(slot: int, tasks, events) -> None:
    """Dies with exit code 17 on every job."""
    item = tasks.get()
    if item is None:
        return
    os._exit(17)


def flaky_worker(slot: int, tasks, events) -> None:
    """Crashes until the marker file exists, then echoes."""
    marker = os.environ["REPRO_TEST_FLAKY_MARKER"]
    item = tasks.get()
    if item is None:
        return
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as handle:
            handle.write("crashed once")
        os._exit(23)
    jid, spec = item
    events.put(("done", jid, {"echo": spec["experiment_id"]}))


class TestLifecycle:
    def test_constructor_validation(self):
        with pytest.raises(ConfigError):
            Scheduler(workers=0)
        with pytest.raises(ConfigError):
            Scheduler(timeout=0)
        with pytest.raises(ConfigError):
            Scheduler(max_retries=-1)
        with pytest.raises(ConfigError):
            Scheduler(queue_size=0)

    def test_submit_before_start_rejected(self):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError):
            Scheduler(worker_target=echo_worker).submit(SPEC)

    def test_unknown_job_id(self):
        with Scheduler(workers=1, worker_target=echo_worker) as scheduler:
            with pytest.raises(JobNotFoundError):
                scheduler.status("jdeadbeef")


class TestDispatch:
    def test_jobs_complete_in_spec_order(self):
        specs = [_spec(n) for n in range(6)]
        payloads = run_jobs(specs, workers=3, worker_target=echo_worker)
        assert [p["echo"] for p in payloads] == ["figure-1"] * 6

    def test_duplicate_submission_dedups(self):
        with Scheduler(workers=1, worker_target=echo_worker) as scheduler:
            first = scheduler.submit(SPEC)
            second = scheduler.submit(SPEC)
            assert first is second
            scheduler.wait([first.job_id])
            assert scheduler.metrics.submitted == 1

    def test_metrics_shape(self):
        with Scheduler(workers=2, worker_target=echo_worker) as scheduler:
            record = scheduler.submit(SPEC)
            scheduler.wait([record.job_id])
            metrics = scheduler.metrics_dict()
        assert metrics["jobs_completed"] == 1
        assert metrics["workers_total"] == 2
        assert 0.0 <= metrics["worker_utilization"] <= 1.0
        assert set(metrics) >= {
            "queue_depth",
            "cache_hit_rate",
            "jobs_failed",
            "job_timeouts",
            "worker_crashes",
        }

    def test_bounded_admission(self):
        with Scheduler(
            workers=1, queue_size=1, worker_target=sleepy_worker, timeout=60
        ) as scheduler:
            first = scheduler.submit(_spec(0))
            # Wait for the first job to occupy the only worker, then
            # fill the single admission slot.
            deadline = time.monotonic() + 10
            while scheduler.status(first.job_id).state != RUNNING:
                assert time.monotonic() < deadline, "dispatch never happened"
                time.sleep(0.01)
            scheduler.submit(_spec(1))
            with pytest.raises(JobQueueFullError):
                scheduler.submit(_spec(2))


class TestMemoization:
    def test_store_hit_skips_worker(self, tmp_path):
        store = ResultStore(tmp_path)
        payloads = run_jobs(
            [SPEC], workers=1, store=store, worker_target=echo_worker
        )
        assert payloads[0]["echo"] == "figure-1"
        # Second pool: the worker would crash if ever dispatched, so a
        # completed record proves the job was served from the store
        # with zero simulated events.
        with Scheduler(
            workers=1, store=store, worker_target=crashy_worker
        ) as scheduler:
            record = scheduler.submit(SPEC)
            assert record.state == DONE
            assert record.cached
            assert record.payload == payloads[0]
            assert scheduler.metrics.cache_hits == 1

    def test_corrupt_blob_recomputes(self, tmp_path):
        store = ResultStore(tmp_path)
        run_jobs([SPEC], workers=1, store=store, worker_target=echo_worker)
        store.path_for(job_id(SPEC)).write_text("garbage", encoding="utf-8")
        payloads = run_jobs(
            [SPEC], workers=1, store=store, worker_target=echo_worker
        )
        assert payloads[0]["echo"] == "figure-1"


class TestFailureHandling:
    def test_crash_retries_then_fails(self):
        with Scheduler(
            workers=1,
            worker_target=crashy_worker,
            max_retries=1,
            backoff_base=0.01,
        ) as scheduler:
            record = scheduler.submit(SPEC)
            assert scheduler.wait([record.job_id], timeout=30)
            assert record.state == FAILED
            assert record.attempts == 2
            assert "exit code 17" in record.error
            assert scheduler.metrics.worker_crashes >= 2

    def test_crash_then_recovery(self, tmp_path, monkeypatch):
        marker = tmp_path / "crashed-once"
        monkeypatch.setenv("REPRO_TEST_FLAKY_MARKER", str(marker))
        with Scheduler(
            workers=1,
            worker_target=flaky_worker,
            max_retries=2,
            backoff_base=0.01,
        ) as scheduler:
            record = scheduler.submit(SPEC)
            assert scheduler.wait([record.job_id], timeout=30)
            assert record.state == DONE
            assert record.attempts == 2
            assert marker.exists()

    def test_timeout_kills_and_fails(self):
        with Scheduler(
            workers=1,
            worker_target=sleepy_worker,
            timeout=0.3,
            max_retries=0,
        ) as scheduler:
            record = scheduler.submit(SPEC)
            assert scheduler.wait([record.job_id], timeout=30)
            assert record.state == FAILED
            assert "timed out" in record.error
            assert scheduler.metrics.timeouts == 1

    def test_run_jobs_raises_on_failure(self):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError, match="failed"):
            run_jobs(
                [SPEC],
                workers=1,
                worker_target=crashy_worker,
                max_retries=0,
                backoff_base=0.01,
            )


class TestDrainAndListeners:
    def test_drain_then_submit_is_draining_error(self):
        from repro.errors import DrainingError

        with Scheduler(workers=1, worker_target=echo_worker) as scheduler:
            record = scheduler.submit(SPEC)
            assert scheduler.drain(timeout=30)
            assert not scheduler.accepting
            assert scheduler.status(record.job_id).state == DONE
            with pytest.raises(DrainingError):
                scheduler.submit(_spec(1))

    def test_resume_admission_reopens_submit(self):
        with Scheduler(workers=1, worker_target=echo_worker) as scheduler:
            scheduler.pause_admission()
            scheduler.resume_admission()
            record = scheduler.submit(SPEC)
            assert scheduler.wait([record.job_id], timeout=30)

    def test_listener_sees_terminal_transitions(self):
        seen = []
        with Scheduler(workers=1, worker_target=echo_worker) as scheduler:
            scheduler.add_listener(
                lambda jid, state, cached: seen.append((jid, state, cached))
            )
            record = scheduler.submit(SPEC)
            assert scheduler.drain(timeout=30)
        assert (record.job_id, DONE, False) in seen

    def test_listener_exception_does_not_break_dispatch(self):
        def bad_listener(jid, state, cached):
            raise RuntimeError("listener bug")

        with Scheduler(workers=1, worker_target=echo_worker) as scheduler:
            scheduler.add_listener(bad_listener)
            record = scheduler.submit(SPEC)
            assert scheduler.drain(timeout=30)
            assert scheduler.status(record.job_id).state == DONE


class TestCompletedRetention:
    def test_retention_validation(self):
        with pytest.raises(ConfigError, match="completed_retention"):
            Scheduler(
                workers=1, worker_target=echo_worker, completed_retention=0
            )

    def test_old_terminal_records_are_evicted(self):
        with Scheduler(
            workers=1, worker_target=echo_worker, completed_retention=1
        ) as scheduler:
            records = [scheduler.submit(_spec(n)) for n in range(3)]
            assert scheduler.drain(timeout=30)
            survivors = [
                record
                for record in records
                if _still_known(scheduler, record.job_id)
            ]
            # The bound holds; the newest terminal record survives.
            assert len(survivors) == 1

    def test_unbounded_by_default(self):
        with Scheduler(workers=1, worker_target=echo_worker) as scheduler:
            records = [scheduler.submit(_spec(n)) for n in range(5)]
            assert scheduler.drain(timeout=30)
            for record in records:
                assert scheduler.status(record.job_id).state == DONE


def _still_known(scheduler: Scheduler, jid: str) -> bool:
    try:
        scheduler.status(jid)
    except JobNotFoundError:
        return False
    return True


class TestRealWorker:
    def test_replay_job_end_to_end(self, small_log):
        """One inline replay through the real simulation worker."""
        spec = JobSpec(
            kind="replay",
            manager="unified",
            capacity=300,
            log_inline=base64.b64encode(dumps_binary(small_log)).decode(),
        )
        payloads = run_jobs([spec], workers=1)
        result = payloads[0]["result"]
        assert result["benchmark"] == "tiny"
        assert result["manager"].startswith("unified")
        assert result["capacity"] == 300
        assert result["misses"] >= 1
        assert 0.0 <= result["miss_rate"] <= 1.0
