"""scenario/calibrate jobs: spec validation, execution, table parity."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.errors import ConfigError
from repro.experiments.scenarios import run as run_scenarios
from repro.scenarios.registry import registered
from repro.scenarios.targets import target_from_profile
from repro.service.jobs import JobSpec, job_id, spec_from_dict
from repro.service.workers import execute_job
from repro.workloads.catalog import get_profile

SCALE = 512.0


def first_scenario_name() -> str:
    return registered()[0].name


def small_target() -> dict:
    return target_from_profile(get_profile("word"), 7, SCALE).to_dict()


class TestScenarioSpec:
    def test_valid_spec_passes(self):
        JobSpec(kind="scenario", scenario="cx-anything").validate()

    def test_needs_scenario_name(self):
        with pytest.raises(ConfigError, match="scenario name"):
            JobSpec(kind="scenario").validate()

    def test_round_trips_through_dict(self):
        spec = JobSpec(kind="scenario", scenario="cx-x")
        assert spec_from_dict(spec.to_dict()) == spec

    def test_id_tracks_scenario_field(self):
        a = JobSpec(kind="scenario", scenario="cx-a")
        b = JobSpec(kind="scenario", scenario="cx-b")
        assert job_id(a) != job_id(b)

    def test_execute_replays_registered_scenario(self):
        name = first_scenario_name()
        payload = execute_job(JobSpec(kind="scenario", scenario=name))
        assert payload["kind"] == "scenario"
        assert payload["result"]["scenario"] == name
        assert payload["result"]["status"] == "ok"
        assert payload["config_digest"].startswith("j")


class TestCalibrateSpec:
    def test_valid_spec_passes(self):
        JobSpec(
            kind="calibrate", benchmark="word", target=small_target()
        ).validate()

    def test_needs_benchmark(self):
        with pytest.raises(ConfigError, match="benchmark"):
            JobSpec(kind="calibrate", target=small_target()).validate()

    def test_needs_target(self):
        with pytest.raises(ConfigError, match="target"):
            JobSpec(kind="calibrate", benchmark="word").validate()

    def test_malformed_target_rejected_at_submission(self):
        with pytest.raises(ConfigError, match="statistics"):
            JobSpec(
                kind="calibrate", benchmark="word", target={"name": "x"}
            ).validate()

    def test_budget_must_be_positive(self):
        with pytest.raises(ConfigError, match="budget"):
            JobSpec(
                kind="calibrate",
                benchmark="word",
                target=small_target(),
                budget=0,
            ).validate()

    def test_tolerance_must_be_positive(self):
        with pytest.raises(ConfigError, match="tolerance"):
            JobSpec(
                kind="calibrate",
                benchmark="word",
                target=small_target(),
                tolerance=-0.1,
            ).validate()

    def test_execute_returns_artifact_payload(self):
        spec = JobSpec(
            kind="calibrate",
            benchmark="word",
            target=small_target(),
            seed=7,
            scale_multiplier=SCALE,
            budget=2,
        )
        payload = execute_job(spec)
        result = payload["result"]
        assert result["artifact"]["kind"] == "calibration"
        assert result["artifact"]["id"].startswith("s")
        assert result["evaluations"] <= 2
        assert set(result["components"]) == {
            "miss_curve", "lifetimes", "insertion_rate", "unmap_fraction",
        }


class TestTableParity:
    def test_scenarios_table_identical_serial_and_parallel(self):
        serial = run_scenarios(jobs=1)
        parallel = run_scenarios(jobs=2)
        assert parallel.rows == serial.rows
        assert parallel.columns == serial.columns
        assert parallel.notes == serial.notes

    def test_cli_run_scenarios_jobs_matches_serial(self, capsys):
        assert main(["run", "scenarios", "--quick"]) == 0
        serial_out = capsys.readouterr().out
        assert main(["run", "scenarios", "--quick", "--jobs", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out
