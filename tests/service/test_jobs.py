"""Content-addressed job spec tests."""

from __future__ import annotations

import pytest

from repro.core.config import PromotionMode
from repro.errors import ConfigError
from repro.service.jobs import JobSpec, job_id, spec_from_dict


class TestJobId:
    def test_stable_across_sessions(self):
        # Pinned reference addresses: if either changes, JOB_FORMAT
        # must be bumped or every existing store blob goes stale.
        assert job_id(JobSpec(kind="experiment", experiment_id="figure-9")) == (
            "j41741e9d41de2de3ca5dacce67584a9"
        )
        assert job_id(
            JobSpec(kind="sweep-point", benchmark="word", manager="unified")
        ) == "jac44c597f0390944d52c07f4198ce81"

    def test_equal_specs_equal_ids(self):
        a = JobSpec(kind="experiment", experiment_id="figure-1", seed=7)
        b = JobSpec(kind="experiment", experiment_id="figure-1", seed=7)
        assert a is not b
        assert job_id(a) == job_id(b)

    def test_every_field_change_changes_id(self):
        base = JobSpec(
            kind="sweep-point",
            benchmark="word",
            manager="generational",
            nursery=0.34,
            probation=0.33,
            persistent=0.33,
            threshold=5,
        )
        # Round-trip the dict form with a field tweaked at a time (the
        # layout tweak moves two fields so fractions still sum to 1);
        # every tweak must move the address.
        seen = {job_id(base)}
        for update in [
            {"seed": 43},
            {"scale_multiplier": 2.0},
            {"benchmark": "gzip"},
            {"threshold": 10},
            {"nursery": 0.25, "persistent": 0.42},
            {"sanitize": True},
            {"sanitize_stride": 64},
        ]:
            data = base.to_dict()
            data.update(update)
            jid = job_id(spec_from_dict(data))
            assert jid not in seen, f"{update} did not change the id"
            seen.add(jid)

    def test_id_shape(self):
        jid = job_id(JobSpec(kind="experiment", experiment_id="sweep"))
        assert jid.startswith("j")
        assert len(jid) == 32
        assert all(c in "0123456789abcdef" for c in jid[1:])


class TestSpecRoundTrip:
    def test_round_trip(self):
        spec = JobSpec(
            kind="experiment",
            experiment_id="figure-9",
            subset=("gzip", "word"),
            sanitize=True,
        )
        rebuilt = spec_from_dict(spec.to_dict())
        assert rebuilt == spec
        assert job_id(rebuilt) == job_id(spec)

    def test_unknown_field_rejected(self):
        data = JobSpec(kind="experiment", experiment_id="figure-1").to_dict()
        data["bogus"] = 1
        with pytest.raises(ConfigError, match="bogus"):
            spec_from_dict(data)

    def test_non_dict_rejected(self):
        with pytest.raises(ConfigError):
            spec_from_dict(["not", "a", "spec"])


class TestValidation:
    def test_unknown_kind(self):
        with pytest.raises(ConfigError, match="kind"):
            JobSpec(kind="mystery").validate()

    def test_experiment_needs_id(self):
        with pytest.raises(ConfigError, match="experiment_id"):
            JobSpec(kind="experiment", experiment_id=None).validate()

    def test_sweep_point_needs_benchmark(self):
        with pytest.raises(ConfigError, match="benchmark"):
            JobSpec(kind="sweep-point", benchmark=None).validate()

    def test_generational_needs_layout(self):
        with pytest.raises(ConfigError, match="layout"):
            JobSpec(kind="sweep-point", benchmark="word").validate()

    def test_replay_needs_exactly_one_source(self):
        with pytest.raises(ConfigError, match="log_path or log_inline"):
            JobSpec(kind="replay", manager="unified").validate()
        with pytest.raises(ConfigError, match="log_path or log_inline"):
            JobSpec(
                kind="replay", manager="unified", log_path="a", log_inline="b"
            ).validate()

    def test_bad_scale(self):
        with pytest.raises(ConfigError, match="scale"):
            JobSpec(
                kind="experiment", experiment_id="figure-1", scale_multiplier=0
            ).validate()

    def test_threshold_one_promotes_on_hit(self):
        spec = JobSpec(
            kind="sweep-point",
            benchmark="word",
            nursery=0.34,
            probation=0.33,
            persistent=0.33,
            threshold=1,
        )
        assert spec.generational_config().promotion_mode is PromotionMode.ON_HIT

    def test_threshold_above_one_promotes_on_eviction(self):
        spec = JobSpec(
            kind="sweep-point",
            benchmark="word",
            nursery=0.34,
            probation=0.33,
            persistent=0.33,
            threshold=5,
        )
        assert (
            spec.generational_config().promotion_mode
            is PromotionMode.ON_EVICTION
        )
