"""Result-store durability tests."""

from __future__ import annotations

import json
import threading

from repro.service.store import ResultStore

JID = "jabc123def4567890abc123def456789"
PAYLOAD = {"kind": "experiment", "result": {"rows": [1, 2, 3]}, "pi": 3.125}


class TestContentAddress:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(JID, PAYLOAD)
        assert store.get(JID) == PAYLOAD
        assert JID in store

    def test_stable_across_instances(self, tmp_path):
        ResultStore(tmp_path).put(JID, PAYLOAD)
        # A brand-new instance over the same directory sees the blob.
        assert ResultStore(tmp_path).get(JID) == PAYLOAD

    def test_sharded_layout(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(JID, PAYLOAD)
        assert path.parent.name == JID[:2]
        assert store.job_ids() == [JID]

    def test_miss_returns_none(self, tmp_path):
        assert ResultStore(tmp_path).get(JID) is None

    def test_overwrite(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(JID, {"v": 1})
        store.put(JID, {"v": 2})
        assert store.get(JID) == {"v": 2}

    def test_discard(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(JID, PAYLOAD)
        store.discard(JID)
        assert store.get(JID) is None
        store.discard(JID)  # idempotent


class TestCorruption:
    """A damaged blob must read as a miss (recompute), never crash."""

    def test_truncated_blob(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(JID, PAYLOAD)
        path.write_text(path.read_text()[:-20])
        assert store.get(JID) is None
        assert not path.exists()  # discarded so the next put recreates it

    def test_garbage_blob(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(JID, PAYLOAD)
        path.write_text("not json at all {{{")
        assert store.get(JID) is None

    def test_flipped_payload_fails_checksum(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(JID, PAYLOAD)
        envelope = json.loads(path.read_text())
        envelope["payload"]["result"]["rows"] = [9, 9, 9]
        path.write_text(json.dumps(envelope))
        assert store.get(JID) is None

    def test_wrong_job_id_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        other = "jffffffffffffffffffffffffffffff0"
        path = store.put(JID, PAYLOAD)
        # Copy the valid blob under a different id: must not be served.
        target = store.path_for(other)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(path.read_text())
        assert store.get(other) is None

    def test_recompute_after_corruption(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(JID, PAYLOAD)
        path.write_text("garbage")
        assert store.get(JID) is None
        store.put(JID, PAYLOAD)
        assert store.get(JID) == PAYLOAD


class TestConcurrency:
    def test_concurrent_readers_and_writers(self, tmp_path):
        """Atomic replace means a reader sees a complete blob or a
        miss — never a torn write or a checksum crash."""
        store = ResultStore(tmp_path)
        payloads = [{"v": n, "rows": list(range(n % 7))} for n in range(40)]
        errors: list[BaseException] = []

        def writer(worker: int) -> None:
            try:
                for payload in payloads:
                    store.put(JID, payload)
            except BaseException as exc:  # pragma: no cover - fail below
                errors.append(exc)

        def reader() -> None:
            try:
                for _ in range(200):
                    payload = store.get(JID)
                    assert payload is None or payload in payloads
            except BaseException as exc:  # pragma: no cover - fail below
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(n,)) for n in range(4)
        ] + [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert store.get(JID) in payloads
