"""HTTP API + client round-trip tests (echo workers, free port)."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.errors import ConfigError, ServiceError
from repro.service.client import ServiceClient
from repro.service.http import make_server
from repro.service.jobs import JobSpec, job_id
from repro.service.scheduler import Scheduler
from repro.service.store import ResultStore
from tests.service.test_scheduler import echo_worker, sleepy_worker

SPEC = JobSpec(kind="experiment", experiment_id="figure-1")


@pytest.fixture
def service(tmp_path):
    """A live server over echo workers; yields (client, scheduler)."""
    store = ResultStore(tmp_path / "store")
    with Scheduler(workers=2, store=store, worker_target=echo_worker) as sched:
        server = make_server(sched, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            yield ServiceClient(f"http://{host}:{port}"), sched
        finally:
            server.shutdown()
            server.server_close()


class TestEndpoints:
    def test_healthz(self, service):
        client, _ = service
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["workers_alive"] == 2

    def test_submit_and_wait_round_trip(self, service):
        client, _ = service
        status, payload = client.submit_and_wait(SPEC, timeout=30)
        assert status["state"] == "done"
        assert status["job_id"] == job_id(SPEC)
        assert payload["echo"] == "figure-1"

    def test_cached_second_submission(self, service):
        client, scheduler = service
        client.submit_and_wait(SPEC, timeout=30)
        # Clear the in-memory record so the second submission must go
        # through the disk store, like a restarted server would.
        scheduler._jobs.clear()
        status = client.submit(SPEC)
        assert status["state"] == "done"
        assert status["cached"] is True
        assert client.metrics()["cache_hits"] == 1

    def test_invalid_spec_is_400(self, service):
        # A rejected spec is the caller's configuration error (CLI exit
        # code 2), not a service failure.
        client, _ = service
        with pytest.raises(ConfigError, match="HTTP 400"):
            client.submit({"kind": "experiment"})  # missing experiment_id

    def test_unknown_field_is_400(self, service):
        client, _ = service
        with pytest.raises(ConfigError, match="HTTP 400"):
            client.submit({**SPEC.to_dict(), "bogus": 1})

    def test_unknown_job_is_404(self, service):
        client, _ = service
        with pytest.raises(ServiceError, match="HTTP 404"):
            client.status("j" + "0" * 31)
        with pytest.raises(ServiceError, match="HTTP 404"):
            client.result("j" + "0" * 31)

    def test_unknown_endpoint_is_404(self, service):
        client, _ = service
        with pytest.raises(ServiceError, match="HTTP 404"):
            client._request("GET", "/nope")

    def test_metrics_shape(self, service):
        client, _ = service
        client.submit_and_wait(SPEC, timeout=30)
        metrics = client.metrics()
        assert metrics["jobs_completed"] == 1
        assert metrics["workers_total"] == 2
        assert set(metrics) >= {
            "queue_depth",
            "cache_hit_rate",
            "worker_utilization",
            "jobs_failed",
        }

    def test_bad_json_body_is_400(self, service):
        client, _ = service
        request = urllib.request.Request(
            client.base_url + "/jobs",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        assert "error" in json.loads(excinfo.value.read().decode())


class TestUnfinishedResult:
    def test_result_of_running_job_is_409(self, tmp_path):
        with Scheduler(
            workers=1, worker_target=sleepy_worker, timeout=60
        ) as sched:
            server = make_server(sched, port=0)
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            host, port = server.server_address[:2]
            client = ServiceClient(f"http://{host}:{port}")
            try:
                status = client.submit(SPEC)
                with pytest.raises(ServiceError, match="HTTP 409"):
                    client.result(status["job_id"])
            finally:
                server.shutdown()
                server.server_close()
