"""The acceptance property: parallel dispatch is byte-identical.

``run all --jobs N`` and ``sweep --jobs N`` must render the exact same
bytes as the serial path — workers execute the identical serial code,
and JSON float round-tripping is lossless — so parallelism can never
change a reported number.
"""

from __future__ import annotations

from repro.experiments import sweep
from repro.experiments.runner import render_all, run_all

#: Tiny but representative slice: one characterization figure, one
#: evaluation figure (shared-evaluation path), and the sweep.
IDS = ("figure-1", "figure-9", "sweep")
SUBSET = ["gzip", "word"]
SCALE = 32.0


def test_run_all_parallel_matches_serial():
    serial = render_all(
        run_all(scale_multiplier=SCALE, subset=SUBSET, experiment_ids=IDS)
    )
    parallel = render_all(
        run_all(
            scale_multiplier=SCALE, subset=SUBSET, experiment_ids=IDS, jobs=3
        )
    )
    assert parallel == serial


def test_sweep_parallel_matches_serial():
    serial = sweep.run(benchmark="art", scale_multiplier=SCALE)
    parallel = sweep.run(benchmark="art", scale_multiplier=SCALE, jobs=4)
    assert parallel == serial


def test_link_parallel_matches_serial():
    serial = sweep.probation_threshold_link(
        benchmark="art", scale_multiplier=SCALE
    )
    parallel = sweep.probation_threshold_link(
        benchmark="art", scale_multiplier=SCALE, jobs=4
    )
    assert parallel == serial
