"""shared-mix jobs: spec validation, execution, and fail-fast rejects."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.errors import ConfigError
from repro.service.jobs import JobSpec, job_id, spec_from_dict
from repro.service.scheduler import FAILED, Scheduler
from repro.service.workers import execute_job


def _spec(**overrides) -> JobSpec:
    fields = dict(
        kind="shared-mix",
        mix="homogeneous",
        processes=2,
        policy="shared-persistent",
        scale_multiplier=16.0,
    )
    fields.update(overrides)
    return JobSpec(**fields)


class TestSpecValidation:
    def test_valid_spec_passes(self):
        _spec().validate()

    @pytest.mark.parametrize(
        ("field", "value", "match"),
        [
            ("mix", "bimodal", "mix"),
            ("mix", None, "mix"),
            ("processes", 1, "processes"),
            ("processes", None, "processes"),
            ("policy", "shared-sometimes", "policy"),
            ("policy", None, "policy"),
            ("schedule", "fifo", "schedule"),
            ("quantum", 0, "quantum"),
        ],
    )
    def test_invalid_field_rejected(self, field, value, match):
        with pytest.raises(ConfigError, match=match):
            _spec(**{field: value}).validate()

    def test_round_trips_through_dict(self):
        spec = _spec(schedule="random", quantum=16, seed=7)
        again = spec_from_dict(spec.to_dict())
        assert again == spec
        assert job_id(again) == job_id(spec)

    def test_job_id_covers_shared_fields(self):
        base = job_id(_spec())
        assert job_id(_spec(policy="private")) != base
        assert job_id(_spec(processes=4)) != base
        assert job_id(_spec(mix="heterogeneous")) != base
        assert job_id(_spec(quantum=8)) != base


class TestExecution:
    def test_execute_job_returns_cell_with_provenance(self):
        spec = _spec(seed=11)
        payload = execute_job(spec)
        assert payload["kind"] == "shared-mix"
        assert payload["seed"] == 11
        assert payload["config_digest"] == job_id(spec)
        cell = payload["result"]
        assert cell["mix"] == "homogeneous"
        assert cell["processes"] == 2
        assert cell["policy"] == "shared-persistent"
        assert cell["accesses"] > 0
        assert 0.0 <= cell["miss_rate"] <= 1.0

    def test_execute_job_rejects_invalid_spec(self):
        with pytest.raises(ConfigError):
            execute_job(_spec(policy="bogus"))


def config_error_worker(slot: int, tasks, events) -> None:
    """Rejects every job the way the real worker reports a bad spec."""
    while True:
        item = tasks.get()
        if item is None:
            return
        jid, spec = item
        events.put(("error", jid, "ConfigError: deterministic rejection"))


def flaky_error_worker(slot: int, tasks, events) -> None:
    """Reports a transient (non-config) error on every job."""
    while True:
        item = tasks.get()
        if item is None:
            return
        jid, spec = item
        events.put(("error", jid, "OSError: transient"))


class TestFailFast:
    def test_config_error_is_not_retried(self):
        with Scheduler(
            workers=1,
            worker_target=config_error_worker,
            max_retries=3,
            backoff_base=0.01,
        ) as scheduler:
            record = scheduler.submit(_spec())
            assert scheduler.wait([record.job_id], timeout=30)
            assert record.state == FAILED
            assert record.attempts == 1  # no retry burned on a bad spec
            assert "ConfigError" in record.error
            assert scheduler.metrics.retried == 0

    def test_transient_error_still_retries(self):
        with Scheduler(
            workers=1,
            worker_target=flaky_error_worker,
            max_retries=2,
            backoff_base=0.01,
        ) as scheduler:
            record = scheduler.submit(_spec())
            assert scheduler.wait([record.job_id], timeout=30)
            assert record.state == FAILED
            assert record.attempts == 3  # initial try + both retries
            assert scheduler.metrics.retried == 2


class TestSubmitCli:
    def test_unknown_policy_exits_2_before_any_request(self, capsys):
        code = main(
            [
                "submit",
                "--spec",
                '{"kind": "shared-mix", "mix": "heterogeneous", '
                '"processes": 2, "policy": "bogus"}',
                "--server",
                "http://127.0.0.1:1",  # would refuse the connection
            ]
        )
        assert code == 2
        assert "policy" in capsys.readouterr().err

    def test_invalid_json_exits_2(self, capsys):
        assert main(["submit", "--spec", "{not json"]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_spec_and_experiment_are_exclusive(self, capsys):
        assert main(["submit", "figure-9", "--spec", "{}"]) == 2

    def test_submit_without_target_exits_2(self, capsys):
        assert main(["submit"]) == 2
