"""Deterministic-schedule stress test.

The concurrency-lockset pass statically verdicts the service layer
"clean"; this test corroborates that dynamically: across 20 seeded
shuffles of the submission order (different dispatch interleavings,
different worker counts), every job must produce a byte-identical
payload under its content-addressed id.  A lockset bug — a torn
record update, a lost metrics increment — is exactly the kind of
failure that shows up as divergence between such runs.
"""

from __future__ import annotations

import random

from repro.service.jobs import JobSpec, job_id
from repro.service.scheduler import DONE, Scheduler

RUNS = 20
JOBS = 12


def square_worker(slot: int, tasks, events) -> None:
    """Deterministic payload derived purely from the spec."""
    while True:
        item = tasks.get()
        if item is None:
            return
        jid, spec = item
        seed = spec["seed"]
        events.put(("done", jid, {"seed": seed, "value": seed * seed}))


def _specs() -> list[JobSpec]:
    return [
        JobSpec(kind="experiment", experiment_id="figure-1", seed=n)
        for n in range(1, JOBS + 1)
    ]


def _run_once(shuffle_seed: int) -> dict[str, dict]:
    specs = _specs()
    random.Random(shuffle_seed).shuffle(specs)
    workers = 1 + shuffle_seed % 4
    with Scheduler(workers=workers, worker_target=square_worker) as scheduler:
        records = [scheduler.submit(spec) for spec in specs]
        assert scheduler.wait(
            [record.job_id for record in records], timeout=30.0
        )
        results = {}
        for record in records:
            status = scheduler.status_dict(record.job_id)
            assert status["state"] == DONE
            results[record.job_id] = scheduler.result(record.job_id)
        metrics = scheduler.metrics_dict()
        assert metrics["jobs_submitted"] == JOBS
        assert metrics["jobs_completed"] == JOBS
    return results


class TestDeterministicSchedules:
    def test_shuffled_submission_orders_converge(self):
        baseline = _run_once(0)
        assert set(baseline) == {job_id(spec) for spec in _specs()}
        for shuffle_seed in range(1, RUNS):
            assert _run_once(shuffle_seed) == baseline

    def test_lockset_pass_agrees_service_is_clean(self):
        from pathlib import Path

        from repro.analysis.whole.lockset import ConcurrencyLocksetRule
        from repro.analysis.whole.program import Program

        repo_root = Path(__file__).resolve().parents[2]
        program = Program.from_paths(
            [
                repo_root / "src" / "repro" / "service",
                repo_root / "src" / "repro" / "shared",
            ]
        )
        assert ConcurrencyLocksetRule().check(program) == []
