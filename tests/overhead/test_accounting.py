"""Unit tests for overhead accounting and Equation 3."""

from __future__ import annotations

import pytest

from repro.core.effects import Evicted, EvictionReason, Inserted, Promoted
from repro.overhead.accounting import OverheadAccount, overhead_ratio
from repro.overhead.model import TABLE2_COSTS


class TestAccount:
    def test_starts_empty(self):
        account = OverheadAccount()
        assert account.total == 0.0

    def test_creation_charges_switches_generation_and_copy(self):
        account = OverheadAccount()
        account.charge_trace_creation(242)
        expected = (
            2 * 25 + TABLE2_COSTS.trace_generation(242) + TABLE2_COSTS.promotion(242)
        )
        assert account.total == pytest.approx(expected)
        assert account.context_switches == 50

    def test_conflict_miss_same_structure_as_creation(self):
        a, b = OverheadAccount(), OverheadAccount()
        a.charge_trace_creation(300)
        b.charge_conflict_miss(300)
        assert a.total == b.total

    def test_effects_priced_by_kind(self):
        account = OverheadAccount()
        account.charge_effects([
            Inserted(trace_id=0, size=100, cache="nursery"),
            Evicted(trace_id=1, size=100, cache="nursery",
                    reason=EvictionReason.CAPACITY),
            Promoted(trace_id=2, size=100, src="nursery", dst="probation"),
        ])
        assert account.evictions == pytest.approx(TABLE2_COSTS.eviction(100))
        assert account.promotions == pytest.approx(TABLE2_COSTS.promotion(100))
        assert account.generation == 0.0

    def test_breakdown_sums_to_total(self):
        account = OverheadAccount()
        account.charge_trace_creation(242)
        account.charge_effects([
            Evicted(trace_id=1, size=80, cache="unified",
                    reason=EvictionReason.UNMAP),
        ])
        breakdown = account.breakdown()
        assert breakdown["total"] == pytest.approx(
            breakdown["generation"]
            + breakdown["context_switches"]
            + breakdown["evictions"]
            + breakdown["promotions"]
        )


class TestRatio:
    def test_equation3(self):
        assert overhead_ratio(80.7, 100.0) == pytest.approx(0.807)

    def test_below_one_means_reduction(self):
        assert overhead_ratio(50.0, 100.0) < 1.0

    def test_zero_baseline(self):
        assert overhead_ratio(0.0, 0.0) == 1.0
        assert overhead_ratio(5.0, 0.0) == float("inf")
