"""Unit tests for the Table 2 cost model (paper-value exactness)."""

from __future__ import annotations

import pytest

from repro.overhead.model import MEDIAN_TRACE_SIZE, TABLE2_COSTS, CostModel


class TestPaperValues:
    """Section 6.2 quotes exact spot values for a 242-byte trace; the
    model must reproduce them (it IS our substitution for the
    Pentium-4 measurements)."""

    def test_median_trace_size(self):
        assert MEDIAN_TRACE_SIZE == 242

    def test_trace_generation_at_median(self):
        assert round(TABLE2_COSTS.trace_generation(242)) == 69_834

    def test_eviction_at_median(self):
        assert round(TABLE2_COSTS.eviction(242)) == 3_316

    def test_promotion_at_median(self):
        assert round(TABLE2_COSTS.promotion(242)) == 13_354

    def test_context_switch(self):
        assert TABLE2_COSTS.context_switch == 25

    def test_conflict_miss_approximately_85k(self):
        # Paper: "approximately 85,000 instructions" for an average trace.
        assert TABLE2_COSTS.conflict_miss(242) == pytest.approx(85_000, rel=0.03)


class TestFormulaShape:
    def test_generation_is_sublinear(self):
        double = TABLE2_COSTS.trace_generation(484)
        single = TABLE2_COSTS.trace_generation(242)
        assert double < 2 * single

    def test_eviction_linear_with_base(self):
        assert TABLE2_COSTS.eviction(0) == 2650
        assert TABLE2_COSTS.eviction(100) == pytest.approx(2925)

    def test_promotion_linear_with_base(self):
        assert TABLE2_COSTS.promotion(0) == 8030
        assert TABLE2_COSTS.promotion(100) == pytest.approx(10230)

    def test_costs_monotone_in_size(self):
        sizes = [32, 64, 128, 242, 512, 1024]
        for fn in (
            TABLE2_COSTS.trace_generation,
            TABLE2_COSTS.eviction,
            TABLE2_COSTS.promotion,
            TABLE2_COSTS.conflict_miss,
        ):
            values = [fn(s) for s in sizes]
            assert values == sorted(values)

    def test_custom_model(self):
        free_promotion = CostModel(promotion_per_byte=0.0, promotion_base=0.0)
        assert free_promotion.promotion(242) == 0.0
        assert free_promotion.eviction(242) == TABLE2_COSTS.eviction(242)
