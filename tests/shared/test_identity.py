"""Content-addressed trace identity: keys and the interner.

Property-style coverage of the ISSUE contract: identical traces intern
to one key, a one-instruction difference does not, and keys are stable
across runs and platforms (golden digests pin the serialization).
"""

from __future__ import annotations

import pytest

from repro.errors import InvariantViolation
from repro.isa.blocks import BasicBlock
from repro.isa.instructions import (
    conditional_branch,
    direct_jump,
    straightline,
)
from repro.shared.identity import TraceInterner, TraceKey

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is an optional dep
    HAVE_HYPOTHESIS = False


def _blocks(block_ids, target, *, backward=False, filler=1):
    """A two-block trace whose first block branches to *target*."""
    first, second = block_ids
    return [
        BasicBlock(
            block_id=first,
            module_id=0,
            address=0x1000,
            instructions=[straightline() for _ in range(filler)]
            + [conditional_branch(target, backward=backward)],
        ),
        BasicBlock(
            block_id=second,
            module_id=0,
            address=0x2000,
            instructions=[straightline(), direct_jump(first, backward=True)],
        ),
    ]


class TestTraceKeyFromBlocks:
    def test_identical_structure_same_key(self):
        assert TraceKey.from_blocks(_blocks((1, 2), 2)) == TraceKey.from_blocks(
            _blocks((1, 2), 2)
        )

    def test_block_ids_and_addresses_do_not_matter(self):
        # Another process: different block ids, different addresses,
        # same structure (branch targets the trace's second block).
        a = TraceKey.from_blocks(_blocks((1, 2), 2))
        b = TraceKey.from_blocks(_blocks((71, 90), 90))
        assert a == b

    def test_one_instruction_difference_changes_key(self):
        assert TraceKey.from_blocks(_blocks((1, 2), 2, filler=1)) != (
            TraceKey.from_blocks(_blocks((1, 2), 2, filler=2))
        )

    def test_branch_direction_changes_key(self):
        assert TraceKey.from_blocks(_blocks((1, 2), 2)) != TraceKey.from_blocks(
            _blocks((1, 2), 2, backward=True)
        )

    def test_internal_vs_external_target_changes_key(self):
        internal = TraceKey.from_blocks(_blocks((1, 2), 2))
        external = TraceKey.from_blocks(_blocks((1, 2), 99))
        assert internal != external

    def test_golden_digest_is_stable(self):
        # Pins the canonical serialization: if this changes,
        # TRACE_KEY_VERSION must be bumped (old and new keys would
        # otherwise collide silently across sessions).
        assert TraceKey.from_blocks(_blocks((1, 2), 2)).digest == (
            TraceKey.from_blocks(_blocks((1, 2), 2)).digest
        )
        assert (
            TraceKey.from_workload("word", 7, 128, 0).digest
            == "c8414e3e0aaca07529e6b0e9d68f00dd"
        )


class TestTraceKeyFromWorkload:
    def test_same_identity_same_key(self):
        assert TraceKey.from_workload("gzip", 3, 200, 1) == TraceKey.from_workload(
            "gzip", 3, 200, 1
        )

    @pytest.mark.parametrize(
        "other",
        [
            ("gzip", 4, 200, 1),  # different trace id
            ("gzip", 3, 201, 1),  # different size
            ("gzip", 3, 200, 2),  # different module
            ("word", 3, 200, 1),  # different binary
        ],
    )
    def test_any_identity_change_changes_key(self, other):
        assert TraceKey.from_workload("gzip", 3, 200, 1) != (
            TraceKey.from_workload(*other)
        )

    def test_keys_are_orderable_and_hashable(self):
        keys = {
            TraceKey.from_workload("gzip", i, 100, 0): i for i in range(4)
        }
        assert len(keys) == 4
        assert sorted(keys) == sorted(keys, key=lambda k: k.digest)

    def test_short_prefix(self):
        key = TraceKey.from_workload("gzip", 1, 100, 0)
        assert key.short() == key.digest[:12]
        assert len(key.short()) == 12


if HAVE_HYPOTHESIS:

    @settings(max_examples=50, deadline=None)
    @given(
        namespace=st.sampled_from(["word", "gzip", "__shlib__"]),
        trace_id=st.integers(min_value=0, max_value=1 << 25),
        size=st.integers(min_value=1, max_value=1 << 16),
        module_id=st.integers(min_value=0, max_value=1 << 21),
    )
    def test_workload_key_is_deterministic(namespace, trace_id, size, module_id):
        first = TraceKey.from_workload(namespace, trace_id, size, module_id)
        second = TraceKey.from_workload(namespace, trace_id, size, module_id)
        assert first == second
        assert len(first.digest) == 32
        int(first.digest, 16)  # valid hex

    @settings(max_examples=50, deadline=None)
    @given(
        ids=st.lists(
            st.integers(min_value=0, max_value=200),
            min_size=1,
            max_size=40,
        )
    )
    def test_interner_gids_follow_first_appearance(ids):
        interner = TraceInterner()
        expected: dict[int, int] = {}
        for trace_id in ids:
            key = TraceKey.from_workload("bench", trace_id, 64, 0)
            gid, fresh = interner.intern(key, 64)
            assert fresh == (trace_id not in expected)
            assert gid == expected.setdefault(trace_id, len(expected))
            assert interner.key_of(gid) == key
        assert interner.n_unique == len(expected)


class TestTraceInterner:
    def test_duplicate_accounting(self):
        interner = TraceInterner()
        key = TraceKey.from_workload("crafty", 1, 300, 0)
        gid, fresh = interner.intern(key, 300)
        assert fresh
        for _ in range(3):
            again, fresh = interner.intern(key, 300)
            assert again == gid and not fresh
        assert interner.duplicate_requests == 3
        assert interner.duplicate_bytes == 900
        assert interner.n_unique == 1
        assert interner.unique_bytes == 300

    def test_size_mismatch_raises(self):
        interner = TraceInterner()
        key = TraceKey.from_workload("crafty", 1, 300, 0)
        interner.intern(key, 300)
        with pytest.raises(InvariantViolation, match="size"):
            interner.intern(key, 301)

    def test_lookup_and_size_of(self):
        interner = TraceInterner()
        key = TraceKey.from_workload("crafty", 1, 300, 0)
        assert interner.lookup(key) is None
        gid, _ = interner.intern(key, 300)
        assert interner.lookup(key) == gid
        assert interner.size_of(gid) == 300
