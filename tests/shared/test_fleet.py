"""Fleet stack: scheduler semantics, lazy workloads, engine byte-compat."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.experiments.shared import simulate_mix
from repro.shared.compose import LIBRARY_CATALOG, zipf_reaches
from repro.shared.fleet import (
    FleetWorkloads,
    ProcessStream,
    churn_plan,
    stream_segments,
)
from repro.shared.policy import POLICY_VARIANTS
from repro.sim.interleave import SCHEDULES
from tests.sim.test_interleave import (
    GOLDEN_SCHEDULE_DIGESTS,
    golden_logs,
    schedule_digest,
)

#: Fast scale for engine-equivalence replays.
SCALE = 128.0


def expand(streams, **kwargs):
    """Flatten a segment stream into per-record (process, index) pairs."""
    out = []
    for segment in stream_segments(streams, **kwargs):
        for index in range(segment.start, segment.stop):
            out.append((segment.process, index))
    return out


class TestSchedulerGolden:
    """The fleet scheduler must reproduce the frozen reference schedule
    when churn and weights are off (the P <= 8 anchor)."""

    @pytest.mark.parametrize("schedule", SCHEDULES)
    def test_matches_reference_digest(self, schedule):
        logs = golden_logs()
        streams = [ProcessStream(length=len(log.records)) for log in logs]

        def scheduled():
            # Recompute (process, global_time) pairs exactly as the
            # reference interleaver defines them.
            last_time = [0] * len(logs)
            global_time = 0
            for process, index in expand(
                streams, schedule=schedule, seed=9, quantum=5
            ):
                record = logs[process].records[index]
                delta = record.time - last_time[process]
                if delta > 0:
                    global_time += delta
                last_time[process] = record.time
                yield process, global_time

        assert schedule_digest(scheduled()) == GOLDEN_SCHEDULE_DIGESTS[schedule]


class TestSchedulerSemantics:
    def test_every_record_exactly_once_in_order(self):
        streams = [ProcessStream(37), ProcessStream(11), ProcessStream(53)]
        pairs = expand(streams, schedule="round-robin", quantum=4)
        for process, stream in enumerate(streams):
            indices = [i for p, i in pairs if p == process]
            assert indices == list(range(stream.length))

    def test_deterministic(self):
        streams = [ProcessStream(40), ProcessStream(25), ProcessStream(31)]
        a = list(stream_segments(streams, schedule="random", seed=7))
        b = list(stream_segments(streams, schedule="random", seed=7))
        assert a == b

    def test_seed_changes_random_schedule(self):
        streams = [ProcessStream(40), ProcessStream(40)]
        a = list(stream_segments(streams, schedule="random", seed=1))
        b = list(stream_segments(streams, schedule="random", seed=2))
        assert a != b

    @pytest.mark.parametrize("schedule", SCHEDULES)
    def test_spawn_turn_delays_admission(self, schedule):
        streams = [ProcessStream(50), ProcessStream(50, spawn_turn=6)]
        segments = list(
            stream_segments(streams, schedule=schedule, seed=3, quantum=5)
        )
        assert all(seg.process == 0 for seg in segments[:6])
        assert {seg.process for seg in segments} == {0, 1}

    @pytest.mark.parametrize("schedule", SCHEDULES)
    def test_limit_truncates_stream(self, schedule):
        streams = [ProcessStream(50, limit=17), ProcessStream(50)]
        pairs = expand(streams, schedule=schedule, seed=3, quantum=5)
        assert [i for p, i in pairs if p == 0] == list(range(17))
        assert [i for p, i in pairs if p == 1] == list(range(50))

    def test_all_spawned_late_fast_forwards(self):
        streams = [ProcessStream(10, spawn_turn=40)]
        pairs = expand(streams, schedule="round-robin", quantum=4)
        assert [i for _, i in pairs] == list(range(10))

    def test_weighted_draw_skews_schedule(self):
        streams = [ProcessStream(400), ProcessStream(400)]
        heavy = expand(
            streams, schedule="random", seed=5, quantum=4, weights=[99.0, 1.0]
        )
        first = [p for p, _ in heavy[:200]]
        assert first.count(0) > 150  # the heavy process dominates early

    def test_weighted_schedule_complete(self):
        streams = [
            ProcessStream(33, limit=20),
            ProcessStream(47, spawn_turn=3),
            ProcessStream(21),
        ]
        pairs = expand(
            streams, schedule="random", seed=5, quantum=4,
            weights=[1.0, 10.0, 0.5],
        )
        assert [i for p, i in pairs if p == 0] == list(range(20))
        assert [i for p, i in pairs if p == 1] == list(range(47))
        assert [i for p, i in pairs if p == 2] == list(range(21))

    @pytest.mark.parametrize(
        ("kwargs", "match"),
        [
            (dict(schedule="fifo"), "schedule"),
            (dict(quantum=0), "quantum"),
            (dict(schedule="round-robin", weights=[1.0, 1.0]), "weights"),
            (dict(schedule="random", weights=[1.0]), "weights"),
            (dict(schedule="random", weights=[1.0, 0.0]), "weight"),
        ],
    )
    def test_bad_arguments_rejected(self, kwargs, match):
        streams = [ProcessStream(5), ProcessStream(5)]
        with pytest.raises(ConfigError, match=match):
            list(stream_segments(streams, **kwargs))

    def test_empty_fleet_rejected(self):
        with pytest.raises(ConfigError, match="stream"):
            list(stream_segments([]))

    def test_negative_stream_fields_rejected(self):
        for bad in (
            ProcessStream(-1),
            ProcessStream(5, spawn_turn=-2),
            ProcessStream(5, limit=-3),
        ):
            with pytest.raises(ConfigError):
                list(stream_segments([bad]))


class TestFleetWorkloads:
    def test_from_specs_dedupes_contents(self):
        reaches = zipf_reaches(32, len(LIBRARY_CATALOG), seed=42)
        palette = ["word", "gzip", "iexplore", "crafty"]
        specs = [(palette[i % 4], reaches[i]) for i in range(32)]
        fleet = FleetWorkloads.from_specs(specs, seed=42, scale_multiplier=SCALE)
        assert fleet.n_processes == 32
        # Distinct contents are bounded by palette x observed reaches,
        # never by the process count.
        assert len(fleet.distinct) <= 4 * len(set(reaches))
        assert len(fleet.distinct) < 32
        # Identical specs share one workload object.
        by_spec = {}
        for process, spec in enumerate(specs):
            workload = fleet.workload_of(process)
            assert by_spec.setdefault(spec, workload) is workload

    def test_reach_zero_is_the_bare_benchmark(self):
        fleet = FleetWorkloads.from_specs(
            [("crafty", 0), ("crafty", 1)], seed=42, scale_multiplier=SCALE
        )
        names = [w.name for w in fleet.distinct]
        assert names[0] == "crafty"
        assert names[1] == "crafty+shlib"

    def test_reach_outside_catalog_rejected(self):
        with pytest.raises(ConfigError, match="reach"):
            FleetWorkloads.from_specs([("crafty", len(LIBRARY_CATALOG) + 1)])

    def test_empty_fleet_rejected(self):
        with pytest.raises(ConfigError, match="process"):
            FleetWorkloads.from_specs([])

    def test_zipf_reaches_shape(self):
        reaches = zipf_reaches(200, 4, seed=42)
        assert len(reaches) == 200
        assert all(1 <= r <= 4 for r in reaches)
        counts = [reaches.count(r) for r in (1, 2, 3, 4)]
        assert counts[0] == max(counts)  # rank 1 is the most popular

    def test_zipf_reaches_deterministic(self):
        assert zipf_reaches(50, 4, seed=9) == zipf_reaches(50, 4, seed=9)
        assert zipf_reaches(50, 4, seed=9) != zipf_reaches(50, 4, seed=10)


class TestChurnPlan:
    def test_deterministic(self):
        lengths = [100] * 64
        assert churn_plan(lengths, seed=1) == churn_plan(lengths, seed=1)
        assert churn_plan(lengths, seed=1) != churn_plan(lengths, seed=2)

    def test_zero_fraction_means_no_churn(self):
        streams = churn_plan([100] * 16, seed=1, fraction=0.0)
        assert all(s.spawn_turn == 0 and s.limit is None for s in streams)

    def test_limits_keep_majority_prefix(self):
        for stream in churn_plan([1000] * 64, seed=3):
            if stream.limit is not None:
                assert 500 <= stream.limit <= 900

    def test_bad_fraction_rejected(self):
        with pytest.raises(ConfigError, match="fraction"):
            churn_plan([10], fraction=1.5)


class TestEngineEquivalence:
    """The fleet engine must reproduce the reference simulator's cell
    dicts byte-for-byte on the paper-scale tables."""

    @pytest.mark.parametrize("mix", ["homogeneous", "heterogeneous"])
    @pytest.mark.parametrize("processes", [2, 4, 8])
    @pytest.mark.parametrize("schedule", SCHEDULES)
    def test_cells_identical_across_engines(self, mix, processes, schedule):
        for policy in POLICY_VARIANTS:
            legacy = simulate_mix(
                mix,
                processes,
                policy,
                scale_multiplier=SCALE,
                schedule=schedule,
            )
            fleet = simulate_mix(
                mix,
                processes,
                policy,
                scale_multiplier=SCALE,
                schedule=schedule,
                engine="fleet",
            )
            assert legacy == fleet

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError, match="engine"):
            simulate_mix(
                "homogeneous", 2, "private", scale_multiplier=SCALE,
                engine="turbo",
            )
