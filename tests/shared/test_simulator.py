"""Multi-process replay: accounting, dedup, and composition."""

from __future__ import annotations

import pytest

from repro.core.config import GenerationalConfig
from repro.errors import ConfigError, LogFormatError
from repro.shared.compose import (
    LIBRARY_TRACE_BASE,
    ProcessWorkload,
    build_process_workloads,
    compose_with_library,
    workload_keys,
)
from repro.shared.manager import make_group
from repro.shared.policy import sharing_config_for
from repro.shared.simulator import MultiProcessSimulator
from repro.tracelog.records import (
    EndOfLog,
    ModuleUnmap,
    TraceAccess,
    TraceCreate,
    TraceLog,
)

CONFIG = GenerationalConfig()


def _tiny_log(name: str) -> TraceLog:
    log = TraceLog(benchmark=name, duration_seconds=1.0, code_footprint=2000)
    for record in [
        TraceCreate(time=10, trace_id=0, size=100, module_id=0),
        TraceAccess(time=20, trace_id=0, repeat=3),
        TraceCreate(time=30, trace_id=1, size=120, module_id=1),
        TraceAccess(time=40, trace_id=1, repeat=2),
        TraceAccess(time=50, trace_id=0),
        ModuleUnmap(time=60, module_id=1),
        TraceCreate(time=70, trace_id=2, size=80, module_id=0),
        TraceAccess(time=80, trace_id=2),
        EndOfLog(time=100),
    ]:
        log.append(record)
    return log


def _workload(name: str, namespace: str | None = None) -> ProcessWorkload:
    log = _tiny_log(name)
    return ProcessWorkload(
        name=name, log=log, keys=workload_keys(namespace or name, log)
    )


def _run(policy: str, workloads: list[ProcessWorkload], **kwargs):
    capacities = tuple(1000 for _ in workloads)
    group = make_group(capacities, CONFIG, sharing_config_for(policy))
    return MultiProcessSimulator(group, workloads, **kwargs).run()


class TestAccounting:
    def test_stats_invariants_hold(self):
        result = _run("private", [_workload("a"), _workload("b", "other")])
        for summary in result.processes:
            assert summary.stats.accesses == (
                summary.stats.hits + summary.stats.misses
            )
            assert summary.stats.creations == 3
            assert summary.stats.accesses == 7

    def test_private_never_dedups(self):
        result = _run("private", [_workload("a"), _workload("a")])
        assert result.dedup_generations == 0
        assert result.dedup_bytes == 0
        assert result.generated_bytes == 2 * 300

    def test_shared_all_dedups_identical_processes(self):
        # Same binary twice: the second process's creations find every
        # content already resident.
        result = _run("shared-all", [_workload("a"), _workload("a")])
        assert result.dedup_generations > 0
        assert result.generated_bytes + result.dedup_bytes == 2 * 300
        assert result.duplicated_bytes == 0

    def test_distinct_content_never_dedups(self):
        result = _run("shared-all", [_workload("a"), _workload("b", "other")])
        assert result.dedup_generations == 0

    def test_aggregate_properties_sum_processes(self):
        result = _run("shared-all", [_workload("a"), _workload("a")])
        assert result.accesses == sum(
            p.stats.accesses for p in result.processes
        )
        assert result.misses == sum(p.stats.misses for p in result.processes)
        assert 0.0 <= result.miss_rate <= 1.0

    def test_unmap_is_per_process_under_sharing(self):
        # Process 0's unmap of module 1 must not invalidate process 1's
        # later access to its own module-1 trace.
        result = _run("shared-all", [_workload("a"), _workload("a")])
        for summary in result.processes:
            summary.stats.check_invariants()


class TestValidation:
    def test_workload_count_must_match_group(self):
        group = make_group((1000, 1000), CONFIG, sharing_config_for("private"))
        with pytest.raises(ConfigError, match="workloads"):
            MultiProcessSimulator(group, [_workload("a")])

    def test_missing_content_key_is_a_log_error(self):
        workload = _workload("a")
        workload.keys.pop(1)
        group = make_group((1000,), CONFIG, sharing_config_for("private"))
        with pytest.raises(LogFormatError, match="content key"):
            MultiProcessSimulator(group, [workload]).run()


class TestDeterminism:
    @pytest.mark.parametrize("schedule", ["round-robin", "random"])
    def test_repeated_runs_identical(self, schedule):
        def once():
            result = _run(
                "shared-persistent",
                [_workload("a"), _workload("a")],
                schedule=schedule,
                seed=7,
            )
            return (
                result.accesses,
                result.misses,
                result.generated_bytes,
                result.dedup_bytes,
                result.resident_bytes,
                [(p.stats.hits, p.stats.misses) for p in result.processes],
            )

        assert once() == once()


class TestComposition:
    def test_library_overlay_shares_keys_across_apps(self):
        workloads = build_process_workloads(
            ["word", "gzip"], seed=42, scale_multiplier=0.5
        )
        word_lib = {
            key
            for tid, key in workloads[0].keys.items()
            if tid >= LIBRARY_TRACE_BASE
        }
        gzip_lib = {
            key
            for tid, key in workloads[1].keys.items()
            if tid >= LIBRARY_TRACE_BASE
        }
        assert word_lib and word_lib == gzip_lib
        # App code, by contrast, never collides across benchmarks.
        word_app = {
            key
            for tid, key in workloads[0].keys.items()
            if tid < LIBRARY_TRACE_BASE
        }
        gzip_app = {
            key
            for tid, key in workloads[1].keys.items()
            if tid < LIBRARY_TRACE_BASE
        }
        assert not word_app & gzip_app

    def test_same_benchmark_shares_the_composed_workload(self):
        workloads = build_process_workloads(
            ["word", "word"], seed=42, scale_multiplier=0.5
        )
        assert workloads[0] is workloads[1]
        assert workloads[0].keys == workloads[1].keys

    def test_composed_log_validates_and_covers_creates(self):
        workloads = build_process_workloads(
            ["word"], seed=42, scale_multiplier=0.5
        )
        log = workloads[0].log
        log.validate()
        created = {r.trace_id for r in log.creates()}
        assert created == set(workloads[0].keys)
        assert log.benchmark == "word+shlib"

    def test_library_unmaps_are_dropped(self):
        app = _tiny_log("app")
        lib = _tiny_log("lib")
        composed = compose_with_library("app", app, lib)
        unmapped = [
            r for r in composed.log.records if isinstance(r, ModuleUnmap)
        ]
        # Only the app's own unmap survives the overlay.
        assert len(unmapped) == 1
        assert unmapped[0].module_id == 1

    def test_empty_mix_rejected(self):
        with pytest.raises(ConfigError):
            build_process_workloads([])

    def test_bad_library_scale_rejected(self):
        with pytest.raises(ConfigError, match="library scale"):
            build_process_workloads(["word"], library_scale=0.0)
