"""SharedPersistentCache: attachments, refcounted unmap, invariants."""

from __future__ import annotations

import pytest

from repro.errors import InvariantViolation, UnknownTraceError
from repro.policies.pseudocircular import PseudoCircularCache
from repro.shared.cache import SHARED_PERSISTENT, SharedPersistentCache


@pytest.fixture
def shared() -> SharedPersistentCache:
    return SharedPersistentCache(
        PseudoCircularCache(1000, name=SHARED_PERSISTENT)
    )


class TestAttachment:
    def test_insert_attaches_the_inserter(self, shared):
        shared.insert(0, 100, time=1, process=2, module_id=7)
        assert shared.contains(0)
        assert shared.processes_of(0) == (2,)
        shared.check_invariants()

    def test_attach_reuses_resident_copy(self, shared):
        shared.insert(0, 100, time=1, process=0, module_id=7)
        shared.attach(0, process=1, module_id=7)
        shared.attach(0, process=3, module_id=9)
        assert shared.processes_of(0) == (0, 1, 3)
        assert shared.attach_reuses == 2
        assert shared.reused_bytes == 200
        # One physical copy regardless of sharers.
        assert shared.used_bytes == 100
        assert shared.n_traces == 1

    def test_reattach_by_same_process_is_not_a_reuse(self, shared):
        shared.insert(0, 100, time=1, process=0, module_id=7)
        shared.attach(0, process=0, module_id=7)
        assert shared.attach_reuses == 0

    def test_attach_to_absent_trace_raises(self, shared):
        with pytest.raises(UnknownTraceError):
            shared.attach(5, process=0, module_id=7)


class TestDetach:
    def test_copy_survives_until_last_sharer_unmaps(self, shared):
        shared.insert(0, 100, time=1, process=0, module_id=7)
        shared.attach(0, process=1, module_id=7)

        evicted, detached = shared.detach_module(process=0, module_id=7)
        assert evicted == [] and detached == [0]
        assert shared.contains(0)
        assert shared.processes_of(0) == (1,)

        evicted, detached = shared.detach_module(process=1, module_id=7)
        assert [t.trace_id for t in evicted] == [0] and detached == [0]
        assert not shared.contains(0)
        shared.check_invariants()

    def test_detach_is_per_module(self, shared):
        shared.insert(0, 100, time=1, process=0, module_id=7)
        shared.insert(1, 100, time=2, process=0, module_id=8)
        evicted, detached = shared.detach_module(process=0, module_id=7)
        assert [t.trace_id for t in evicted] == [0] and detached == [0]
        assert shared.contains(1)

    def test_detach_unknown_module_is_noop(self, shared):
        shared.insert(0, 100, time=1, process=0, module_id=7)
        assert shared.detach_module(process=0, module_id=99) == ([], [])


class TestAccounting:
    def test_per_process_hits(self, shared):
        shared.insert(0, 100, time=1, process=0, module_id=7)
        shared.attach(0, process=1, module_id=7)
        shared.touch(0, time=5, count=3, process=0)
        shared.touch(0, time=6, count=2, process=1)
        shared.touch(0, time=7, count=1, process=1)
        assert shared.hits_by_process == {0: 3, 1: 3}

    def test_capacity_eviction_clears_attachments(self, shared):
        shared.insert(0, 100, time=1, process=0, module_id=7)
        shared.attach(0, process=1, module_id=7)
        shared.evict(0)
        assert not shared.contains(0)
        assert shared.processes_of(0) == ()
        shared.check_invariants()

    def test_placement_victims_lose_their_attachments(self):
        shared = SharedPersistentCache(
            PseudoCircularCache(250, name=SHARED_PERSISTENT)
        )
        shared.insert(0, 100, time=1, process=0, module_id=7)
        shared.insert(1, 100, time=2, process=1, module_id=7)
        victims = shared.insert(2, 100, time=3, process=0, module_id=7)
        assert victims  # something had to go
        shared.check_invariants()
        for victim in victims:
            assert shared.processes_of(victim.trace_id) == ()


class TestInvariants:
    def test_orphan_attachment_detected(self, shared):
        shared.insert(0, 100, time=1, process=0, module_id=7)
        shared._cache.remove(0)  # corrupt: resident and attachments disagree
        with pytest.raises(InvariantViolation, match="attachment"):
            shared.check_invariants()

    def test_zero_sharer_residency_detected(self, shared):
        shared.insert(0, 100, time=1, process=0, module_id=7)
        shared._attachments[0] = {}
        with pytest.raises(InvariantViolation, match="zero sharers"):
            shared.check_invariants()
