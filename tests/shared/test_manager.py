"""Cache groups: private / shared-persistent / shared-all behaviour."""

from __future__ import annotations

import pytest

from repro.core.config import GenerationalConfig
from repro.core.effects import Evicted, EvictionReason, Promoted
from repro.errors import ConfigError
from repro.shared.cache import SHARED_PERSISTENT
from repro.shared.manager import (
    PrivateCacheGroup,
    SharedAllGroup,
    SharedPersistentGroup,
    make_group,
)
from repro.shared.policy import (
    SharingConfig,
    SharingPolicy,
    TemperatureTracker,
    sharing_config_for,
)

#: Nursery holds two 100-byte traces; probation and persistent are
#: roomy, so promotion flows are easy to drive deterministically.
CONFIG = GenerationalConfig(
    nursery_fraction=0.2, probation_fraction=0.4, persistent_fraction=0.4
)

CAPS = (1000, 1000)


def _shared_group(**sharing_kwargs) -> SharedPersistentGroup:
    sharing = SharingConfig(
        policy=SharingPolicy.SHARED_PERSISTENT, **sharing_kwargs
    )
    return make_group(CAPS, CONFIG, sharing)


def _graduate(group, process: int, gid: int, time: int) -> list:
    """Drive *gid* from nursery to the shared persistent cache: fill
    the nursery behind it, then hit it in probation (threshold 1)."""
    group.insert(process, gid, 100, module_id=0, time=time)
    group.insert(process, gid + 1000, 100, module_id=0, time=time + 1)
    effects = group.insert(process, gid + 1001, 100, module_id=0, time=time + 2)
    assert group.lookup(process, gid) == "probation", effects
    outcome = group.on_hit(process, gid, time + 3, 1, module_id=0)
    return outcome.effects


class TestMakeGroup:
    def test_policy_dispatch(self):
        assert isinstance(
            make_group(CAPS, CONFIG, sharing_config_for("private")),
            PrivateCacheGroup,
        )
        assert isinstance(
            make_group(CAPS, CONFIG, sharing_config_for("shared-persistent")),
            SharedPersistentGroup,
        )
        assert isinstance(
            make_group(CAPS, CONFIG, sharing_config_for("shared-all")),
            SharedAllGroup,
        )

    def test_temperature_requires_shared_persistent(self):
        sharing = SharingConfig(policy=SharingPolicy.PRIVATE, temperature=True)
        with pytest.raises(ConfigError, match="temperature"):
            make_group(CAPS, CONFIG, sharing)

    def test_equal_total_capacity_across_policies(self):
        totals = {
            variant: make_group(
                CAPS, CONFIG, sharing_config_for(variant)
            ).total_capacity
            for variant in ("private", "shared-persistent", "shared-all")
        }
        assert len(set(totals.values())) == 1, totals

    def test_empty_group_rejected(self):
        with pytest.raises(ConfigError):
            make_group((), CONFIG, sharing_config_for("private"))


class TestPrivateGroup:
    def test_no_dedup_ever(self):
        group = make_group(CAPS, CONFIG, sharing_config_for("private"))
        first = group.insert(0, 7, 100, module_id=0, time=1)
        second = group.insert(1, 7, 100, module_id=0, time=2)
        assert not first.deduped and not second.deduped
        assert group.resident_copies()[7] == 2
        assert group.duplicated_bytes(lambda gid: 100) == 100
        group.check_invariants()


class TestSharedPersistentGroup:
    def test_promotion_reaches_shared_cache(self):
        group = _shared_group()
        effects = _graduate(group, process=0, gid=7, time=10)
        promoted = [e for e in effects if isinstance(e, Promoted)]
        assert [e.dst for e in promoted] == [SHARED_PERSISTENT]
        assert group.lookup(0, 7) == SHARED_PERSISTENT
        group.check_invariants()

    def test_insert_dedups_against_shared_copy(self):
        group = _shared_group()
        _graduate(group, process=0, gid=7, time=10)
        outcome = group.insert(1, 7, 100, module_id=3, time=50)
        assert outcome.deduped and outcome.effects == []
        assert group.shared.processes_of(7) == (0, 1)
        # One physical copy: nothing duplicated anywhere in the group.
        assert group.resident_copies()[7] == 1

    def test_hit_on_foreign_shared_copy_attaches(self):
        group = _shared_group()
        _graduate(group, process=0, gid=7, time=10)
        outcome = group.on_hit(1, 7, 60, 2, module_id=3)
        assert outcome.cache == SHARED_PERSISTENT
        assert group.shared.processes_of(7) == (0, 1)
        assert group.shared.hits_by_process[1] == 2

    def test_unmap_waits_for_last_sharer(self):
        group = _shared_group()
        _graduate(group, process=0, gid=7, time=10)
        group.insert(1, 7, 100, module_id=0, time=50)  # dedup attach

        effects = group.unmap_module(0, module_id=0, time=60)
        assert all(
            not (isinstance(e, Evicted) and e.trace_id == 7) for e in effects
        )
        assert group.lookup(1, 7) == SHARED_PERSISTENT

        effects = group.unmap_module(1, module_id=0, time=70)
        evictions = [
            e for e in effects if isinstance(e, Evicted) and e.trace_id == 7
        ]
        assert len(evictions) == 1
        assert evictions[0].reason is EvictionReason.UNMAP
        assert group.lookup(0, 7) is None and group.lookup(1, 7) is None
        group.check_invariants()

    def test_shared_pin_claims_are_refcounted(self):
        group = _shared_group()
        _graduate(group, process=0, gid=7, time=10)
        group.insert(1, 7, 100, module_id=0, time=50)
        assert group.pin(0, 7) and group.pin(1, 7)
        assert group.shared.trace(7).pinned

        group.unpin(0, 7)
        assert group.shared.trace(7).pinned  # process 1 still claims it
        group.unpin(1, 7)
        assert not group.shared.trace(7).pinned

    def test_unmap_drops_that_processs_pin_claim(self):
        group = _shared_group()
        _graduate(group, process=0, gid=7, time=10)
        group.insert(1, 7, 100, module_id=0, time=50)
        group.pin(0, 7)
        group.unmap_module(0, module_id=0, time=60)
        # Process 0 is gone, and so is its pin claim.
        assert not group.shared.trace(7).pinned

    def test_pin_miss_returns_false(self):
        group = _shared_group()
        assert not group.pin(0, 99)
        assert not group.unpin(0, 99)


class TestTemperaturePromotion:
    def test_cold_trace_is_not_promoted(self):
        group = _shared_group(
            temperature=True, temperature_threshold=2.5,
            temperature_half_life=1_000_000,
        )
        group.insert(0, 7, 100, module_id=0, time=1)
        group.insert(0, 8, 100, module_id=0, time=2)
        group.insert(0, 9, 100, module_id=0, time=3)
        assert group.lookup(0, 7) == "probation"
        # Two hits leave the temperature at ~2 < 2.5: stays in probation
        # (the fixed threshold 1 would already have promoted it).
        group.on_hit(0, 7, 10, 1, module_id=0)
        group.on_hit(0, 7, 11, 1, module_id=0)
        assert group.lookup(0, 7) == "probation"
        group.on_hit(0, 7, 12, 1, module_id=0)
        assert group.lookup(0, 7) == SHARED_PERSISTENT

    def test_tracker_decay_halves_per_half_life(self):
        tracker = TemperatureTracker(threshold=2.0, half_life=100)
        tracker.observe(1, time=0, count=4)
        assert tracker.temperature(1, time=0) == pytest.approx(4.0)
        assert tracker.temperature(1, time=100) == pytest.approx(2.0)
        assert tracker.temperature(1, time=200) == pytest.approx(1.0)
        assert tracker.is_hot(1, time=100)
        assert not tracker.is_hot(1, time=201)
        tracker.forget(1)
        assert tracker.temperature(1, time=0) == 0.0


class TestSharedAllGroup:
    def test_second_create_dedups(self):
        group = make_group(CAPS, CONFIG, sharing_config_for("shared-all"))
        first = group.insert(0, 7, 100, module_id=0, time=1)
        second = group.insert(1, 7, 100, module_id=0, time=2)
        assert not first.deduped and second.deduped
        assert group.resident_copies()[7] == 1
        assert group.duplicated_bytes(lambda gid: 100) == 0
        group.check_invariants()

    def test_unmap_refcounting(self):
        group = make_group(CAPS, CONFIG, sharing_config_for("shared-all"))
        group.insert(0, 7, 100, module_id=0, time=1)
        group.insert(1, 7, 100, module_id=0, time=2)

        assert group.unmap_module(0, module_id=0, time=3) == []
        assert group.lookup(1, 7) is not None

        effects = group.unmap_module(1, module_id=0, time=4)
        assert [e.trace_id for e in effects if isinstance(e, Evicted)] == [7]
        assert group.lookup(0, 7) is None
        group.check_invariants()

    def test_pin_claims_are_refcounted(self):
        group = make_group(CAPS, CONFIG, sharing_config_for("shared-all"))
        group.insert(0, 7, 100, module_id=0, time=1)
        assert group.pin(0, 7) and group.pin(1, 7)
        group.unpin(0, 7)
        group.unpin(1, 7)
        group.check_invariants()
