"""Cluster HTTP front end tests: JSON API, SSE streams, 429 shedding.

Runs the real asyncio server on a free port with echo/slow workers and
drives it through the hardened ServiceClient.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.cluster.admission import AdmissionController
from repro.cluster.events import EventBus
from repro.cluster.http import ClusterServer, make_cluster_server
from repro.cluster.shards import ClusterScheduler
from repro.cluster.store_tier import TieredResultStore
from repro.errors import ConfigError, OverloadedError, ServiceError
from repro.service.client import ServiceClient
from repro.service.jobs import JobSpec, job_id
from tests.cluster.test_shards import slow_worker
from tests.service.test_scheduler import echo_worker

SPEC = JobSpec(kind="experiment", experiment_id="figure-1")


def _spec(n: int) -> JobSpec:
    return JobSpec(kind="experiment", experiment_id="figure-1", seed=n)


@pytest.fixture
def service(tmp_path):
    """A live 2-shard cluster server; yields (client, cluster)."""
    store = TieredResultStore()
    cluster = ClusterScheduler(
        shards=2,
        store=store,
        admission=AdmissionController(watermark=64),
        bus=EventBus(),
        worker_target=echo_worker,
    )
    cluster.start()
    server = ClusterServer(cluster, port=0)
    host, port = server.start()
    client = ServiceClient(f"http://{host}:{port}", tenant="tester")
    try:
        yield client, cluster
    finally:
        client.close()
        server.stop()
        cluster.shutdown()


class TestEndpoints:
    def test_healthz(self, service):
        client, _ = service
        health = client.healthz()
        assert health["status"] == "ok"
        assert set(health["shards"]) == {"shard-0", "shard-1"}

    def test_submit_and_result_round_trip(self, service):
        client, _ = service
        status = client.submit(SPEC)
        assert status["job_id"] == job_id(SPEC)
        status = client.wait(status["job_id"], timeout=30)
        assert status["state"] == "done"
        payload = client.result(status["job_id"])
        assert payload["echo"] == "figure-1"

    def test_metrics_exposes_shards_admission_store(self, service):
        client, _ = service
        client.submit_and_wait(SPEC, timeout=30)
        metrics = client.metrics()
        for shard in metrics["shards"].values():
            assert "queue_depth" in shard
            assert shard["ring_state"] == "live"
        assert metrics["admission"]["accepted"] >= 1
        assert "nursery_insertions" in metrics["store"]
        assert metrics["cluster"]["jobs_completed"] >= 1

    def test_invalid_spec_is_400(self, service):
        client, _ = service
        with pytest.raises(ConfigError, match="HTTP 400"):
            client.submit({"kind": "experiment"})

    def test_unknown_job_is_404(self, service):
        client, _ = service
        with pytest.raises(ServiceError, match="HTTP 404"):
            client.status("j" + "0" * 31)

    def test_unfinished_result_is_409(self, tmp_path):
        cluster = ClusterScheduler(shards=1, worker_target=slow_worker)
        cluster.start()
        server = make_cluster_server(cluster, port=0)
        host, port = server.address
        try:
            with ServiceClient(f"http://{host}:{port}") as client:
                status = client.submit(SPEC)
                with pytest.raises(ServiceError, match="HTTP 409"):
                    client.result(status["job_id"])
        finally:
            server.stop()
            cluster.shutdown()

    def test_unknown_endpoint_is_404(self, service):
        client, _ = service
        with pytest.raises(ServiceError, match="HTTP 404"):
            client._request("GET", "/nope")

    def test_connection_reuse_across_requests(self, service):
        client, _ = service
        client.healthz()
        first = client._conn
        client.metrics()
        assert client._conn is first


class TestOverload:
    def test_shed_is_429_with_retry_after(self, tmp_path):
        cluster = ClusterScheduler(
            shards=1,
            admission=AdmissionController(watermark=1),
            worker_target=slow_worker,
        )
        cluster.start()
        server = make_cluster_server(cluster, port=0)
        host, port = server.address
        try:
            with ServiceClient(f"http://{host}:{port}", tenant="t") as client:
                sheds = []
                for n in range(12):
                    try:
                        client.submit(_spec(n))
                    except OverloadedError as exc:
                        sheds.append(exc)
                assert sheds, "the deliberate overload never shed"
                assert all(exc.retry_after > 0 for exc in sheds)
                assert all(exc.reason == "queue" for exc in sheds)
                # The raw response carries the Retry-After header too.
                shed = None
                for n in range(50, 100):
                    request = urllib.request.Request(
                        f"http://{host}:{port}/jobs",
                        data=json.dumps(_spec(n).to_dict()).encode(),
                        method="POST",
                        headers={"Content-Type": "application/json"},
                    )
                    try:
                        urllib.request.urlopen(request, timeout=10).read()
                    except urllib.error.HTTPError as exc:
                        shed = exc
                        break
                assert shed is not None, "raw overload burst never shed"
                assert shed.code == 429
                assert int(shed.headers["Retry-After"]) >= 1
                body = json.load(shed)
                assert body["reason"] == "queue"
                assert body["retry_after"] > 0
        finally:
            server.stop()
            cluster.shutdown()


class TestEventStream:
    def test_stream_reaches_terminal_state(self, service):
        client, _ = service
        status = client.submit(SPEC)
        states = [event["state"] for event in client.events(status["job_id"])]
        assert states[-1] == "done"
        # No duplicate terminal events despite the replay/live overlap.
        assert states.count("done") == 1

    def test_subscribe_after_done_replays_terminal_event(self, service):
        client, _ = service
        status = client.submit_and_wait(SPEC, timeout=30)[0]
        events = list(client.events(status["job_id"]))
        assert len(events) == 1
        assert events[0]["state"] == "done"
        assert events[0]["job_id"] == status["job_id"]

    def test_stream_unknown_job_is_404(self, service):
        client, _ = service
        with pytest.raises(ServiceError, match="HTTP 404"):
            list(client.events("j" + "0" * 31))

    def test_live_stream_sees_running_then_done(self, tmp_path):
        cluster = ClusterScheduler(
            shards=1, bus=EventBus(), worker_target=slow_worker
        )
        cluster.start()
        server = make_cluster_server(cluster, port=0)
        host, port = server.address
        try:
            with ServiceClient(f"http://{host}:{port}") as client:
                status = client.submit(SPEC)
                seen: list[str] = []
                for event in client.events(status["job_id"]):
                    seen.append(event["state"])
                assert seen[-1] == "done"
                assert seen[0] in ("queued", "running")
        finally:
            server.stop()
            cluster.shutdown()


class TestServerLifecycle:
    def test_double_start_rejected(self, service):
        _, cluster = service
        server = ClusterServer(cluster, port=0)
        server.start()
        try:
            with pytest.raises(ServiceError, match="already started"):
                server.start()
        finally:
            server.stop()

    def test_stop_is_idempotent(self, tmp_path):
        cluster = ClusterScheduler(shards=1, worker_target=echo_worker)
        cluster.start()
        try:
            server = ClusterServer(cluster, port=0)
            server.start()
            server.stop()
            server.stop()
        finally:
            cluster.shutdown()
