"""Admission-control gate tests (watermark, token bucket, fair share).

Every clock-bearing call takes an explicit ``now``, so the token-bucket
timing is tested deterministically with no sleeping.
"""

from __future__ import annotations

import pytest

from repro.cluster.admission import (
    AdmissionController,
    TokenBucket,
)
from repro.errors import ConfigError


class TestTokenBucket:
    def test_burst_then_deficit(self):
        bucket = TokenBucket(rate=10.0, burst=2)
        assert bucket.consume(0.0) == (True, 0.0)
        assert bucket.consume(0.0) == (True, 0.0)
        ok, wait = bucket.consume(0.0)
        assert not ok
        assert wait == pytest.approx(0.1)

    def test_refill_over_time(self):
        bucket = TokenBucket(rate=10.0, burst=1)
        assert bucket.consume(0.0)[0]
        assert not bucket.consume(0.0)[0]
        assert bucket.consume(0.2)[0]  # 2 tokens accrued, capped at 1

    def test_never_exceeds_burst(self):
        bucket = TokenBucket(rate=100.0, burst=1)
        assert bucket.consume(0.0)[0]
        # A long idle stretch still refills to at most `burst`.
        assert bucket.consume(100.0)[0]
        assert not bucket.consume(100.0)[0]

    def test_validation(self):
        with pytest.raises(ConfigError, match="rate"):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ConfigError, match="burst"):
            TokenBucket(rate=1.0, burst=0)


class TestWatermark:
    def test_sheds_above_watermark(self):
        control = AdmissionController(watermark=4)
        decision = control.admit("a", queue_depth=4)
        assert not decision.accepted
        assert decision.reason == "queue"
        assert decision.retry_after > 0

    def test_admits_below_watermark(self):
        control = AdmissionController(watermark=4)
        decision = control.admit("a", queue_depth=3)
        assert decision.accepted
        assert decision.reason is None
        assert decision.retry_after == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError, match="watermark"):
            AdmissionController(watermark=0)
        with pytest.raises(ConfigError, match="weight"):
            AdmissionController(weights={"a": 0.0})
        with pytest.raises(ConfigError, match="weight"):
            AdmissionController(default_weight=-1.0)


class TestRateGate:
    def test_rate_shed_reports_token_deficit(self):
        control = AdmissionController(watermark=100, rate=10.0, burst=1)
        assert control.admit("a", queue_depth=0, now=0.0).accepted
        decision = control.admit("a", queue_depth=0, now=0.0)
        assert not decision.accepted
        assert decision.reason == "rate"
        assert decision.retry_after == pytest.approx(0.1)

    def test_rate_recovers(self):
        control = AdmissionController(watermark=100, rate=10.0, burst=1)
        assert control.admit("a", queue_depth=0, now=0.0).accepted
        assert control.admit("a", queue_depth=0, now=0.5).accepted


class TestFairShare:
    def test_greedy_tenant_shed_under_contention(self):
        # watermark 8 -> contention threshold 4, so once 4 submissions
        # are in flight a lone tenant's share is the full watermark but
        # a second active tenant halves it.
        control = AdmissionController(watermark=8)
        for _ in range(6):
            assert control.admit("greedy", queue_depth=0).accepted
        # greedy alone: active weight 1, share 8 -> still admitted.
        assert control.admit("light", queue_depth=0).accepted
        # Now two active tenants: greedy's share is ceil(8 * 1/2) = 4,
        # and it already holds 6 -> shed.
        decision = control.admit("greedy", queue_depth=0)
        assert not decision.accepted
        assert decision.reason == "fair-share"
        # The light tenant is still within its share.
        assert control.admit("light", queue_depth=0).accepted

    def test_no_fairness_below_contention(self):
        control = AdmissionController(watermark=100)
        # 49 in flight < contention threshold 50: borrow freely.
        for _ in range(49):
            assert control.admit("greedy", queue_depth=0).accepted

    def test_release_restores_share(self):
        control = AdmissionController(watermark=8)
        for _ in range(6):
            assert control.admit("greedy", queue_depth=0).accepted
        assert control.admit("light", queue_depth=0).accepted
        assert not control.admit("greedy", queue_depth=0).accepted
        for _ in range(3):
            control.release("greedy")
        assert control.admit("greedy", queue_depth=0).accepted

    def test_weighted_share(self):
        control = AdmissionController(
            watermark=8, weights={"heavy": 3.0, "light": 1.0}
        )
        for _ in range(4):
            assert control.admit("heavy", queue_depth=0).accepted
        assert control.admit("light", queue_depth=0).accepted
        # heavy's share is ceil(8 * 3/4) = 6: two more fit.
        assert control.admit("heavy", queue_depth=0).accepted
        assert control.admit("heavy", queue_depth=0).accepted
        assert not control.admit("heavy", queue_depth=0).accepted
        # light's share is ceil(8 * 1/4) = 2: one more fits.
        assert control.admit("light", queue_depth=0).accepted
        assert not control.admit("light", queue_depth=0).accepted


class TestAccounting:
    def test_release_never_underflows(self):
        control = AdmissionController(watermark=4)
        control.release("ghost")
        counters = control.counters()
        assert counters["tenants"]["ghost"]["inflight"] == 0

    def test_counters_shape(self):
        control = AdmissionController(watermark=4)
        assert control.admit("a", queue_depth=0).accepted
        assert not control.admit("a", queue_depth=9).accepted
        counters = control.counters()
        assert counters["accepted"] == 1
        assert counters["shed"] == 1
        assert counters["shed_rate"] == pytest.approx(0.5)
        assert counters["shed_by_reason"] == {
            "queue": 1,
            "rate": 0,
            "fair-share": 0,
        }
        assert counters["watermark"] == 4
        tenant = counters["tenants"]["a"]
        assert tenant == {
            "weight": 1.0,
            "inflight": 1,
            "accepted": 1,
            "shed": 1,
        }
