"""Property tests pinning down the rendezvous ring's guarantees.

Determinism, partition, and the minimal-disruption bound are the three
properties the cluster's byte-identical-results story rests on, so each
is a hypothesis property over random shard sets and job ids rather
than a handful of examples.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.ring import DRAINED, LIVE, ShardRing, placement_score
from repro.errors import ConfigError, ShardError

#: Plausible content-addressed ids (the real ones are "j" + 31 hex).
job_ids = st.text(
    alphabet="0123456789abcdef", min_size=8, max_size=31
).map(lambda tail: f"j{tail}")

shard_sets = st.lists(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz-0123456789",
        min_size=1,
        max_size=12,
    ),
    min_size=1,
    max_size=8,
    unique=True,
)


class TestConstruction:
    def test_empty_ring_rejected(self):
        with pytest.raises(ConfigError, match="at least one shard"):
            ShardRing([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            ShardRing(["a", "a"])

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigError, match="non-empty"):
            ShardRing(["a", ""])

    def test_unknown_shard_raises(self):
        ring = ShardRing(["a"])
        with pytest.raises(ShardError, match="unknown shard"):
            ring.drain("b")
        with pytest.raises(ShardError, match="unknown shard"):
            ring.state("b")

    def test_states_and_health_transitions(self):
        ring = ShardRing(["a", "b"])
        assert ring.shards() == ("a", "b")
        assert ring.live_shards() == ("a", "b")
        ring.drain("a")
        assert ring.state("a") == DRAINED
        assert ring.live_shards() == ("b",)
        ring.drain("a")  # idempotent
        ring.restore("a")
        assert ring.state("a") == LIVE
        assert ring.live_shards() == ("a", "b")

    def test_all_drained_raises(self):
        ring = ShardRing(["a", "b"])
        ring.drain("a")
        ring.drain("b")
        with pytest.raises(ShardError, match="no live shard"):
            ring.route("j" + "0" * 31)


@given(shards=shard_sets, jid=job_ids)
@settings(max_examples=100, deadline=None)
def test_routing_is_deterministic(shards, jid):
    # Two independently built rings over the same shard names agree:
    # placement is a pure function of (live set, job id), with no
    # process state involved.
    assert ShardRing(shards).route(jid) == ShardRing(shards).route(jid)


@given(shards=shard_sets, jids=st.lists(job_ids, min_size=1, max_size=30))
@settings(max_examples=100, deadline=None)
def test_partition_every_id_owned_by_exactly_one_live_shard(shards, jids):
    ring = ShardRing(shards)
    placement = ring.placement(jids)
    for jid in jids:
        owner = placement[jid]
        assert owner in ring.live_shards()
        # The argmax definition: no live shard scores higher, and a
        # score tie is broken toward the lexically smaller name.
        best = placement_score(owner, jid)
        for other in ring.live_shards():
            score = placement_score(other, jid)
            assert score < best or (score == best and owner <= other)


@given(
    shards=st.lists(
        st.text(
            alphabet="abcdefghijklmnopqrstuvwxyz-0123456789",
            min_size=1,
            max_size=12,
        ),
        min_size=2,
        max_size=8,
        unique=True,
    ),
    jids=st.lists(job_ids, min_size=1, max_size=40, unique=True),
    data=st.data(),
)
@settings(max_examples=100, deadline=None)
def test_drain_moves_only_the_drained_shards_keys(shards, jids, data):
    ring = ShardRing(shards)
    before = ring.placement(jids)
    victim = data.draw(st.sampled_from(shards), label="drained shard")
    ring.drain(victim)
    after = ring.placement(jids)
    for jid in jids:
        if before[jid] == victim:
            assert after[jid] != victim
        else:
            # Minimal disruption: a surviving key keeps its own argmax.
            assert after[jid] == before[jid]
    # Restore brings back exactly the keys the shard owned before.
    ring.restore(victim)
    assert ring.placement(jids) == before
