"""Generational tiered result store tests (nursery/probation/disk)."""

from __future__ import annotations

import pytest

from repro.cluster.store_tier import TieredResultStore
from repro.errors import ConfigError
from repro.service.store import ResultStore


def _jid(n: int) -> str:
    return "j" + format(n, "031x")


PAYLOAD = {"kind": "experiment", "result": {"value": 1}}


class TestValidation:
    def test_capacities_must_be_positive(self):
        with pytest.raises(ConfigError, match="nursery"):
            TieredResultStore(nursery_capacity=0)
        with pytest.raises(ConfigError, match="probation"):
            TieredResultStore(probation_capacity=0)


class TestMemoryOnly:
    def test_put_lands_in_nursery(self):
        store = TieredResultStore()
        store.put(_jid(1), PAYLOAD)
        counters = store.counters()
        assert counters["nursery_insertions"] == 1
        assert counters["nursery_size"] == 1
        assert counters["probation_size"] == 0

    def test_second_hit_promotes(self):
        store = TieredResultStore()
        store.put(_jid(1), PAYLOAD)
        # put counts as the first "hit"; the second proves the entry.
        assert store.get(_jid(1)) == PAYLOAD
        counters = store.counters()
        assert counters["nursery_hits"] == 1
        assert counters["promotions"] == 1
        assert counters["probation_size"] == 1
        assert counters["nursery_size"] == 0
        # Third access is a probation hit.
        assert store.get(_jid(1)) == PAYLOAD
        assert store.counters()["probation_hits"] == 1

    def test_one_hit_wonders_die_in_the_nursery(self):
        store = TieredResultStore(nursery_capacity=2)
        for n in range(3):
            store.put(_jid(n), PAYLOAD)
        counters = store.counters()
        assert counters["nursery_evictions"] == 1
        assert counters["nursery_size"] == 2
        # The LRU victim is gone (memory-only store: no disk fallback).
        assert store.get(_jid(0)) is None
        assert store.counters()["nursery_misses"] == 1

    def test_promoted_entries_survive_nursery_churn(self):
        store = TieredResultStore(nursery_capacity=1)
        store.put(_jid(0), PAYLOAD)
        assert store.get(_jid(0)) == PAYLOAD  # promoted
        for n in range(1, 4):
            store.put(_jid(n), PAYLOAD)  # churns the 1-entry nursery
        assert store.get(_jid(0)) == PAYLOAD
        assert store.counters()["probation_hits"] == 1

    def test_probation_eviction_is_bounded(self):
        store = TieredResultStore(probation_capacity=1)
        for n in range(2):
            store.put(_jid(n), PAYLOAD)
            store.get(_jid(n))  # promote each
        counters = store.counters()
        assert counters["promotions"] == 2
        assert counters["probation_evictions"] == 1
        assert counters["probation_size"] == 1

    def test_put_refreshes_probation_payload(self):
        store = TieredResultStore()
        store.put(_jid(1), PAYLOAD)
        store.get(_jid(1))  # promote
        updated = {"kind": "experiment", "result": {"value": 2}}
        store.put(_jid(1), updated)
        assert store.get(_jid(1)) == updated
        # The re-put refreshed in place, not through the nursery.
        assert store.counters()["nursery_insertions"] == 1

    def test_discard_drops_all_tiers(self):
        store = TieredResultStore()
        store.put(_jid(1), PAYLOAD)
        store.get(_jid(1))  # promote
        store.put(_jid(2), PAYLOAD)
        store.discard(_jid(1))
        store.discard(_jid(2))
        assert store.get(_jid(1)) is None
        assert store.get(_jid(2)) is None

    def test_contains(self):
        store = TieredResultStore()
        store.put(_jid(1), PAYLOAD)
        assert _jid(1) in store
        assert _jid(2) not in store


class TestDiskTier:
    def test_write_through_durability(self, tmp_path):
        disk = ResultStore(tmp_path / "store")
        store = TieredResultStore(disk, nursery_capacity=1)
        store.put(_jid(0), PAYLOAD)
        store.put(_jid(1), PAYLOAD)  # evicts jid(0) from the nursery
        # The evicted entry is only a memory loss: disk still has it.
        assert disk.get(_jid(0)) == PAYLOAD
        assert store.get(_jid(0)) == PAYLOAD
        counters = store.counters()
        assert counters["disk_hits"] == 1
        assert counters["nursery_evictions"] >= 1

    def test_disk_hit_fills_nursery(self, tmp_path):
        disk = ResultStore(tmp_path / "store")
        disk.put(_jid(1), PAYLOAD)  # written by a previous process
        store = TieredResultStore(disk)
        assert store.get(_jid(1)) == PAYLOAD  # disk hit, nursery fill
        assert store.get(_jid(1)) == PAYLOAD  # nursery hit (second) ...
        counters = store.counters()
        assert counters["disk_hits"] == 1
        assert counters["nursery_hits"] == 1
        assert counters["promotions"] == 1  # ... which promotes

    def test_discard_reaches_disk(self, tmp_path):
        disk = ResultStore(tmp_path / "store")
        store = TieredResultStore(disk)
        store.put(_jid(1), PAYLOAD)
        store.discard(_jid(1))
        assert disk.get(_jid(1)) is None
        assert store.get(_jid(1)) is None

    def test_counters_hit_rate(self, tmp_path):
        disk = ResultStore(tmp_path / "store")
        store = TieredResultStore(disk)
        store.put(_jid(1), PAYLOAD)
        store.get(_jid(1))  # hot hit
        store.get(_jid(9))  # full miss
        counters = store.counters()
        assert counters["hot_hits"] == 1
        assert counters["hot_hit_rate"] == pytest.approx(0.5)
        assert counters["disk_misses"] == 1
