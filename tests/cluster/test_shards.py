"""ClusterScheduler tests: routing equivalence, admission wiring,
drain/restore, and the no-dropped-jobs overload contract.

Mechanics tests run over injected echo/slow workers; the equivalence
test at the bottom runs real sweep-point jobs so "byte-identical
across shard counts" is checked on actual simulation payloads.
"""

from __future__ import annotations

import time

import pytest

from repro.cluster.admission import AdmissionController
from repro.cluster.shards import ClusterScheduler, shard_names
from repro.cluster.store_tier import TieredResultStore
from repro.errors import (
    ConfigError,
    JobNotFoundError,
    OverloadedError,
    ServiceError,
    ShardError,
)
from repro.service.jobs import JobSpec, job_id
from repro.service.scheduler import DONE, TERMINAL_STATES
from repro.service.store import ResultStore
from tests.service.test_scheduler import echo_worker

SPEC = JobSpec(kind="experiment", experiment_id="figure-1")


def _spec(n: int) -> JobSpec:
    return JobSpec(kind="experiment", experiment_id="figure-1", seed=n)


def slow_worker(slot: int, tasks, events) -> None:
    """Takes ~50ms per job, so queues observably build up."""
    import time as _time

    while True:
        item = tasks.get()
        if item is None:
            return
        jid, spec = item
        _time.sleep(0.05)
        events.put(("done", jid, {"echo": spec["experiment_id"]}))


def test_shard_names_validation():
    assert shard_names(2) == ["shard-0", "shard-1"]
    with pytest.raises(ConfigError, match="shard count"):
        shard_names(0)


def test_submit_before_start_rejected():
    cluster = ClusterScheduler(shards=2, worker_target=echo_worker)
    with pytest.raises(ServiceError, match="not started"):
        cluster.submit(SPEC)


class TestRoutingAndQueries:
    def test_jobs_land_on_their_ring_shard(self):
        with ClusterScheduler(shards=3, worker_target=echo_worker) as cluster:
            specs = [_spec(n) for n in range(12)]
            records = [cluster.submit(spec) for spec in specs]
            assert cluster.wait(timeout=30)
            for spec, record in zip(specs, records):
                owner = cluster.ring.route(record.job_id)
                shard = cluster._shards[owner]
                assert shard.status(record.job_id).state == DONE
            # Queries route back to the owner transparently.
            for record in records:
                assert cluster.status_dict(record.job_id)["state"] == DONE
                assert cluster.result(record.job_id)["echo"] == "figure-1"

    def test_unknown_job_404s_via_canonical_owner(self):
        with ClusterScheduler(shards=2, worker_target=echo_worker) as cluster:
            with pytest.raises(JobNotFoundError):
                cluster.status_dict("j" + "0" * 31)

    def test_metrics_shape(self):
        store = TieredResultStore()
        with ClusterScheduler(
            shards=2,
            store=store,
            admission=AdmissionController(watermark=16),
            worker_target=echo_worker,
        ) as cluster:
            cluster.submit(SPEC)
            assert cluster.wait(timeout=30)
            metrics = cluster.metrics_dict()
            assert set(metrics["shards"]) == {"shard-0", "shard-1"}
            for shard in metrics["shards"].values():
                assert "queue_depth" in shard
                assert shard["ring_state"] == "live"
            assert metrics["cluster"]["shard_count"] == 2
            assert metrics["cluster"]["live_shards"] == ["shard-0", "shard-1"]
            assert metrics["cluster"]["jobs_completed"] == 1
            assert metrics["admission"]["accepted"] == 1
            assert "nursery_hits" in metrics["store"]

    def test_run_convenience(self):
        with ClusterScheduler(shards=2, worker_target=echo_worker) as cluster:
            payloads = cluster.run([_spec(1), _spec(2)])
            assert [p["echo"] for p in payloads] == ["figure-1", "figure-1"]


class TestDrainAndRestore:
    def test_drained_shard_receives_nothing_new(self):
        with ClusterScheduler(shards=2, worker_target=echo_worker) as cluster:
            assert cluster.drain_shard("shard-0", timeout=10)
            assert cluster.ring.live_shards() == ("shard-1",)
            records = [cluster.submit(_spec(n)) for n in range(8)]
            assert cluster.wait(timeout=30)
            for record in records:
                assert cluster.ring.route(record.job_id) == "shard-1"
            cluster.restore_shard("shard-0")
            assert cluster.ring.live_shards() == ("shard-0", "shard-1")

    def test_all_drained_is_shard_error(self):
        with ClusterScheduler(shards=1, worker_target=echo_worker) as cluster:
            cluster.drain_shard("shard-0", timeout=10)
            with pytest.raises(ShardError, match="no live shard"):
                cluster.submit(SPEC)

    def test_cluster_drain_pauses_admission(self):
        with ClusterScheduler(shards=2, worker_target=echo_worker) as cluster:
            cluster.submit(SPEC)
            assert cluster.drain(timeout=30)
            from repro.errors import DrainingError

            with pytest.raises(DrainingError):
                cluster.submit(_spec(99))


class TestOverloadContract:
    def test_shed_is_429_shaped_and_no_accepted_job_is_dropped(self):
        admission = AdmissionController(watermark=4)
        with ClusterScheduler(
            shards=2,
            admission=admission,
            worker_target=slow_worker,
        ) as cluster:
            accepted: list[str] = []
            sheds = 0
            retry_afters: list[float] = []
            for n in range(40):
                try:
                    record = cluster.submit(_spec(n), tenant="t")
                except OverloadedError as exc:
                    sheds += 1
                    retry_afters.append(exc.retry_after)
                    assert exc.reason == "queue"
                else:
                    accepted.append(record.job_id)
            assert sheds > 0, "the deliberate overload never shed"
            assert accepted, "everything shed; watermark too tight"
            assert all(after > 0 for after in retry_afters)
            # The drain must terminate (no deadlock) and every accepted
            # job must reach a terminal state (none dropped).
            assert cluster.wait(timeout=60)
            for jid in accepted:
                state = cluster.status_dict(jid)["state"]
                assert state in TERMINAL_STATES
            # Exactly-once slot accounting: nothing left in flight.
            counters = admission.counters()
            assert counters["tenants"]["t"]["inflight"] == 0
            assert counters["accepted"] == len(accepted)
            assert counters["shed_by_reason"]["queue"] == sheds

    def test_terminal_dedup_releases_admission_slot(self):
        admission = AdmissionController(watermark=64)
        store = TieredResultStore()
        with ClusterScheduler(
            shards=2,
            store=store,
            admission=admission,
            completed_retention=1,
            worker_target=echo_worker,
        ) as cluster:
            cluster.submit(SPEC, tenant="t")
            assert cluster.wait(timeout=30)
            # Resubmit: served terminally (record or store) with no
            # completion event coming; the slot must still be released.
            cluster.submit(SPEC, tenant="t")
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if admission.counters()["tenants"]["t"]["inflight"] == 0:
                    break
                time.sleep(0.01)
            assert admission.counters()["tenants"]["t"]["inflight"] == 0


class TestRetentionAndStore:
    def test_evicted_completions_resolve_through_the_tiered_store(self):
        store = TieredResultStore()
        with ClusterScheduler(
            shards=1,
            store=store,
            completed_retention=1,
            worker_target=echo_worker,
        ) as cluster:
            specs = [_spec(n) for n in range(4)]
            for spec in specs:
                cluster.submit(spec)
            assert cluster.wait(timeout=30)
            # Only the newest terminal record survives per shard; the
            # rest must come back as store-served cache hits.
            before = store.counters()["hot_hits"]
            record = cluster.submit(specs[0])
            assert record.state == DONE
            assert record.cached
            assert store.counters()["hot_hits"] > before


class TestShardEquivalence:
    def test_one_and_three_shard_results_byte_identical(self, tmp_path):
        # Real sweep-point simulations, tiny via the scale divisor; the
        # payloads written through the tiered store to disk must be
        # byte-for-byte identical however many shards computed them.
        specs = [
            JobSpec(
                kind="sweep-point",
                benchmark=benchmark,
                seed=7,
                scale_multiplier=512.0,
                manager=manager,
                **(
                    {}
                    if manager == "unified"
                    else {
                        "nursery": 0.1,
                        "probation": 0.3,
                        "persistent": 0.6,
                        "threshold": 2,
                    }
                ),
            )
            for benchmark in ("gzip", "word")
            for manager in ("unified", "generational")
        ]
        blobs: dict[int, dict[str, bytes]] = {}
        for count in (1, 3):
            disk = ResultStore(tmp_path / f"store-{count}")
            with ClusterScheduler(
                shards=count, store=TieredResultStore(disk)
            ) as cluster:
                cluster.run(specs)
            blobs[count] = {
                jid: disk.path_for(jid).read_bytes()
                for jid in disk.job_ids()
            }
        assert set(blobs[1]) == {job_id(spec) for spec in specs}
        assert blobs[1] == blobs[3]
