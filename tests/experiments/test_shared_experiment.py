"""The shared-cache experiment family: table, wins, provenance."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.experiments import shared
from repro.experiments.base import (
    ExperimentResult,
    attach_provenance,
    render_table,
)

#: Fast scale for the table fixture (the run() floor is 4.0).
SCALE = 8.0


@pytest.fixture(scope="module")
def quick_table() -> ExperimentResult:
    return shared.run(seed=42, scale_multiplier=SCALE, quick=True)


class TestMixBenchmarks:
    def test_homogeneous_replicates_one_binary(self):
        assert shared.mix_benchmarks("homogeneous", 3) == ["crafty"] * 3

    def test_heterogeneous_cycles_palette(self):
        names = shared.mix_benchmarks("heterogeneous", 8)
        assert len(names) == 8
        assert set(names) == set(shared.HETEROGENEOUS_PALETTE)

    def test_unknown_mix_rejected(self):
        with pytest.raises(ConfigError, match="mix"):
            shared.mix_benchmarks("bimodal", 2)

    def test_single_process_rejected(self):
        with pytest.raises(ConfigError, match="processes"):
            shared.mix_benchmarks("homogeneous", 1)


class TestTable:
    def test_shape(self, quick_table):
        # quick: 2 mixes x 1 process count x 4 policies.
        assert len(quick_table.rows) == 8
        assert quick_table.columns[:3] == ["Mix", "Procs", "Policy"]
        assert {row["Procs"] for row in quick_table.rows} == {2}

    @pytest.mark.parametrize("mix", ["homogeneous", "heterogeneous"])
    def test_shared_persistent_beats_private(self, quick_table, mix):
        """The acceptance comparison: at equal total capacity, pooling
        the persistent generations lowers the aggregate miss rate,
        compiles fewer bytes, and wastes fewer bytes on duplicates."""
        rows = {(r["Mix"], r["Policy"]): r for r in quick_table.rows}
        private = rows[(mix, "private")]
        pooled = rows[(mix, "shared-persistent")]
        assert pooled["MissPct"] < private["MissPct"]
        assert pooled["GeneratedKB"] < private["GeneratedKB"]
        assert pooled["DupKB"] < private["DupKB"]

    def test_shared_all_holds_single_copies(self, quick_table):
        for row in quick_table.rows:
            if row["Policy"] == "shared-all":
                assert row["DupKB"] == 0.0

    def test_notes_state_the_comparison(self, quick_table):
        joined = " ".join(quick_table.notes)
        assert "equal total capacity" in joined
        assert "shared-persistent compiles" in joined

    def test_provenance_attached(self, quick_table):
        assert quick_table.seed == 42
        assert quick_table.config_digest
        rendered = render_table(quick_table)
        assert f"seed=42  config={quick_table.config_digest}" in rendered

    def test_scale_floor_is_applied_and_noted(self):
        result = shared.run(
            seed=42,
            scale_multiplier=1.0,
            quick=True,
            process_counts=(2,),
        )
        assert any("floor" in note for note in result.notes)


class TestDeterminism:
    def test_repeated_runs_byte_identical(self, quick_table):
        again = shared.run(seed=42, scale_multiplier=SCALE, quick=True)
        assert render_table(again) == render_table(quick_table)

    def test_parallel_equals_serial(self, quick_table):
        parallel = shared.run(
            seed=42, scale_multiplier=SCALE, quick=True, jobs=2
        )
        assert parallel.rows == quick_table.rows
        assert render_table(parallel) == render_table(quick_table)

    def test_seed_changes_the_table(self, quick_table):
        other = shared.run(seed=7, scale_multiplier=SCALE, quick=True)
        assert other.rows != quick_table.rows
        assert other.config_digest != quick_table.config_digest


class TestProvenanceHelper:
    def test_digest_is_canonical(self):
        def result():
            return ExperimentResult(
                experiment_id="x", title="t", columns=["A"]
            )

        first = attach_provenance(result(), 42, alpha=1, beta=[2])
        second = attach_provenance(result(), 42, beta=[2], alpha=1)
        assert first.config_digest == second.config_digest
        assert len(first.config_digest) == 12

    def test_digest_covers_params_and_seed(self):
        def result():
            return ExperimentResult(
                experiment_id="x", title="t", columns=["A"]
            )

        base = attach_provenance(result(), 42, alpha=1)
        assert attach_provenance(result(), 43, alpha=1).config_digest != (
            base.config_digest
        )
        assert attach_provenance(result(), 42, alpha=2).config_digest != (
            base.config_digest
        )

    def test_unstamped_result_renders_without_seed_line(self):
        rendered = render_table(
            ExperimentResult(experiment_id="x", title="t", columns=["A"])
        )
        assert "seed=" not in rendered
