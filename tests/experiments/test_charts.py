"""Tests for the ASCII chart renderer."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.base import ExperimentResult
from repro.experiments.charts import render_bar_chart


def make_result(values):
    result = ExperimentResult("fig-x", "demo", columns=["Benchmark", "Value"])
    for index, value in enumerate(values):
        result.add_row(Benchmark=f"b{index}", Value=value)
    return result


class TestBarChart:
    def test_positive_bars(self):
        chart = render_bar_chart(make_result([10.0, 20.0]), "Value")
        lines = chart.splitlines()
        assert "b0" in lines[1] and "b1" in lines[2]
        assert lines[2].count("#") > lines[1].count("#")

    def test_negative_bars_left_of_axis(self):
        chart = render_bar_chart(make_result([-10.0, 20.0]), "Value", width=20)
        lines = chart.splitlines()
        zero_b0 = lines[1].index("|")
        zero_b1 = lines[2].index("|")
        assert zero_b0 == zero_b1  # shared axis
        assert "#" in lines[1][:zero_b0]  # negative bar to the left
        assert "#" in lines[2][zero_b1 + 1:]  # positive to the right

    def test_all_zero_values(self):
        chart = render_bar_chart(make_result([0.0, 0.0]), "Value")
        assert "0.00" in chart

    def test_values_rendered_numerically(self):
        chart = render_bar_chart(make_result([12.34]), "Value")
        assert "12.34" in chart

    def test_rejects_non_numeric_column(self):
        result = ExperimentResult("x", "t", columns=["Benchmark", "Name"])
        result.add_row(Benchmark="a", Name="hello")
        with pytest.raises(ExperimentError):
            render_bar_chart(result, "Name")

    def test_rejects_tiny_width(self):
        with pytest.raises(ExperimentError):
            render_bar_chart(make_result([1.0]), "Value", width=3)

    def test_empty_result(self):
        result = ExperimentResult("x", "t", columns=["Benchmark", "Value"])
        assert "(no data)" in render_bar_chart(result, "Value")
