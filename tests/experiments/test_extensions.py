"""Tests for the extension experiments (capacity, headroom, robustness)."""

from __future__ import annotations

import pytest

from repro.experiments import capacity, headroom, robustness


class TestCapacitySensitivity:
    @pytest.fixture(scope="class")
    def curve(self):
        return capacity.run(
            benchmark="excel",
            scale_multiplier=24.0,
            fractions=(0.25, 0.5, 1.0),
        )

    def test_miss_rate_monotone_in_budget(self, curve):
        unified = [float(v) for v in curve.column("UnifiedMissPct")]
        assert unified == sorted(unified, reverse=True)

    def test_full_budget_means_near_zero_unified_misses(self, curve):
        assert float(curve.column("UnifiedMissPct")[-1]) < 0.2

    def test_reports_peak(self, curve):
        assert any("peaks" in note for note in curve.notes)


class TestHeadroom:
    @pytest.fixture(scope="class")
    def table(self):
        return headroom.run(scale_multiplier=24.0, subset=["word", "gzip"])

    def test_oracle_never_worse_than_fifo(self, table):
        for row in table.rows:
            assert float(row["OracleMissPct"]) <= float(row["UnifiedMissPct"])

    def test_gap_closed_bounded(self, table):
        for row in table.rows:
            assert -200.0 <= float(row["GapClosedPct"]) <= 150.0


class TestRobustness:
    def test_reports_mean_and_std_per_layout(self):
        result = robustness.run(
            seeds=(1, 2),
            scale_multiplier=24.0,
            subset=["word", "gzip"],
        )
        assert len(result.rows) == 3
        for row in result.rows:
            assert float(row["StdPct"]) >= 0.0
            assert len(str(row["PerSeed"]).split(",")) == 2
