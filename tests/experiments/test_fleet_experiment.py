"""The fleet scaling-curve experiment: table, cells, provenance."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.experiments import fleet
from repro.experiments.base import ExperimentResult, render_table
from repro.shared.compose import LIBRARY_CATALOG


@pytest.fixture(scope="module")
def quick_table() -> ExperimentResult:
    return fleet.run(seed=42, quick=True, process_counts=(8, 16))


class TestFleetSpecs:
    def test_homogeneous_replicates_one_binary(self):
        specs = fleet.fleet_specs("homogeneous", 8)
        assert specs == [("crafty", fleet.HOMOGENEOUS_REACH)] * 8

    def test_heterogeneous_cycles_palette_with_zipf_reach(self):
        specs = fleet.fleet_specs("heterogeneous", 16)
        assert len(specs) == 16
        assert {b for b, _ in specs} == set(fleet.HETEROGENEOUS_PALETTE)
        assert all(1 <= r <= len(LIBRARY_CATALOG) for _, r in specs)

    def test_specs_deterministic_per_seed(self):
        assert fleet.fleet_specs("heterogeneous", 16, seed=1) == fleet.fleet_specs(
            "heterogeneous", 16, seed=1
        )

    def test_unknown_mix_rejected(self):
        with pytest.raises(ConfigError, match="mix"):
            fleet.fleet_specs("bimodal", 8)

    def test_tiny_fleet_rejected(self):
        with pytest.raises(ConfigError, match="processes"):
            fleet.fleet_specs("homogeneous", 1)


class TestCell:
    def test_cell_is_deterministic(self):
        a = fleet.simulate_fleet_cell(
            "heterogeneous", 8, "shared-persistent", scale_multiplier=128
        )
        b = fleet.simulate_fleet_cell(
            "heterogeneous", 8, "shared-persistent", scale_multiplier=128
        )
        assert a == b

    def test_cell_reports_fleet_metrics(self):
        cell = fleet.simulate_fleet_cell(
            "heterogeneous", 8, "shared-persistent", scale_multiplier=128
        )
        assert cell["processes"] == 8
        assert 0 < cell["distinct_workloads"] <= 8
        assert cell["events"] > 0
        assert 0.0 <= cell["dedup_ratio"] <= 1.0
        assert 0.0 <= cell["shared_hit_share"] <= 1.0

    def test_private_policy_never_shares(self):
        cell = fleet.simulate_fleet_cell(
            "homogeneous", 8, "private", scale_multiplier=128
        )
        assert cell["shared_hit_share"] == 0
        assert cell["dedup_bytes"] == 0

    def test_shared_all_counts_every_hit_as_shared(self):
        cell = fleet.simulate_fleet_cell(
            "homogeneous", 8, "shared-all", scale_multiplier=128
        )
        assert cell["shared_hit_share"] == pytest.approx(1.0)


class TestTable:
    def test_shape(self, quick_table):
        # 2 mixes x 2 process counts x 4 policies.
        assert len(quick_table.rows) == 16
        assert quick_table.columns[:3] == ["Mix", "Procs", "Policy"]
        assert {row["Procs"] for row in quick_table.rows} == {8, 16}

    def test_dedup_grows_with_fleet_size(self, quick_table):
        def ratio(mix, procs):
            for row in quick_table.rows:
                if (
                    row["Mix"] == mix
                    and row["Procs"] == procs
                    and row["Policy"] == "shared-persistent"
                ):
                    return row["DedupRatio"]
            raise AssertionError("row missing")

        for mix in ("homogeneous", "heterogeneous"):
            assert ratio(mix, 16) >= ratio(mix, 8)

    def test_private_baseline_compiles_most(self, quick_table):
        by_policy = {}
        for row in quick_table.rows:
            if row["Mix"] == "homogeneous" and row["Procs"] == 16:
                by_policy[row["Policy"]] = row["GeneratedKB"]
        assert by_policy["private"] >= by_policy["shared-persistent"]
        assert by_policy["shared-persistent"] >= by_policy["shared-all"]

    def test_notes_and_provenance(self, quick_table):
        assert quick_table.seed == 42
        assert quick_table.config_digest
        assert any("Zipf" in note for note in quick_table.notes)
        assert any("fleet replay floor" in note for note in quick_table.notes)
        rendered = render_table(quick_table)
        assert f"seed=42  config={quick_table.config_digest}" in rendered

    def test_parallel_run_matches_serial(self, quick_table):
        parallel = fleet.run(seed=42, quick=True, process_counts=(8, 16), jobs=2)
        assert parallel.rows == quick_table.rows
