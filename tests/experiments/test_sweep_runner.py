"""Tests for the sweep experiment and the run-all orchestrator."""

from __future__ import annotations

import pytest

from repro.experiments import sweep
from repro.experiments.dataset import WorkloadDataset, quick_subset
from repro.experiments.runner import ALL_EXPERIMENT_IDS, render_all, run_all


class TestSweep:
    @pytest.fixture(scope="class")
    def art_sweep(self):
        return sweep.run(
            benchmark="art",
            scale_multiplier=2.0,
            proportions=((0.45, 0.10, 0.45), (0.25, 0.50, 0.25)),
            thresholds=(1, 10),
        )

    def test_grid_size(self, art_sweep):
        assert len(art_sweep.rows) == 4

    def test_reports_best_point(self, art_sweep):
        assert any("best point" in note for note in art_sweep.notes)

    def test_threshold_one_uses_on_hit(self, art_sweep):
        for row in art_sweep.rows:
            if row["Threshold"] == 1:
                assert row["Mode"] == "on-hit"
            else:
                assert row["Mode"] == "on-eviction"

    def test_probation_threshold_link_shape(self):
        result = sweep.probation_threshold_link(
            benchmark="art", scale_multiplier=2.0
        )
        probations = [float(r["Probation"]) for r in result.rows]
        assert probations == sorted(probations)
        assert all(int(r["BestThreshold"]) >= 1 for r in result.rows)


class TestRunner:
    def test_all_experiment_ids_runnable_on_tiny_subset(self):
        results = run_all(
            seed=5,
            scale_multiplier=16.0,
            subset=["gzip", "word"],
            experiment_ids=(
                "table-1", "figure-2", "figure-3", "table-2", "sweep",
            ),
            sweep_benchmark="gzip",
        )
        assert [r.experiment_id for r in results] == [
            "table-1", "figure-2", "figure-3", "table-2", "section-6.1-sweep",
        ]

    def test_render_all_joins_tables(self):
        results = run_all(
            seed=5,
            scale_multiplier=16.0,
            subset=["gzip"],
            experiment_ids=("table-2",),
        )
        rendered = render_all(results)
        assert "TABLE-2" in rendered

    def test_unknown_experiment_id(self):
        with pytest.raises(KeyError):
            run_all(experiment_ids=("figure-42",))

    def test_quick_subset_names_exist(self):
        dataset = WorkloadDataset(subset=quick_subset(), scale_multiplier=16)
        assert len(dataset.names) == 8

    def test_evaluation_ids_share_one_pass(self):
        results = run_all(
            seed=5,
            scale_multiplier=32.0,
            subset=["gzip", "art"],
            experiment_ids=("figure-9", "figure-10", "figure-11"),
        )
        assert [r.experiment_id for r in results] == [
            "figure-9", "figure-10", "figure-11",
        ]
        assert ALL_EXPERIMENT_IDS[0] == "table-1"
