"""Tests for the experiment harness (small subsets, coarse scales)."""

from __future__ import annotations

import pytest

from repro.core.config import FIGURE9_CONFIGS
from repro.errors import ExperimentError
from repro.experiments import (
    fig01_max_cache_size,
    fig02_code_expansion,
    fig03_insertion_rate,
    fig04_unmapped,
    fig06_lifetimes,
    fig09_miss_rates,
    fig10_misses_eliminated,
    fig11_overhead,
    table01_benchmarks,
    table02_overheads,
)
from repro.experiments.base import ExperimentResult, render_table
from repro.experiments.dataset import WorkloadDataset
from repro.experiments.evaluation import baseline_capacity, run_evaluation


@pytest.fixture(scope="module")
def tiny_dataset():
    return WorkloadDataset(
        seed=11,
        scale_multiplier=4.0,
        subset=["gzip", "art", "word", "solitaire"],
    )


@pytest.fixture(scope="module")
def tiny_evaluations(tiny_dataset):
    return run_evaluation(tiny_dataset, FIGURE9_CONFIGS)


class TestExperimentResult:
    def test_add_row_checks_columns(self):
        result = ExperimentResult("x", "t", columns=["A", "B"])
        with pytest.raises(ExperimentError):
            result.add_row(A=1)
        result.add_row(A=1, B=2)
        assert result.column("A") == [1]
        with pytest.raises(ExperimentError):
            result.column("C")

    def test_render_table_contains_rows_and_notes(self):
        result = ExperimentResult("fig-x", "demo", columns=["A"])
        result.add_row(A=3.14159)
        result.notes.append("hello")
        rendered = render_table(result)
        assert "FIG-X" in rendered
        assert "3.14" in rendered
        assert "note: hello" in rendered


class TestDataset:
    def test_memoizes_logs(self, tiny_dataset):
        assert tiny_dataset.log("gzip") is tiny_dataset.log("gzip")

    def test_names_follow_subset(self, tiny_dataset):
        assert tiny_dataset.names == ["gzip", "art", "word", "solitaire"]

    def test_unknown_name(self, tiny_dataset):
        with pytest.raises(KeyError):
            tiny_dataset.profile("mcf")

    def test_suite_restriction(self):
        dataset = WorkloadDataset(suites=("interactive",), scale_multiplier=8)
        assert len(dataset.names) == 12


class TestCharacterizationExperiments:
    def test_table1_lists_12_apps(self):
        result = table01_benchmarks.run()
        assert len(result.rows) == 12
        assert result.column("Name")[0] == "access"

    def test_table2_matches_paper(self):
        result = table02_overheads.run()
        by_event = {row["Event"]: row for row in result.rows}
        assert by_event["Trace Generation"]["Instructions"] == 69834
        assert by_event["Eviction"]["Instructions"] == 3316
        assert by_event["Promotion"]["Instructions"] == 13354

    def test_fig01_measured_tracks_paper_scale(self, tiny_dataset):
        result = fig01_max_cache_size.run(dataset=tiny_dataset)
        for row in result.rows:
            profile_scale = (
                tiny_dataset.profile(str(row["Benchmark"])).default_scale
                * tiny_dataset.scale_multiplier
            )
            measured = float(row["MeasuredKB"])
            paper = float(row["PaperScaleKB"])
            assert measured * profile_scale == pytest.approx(paper, rel=0.02)

    def test_fig02_expansions_near_500pct(self, tiny_dataset):
        result = fig02_code_expansion.run(dataset=tiny_dataset)
        for value in result.column("ExpansionPct"):
            assert 200 < float(value) < 900

    def test_fig03_threshold_flags(self, tiny_dataset):
        result = fig03_insertion_rate.run(dataset=tiny_dataset)
        flags = dict(zip(result.column("Benchmark"), result.column("Above5KBs")))
        assert flags["word"] is True
        assert flags["gzip"] is False
        assert flags["solitaire"] is False

    def test_fig04_interactive_unmap_positive(self, tiny_dataset):
        result = fig04_unmapped.run(dataset=tiny_dataset)
        rows = {row["Benchmark"]: row for row in result.rows}
        assert float(rows["word"]["UnmappedPct"]) > 5.0
        assert float(rows["gzip"]["UnmappedPct"]) == 0.0

    def test_fig06_u_shape(self, tiny_dataset):
        result = fig06_lifetimes.run(dataset=tiny_dataset)
        assert all(result.column("UShaped"))


class TestEvaluationExperiments:
    def test_baseline_capacity_rule(self):
        assert baseline_capacity(1_000_000) == 500_000
        assert baseline_capacity(100) == 4096  # floor

    def test_evaluations_cover_all_configs(self, tiny_evaluations):
        labels = {c.label() for c in FIGURE9_CONFIGS}
        for evaluation in tiny_evaluations.values():
            assert set(evaluation.generational) == labels

    def test_fig09_reports_reductions(self, tiny_dataset, tiny_evaluations):
        result = fig09_miss_rates.run(
            dataset=tiny_dataset, evaluations=tiny_evaluations
        )
        assert len(result.rows) == 4
        label = FIGURE9_CONFIGS[1].label()
        reductions = dict(zip(result.column("Benchmark"), result.column(label)))
        # The headline result: the big interactive app must improve.
        assert float(reductions["word"]) > 0

    def test_fig10_consistent_with_fig09_signs(self, tiny_dataset, tiny_evaluations):
        fig9 = fig09_miss_rates.run(dataset=tiny_dataset, evaluations=tiny_evaluations)
        fig10 = fig10_misses_eliminated.run(
            dataset=tiny_dataset, evaluations=tiny_evaluations
        )
        label = FIGURE9_CONFIGS[1].label()
        for row9, row10 in zip(fig9.rows, fig10.rows):
            reduction = float(row9[label])  # type: ignore[arg-type]
            eliminated = int(row10[label])  # type: ignore[arg-type]
            if reduction > 0:
                assert eliminated > 0
            elif reduction < 0:
                assert eliminated < 0

    def test_fig11_ratio_definition(self, tiny_dataset, tiny_evaluations):
        result = fig11_overhead.run(
            dataset=tiny_dataset, evaluations=tiny_evaluations
        )
        for row in result.rows:
            ratio = float(row["OverheadRatioPct"])  # type: ignore[arg-type]
            assert 10 < ratio < 400
            assert row["Reduced"] == (ratio <= 100)
