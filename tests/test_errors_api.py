"""Tests for the exception hierarchy and the public API surface."""

from __future__ import annotations

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_everything_derives_from_repro_error(self):
        leaf_errors = [
            errors.ConfigError,
            errors.ArenaError,
            errors.ArenaOverlapError,
            errors.ArenaBoundsError,
            errors.TraceTooLargeError,
            errors.CacheFullError,
            errors.UnknownTraceError,
            errors.DuplicateTraceError,
            errors.LogFormatError,
            errors.LogOrderError,
            errors.WorkloadError,
            errors.RuntimeStateError,
            errors.ExperimentError,
        ]
        for error in leaf_errors:
            assert issubclass(error, errors.ReproError)

    def test_arena_family(self):
        for error in (
            errors.ArenaOverlapError,
            errors.ArenaBoundsError,
            errors.TraceTooLargeError,
            errors.CacheFullError,
        ):
            assert issubclass(error, errors.ArenaError)

    def test_log_order_is_format_error(self):
        assert issubclass(errors.LogOrderError, errors.LogFormatError)

    def test_catching_the_base_class_works(self):
        from repro.cachesim.arena import Arena

        with pytest.raises(errors.ReproError):
            Arena(0)


class TestPublicAPI:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version_matches_pyproject(self):
        import pathlib
        import re

        pyproject = pathlib.Path(repro.__file__).parents[2] / "pyproject.toml"
        match = re.search(r'^version = "([^"]+)"', pyproject.read_text(), re.M)
        assert match is not None
        assert repro.__version__ == match.group(1)

    def test_headline_symbols_present(self):
        assert callable(repro.simulate_log)
        assert callable(repro.synthesize_log)
        assert repro.BEST_CONFIG.label() == "45-10-45 (thresh 1)"
        assert len(repro.FIGURE9_CONFIGS) == 3
