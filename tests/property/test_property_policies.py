"""Property-based tests over all local policies."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CacheFullError, TraceTooLargeError
from repro.policies.circular import CircularCache
from repro.policies.flush import PreemptiveFlushCache
from repro.policies.lfu import LFUCache
from repro.policies.lru import LRUCache
from repro.policies.oracle import OracleCache
from repro.policies.pseudocircular import PseudoCircularCache

BOUNDED_POLICIES = [
    PseudoCircularCache,
    CircularCache,
    LRUCache,
    LFUCache,
    PreemptiveFlushCache,
    OracleCache,  # with no schedule loaded, everything is "never used"
]


@st.composite
def insertion_streams(draw):
    capacity = draw(st.integers(min_value=256, max_value=2048))
    n = draw(st.integers(min_value=1, max_value=60))
    sizes = [
        draw(st.integers(min_value=16, max_value=capacity)) for _ in range(n)
    ]
    return capacity, sizes


@pytest.mark.parametrize("policy", BOUNDED_POLICIES)
@given(stream=insertion_streams())
@settings(max_examples=40, deadline=None)
def test_capacity_never_exceeded(policy, stream):
    """No insertion sequence can push any bounded policy over its
    capacity, and evicted traces really leave."""
    capacity, sizes = stream
    cache = policy(capacity)
    resident = set()
    for trace_id, size in enumerate(sizes):
        try:
            result = cache.insert(trace_id, size, 0, time=trace_id)
        except TraceTooLargeError:
            continue
        resident.add(trace_id)
        for victim in result.evicted:
            resident.discard(victim.trace_id)
            assert victim.trace_id not in cache
        assert cache.used_bytes <= capacity
        cache.check_invariants()
        assert set(cache.arena.trace_ids()) == resident


@pytest.mark.parametrize("policy", BOUNDED_POLICIES)
@given(stream=insertion_streams(), pin_every=st.integers(2, 7))
@settings(max_examples=30, deadline=None)
def test_pinned_traces_never_evicted_by_policy(policy, stream, pin_every):
    capacity, sizes = stream
    cache = policy(capacity)
    pinned = set()
    for trace_id, size in enumerate(sizes):
        try:
            result = cache.insert(trace_id, size, 0, time=trace_id)
        except TraceTooLargeError:
            continue
        except CacheFullError:
            break
        for victim in result.evicted:
            assert victim.trace_id not in pinned
        if trace_id % pin_every == 0:
            cache.pin(trace_id)
            pinned.add(trace_id)
    for trace_id in pinned:
        assert trace_id in cache


@given(stream=insertion_streams())
@settings(max_examples=30, deadline=None)
def test_pseudocircular_matches_pure_circular_without_pins(stream):
    """Design contract (Section 4.3): with no undeletable traces and no
    forced evictions, the pseudo-circular policy IS a circular buffer."""
    capacity, sizes = stream
    pseudo = PseudoCircularCache(capacity)
    pure = CircularCache(capacity)
    for trace_id, size in enumerate(sizes):
        try:
            expected = pure.insert(trace_id, size, 0)
        except TraceTooLargeError:
            with pytest.raises(TraceTooLargeError):
                pseudo.insert(trace_id, size, 0)
            continue
        actual = pseudo.insert(trace_id, size, 0)
        assert [t.trace_id for t in actual.evicted] == [
            t.trace_id for t in expected.evicted
        ]
        assert pseudo.arena.trace_ids() == pure.arena.trace_ids()
