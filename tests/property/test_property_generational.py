"""Property-based tests for the generational manager and simulator."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cachesim.simulator import simulate_log
from repro.core.config import GenerationalConfig, PromotionMode
from repro.core.generational import GenerationalCacheManager
from repro.core.unified import UnifiedCacheManager
from repro.tracelog.records import (
    EndOfLog,
    ModuleUnmap,
    TraceAccess,
    TraceCreate,
    TraceLog,
)


@st.composite
def random_logs(draw):
    """A structurally valid random trace log."""
    n_traces = draw(st.integers(min_value=1, max_value=40))
    sizes = [draw(st.integers(min_value=16, max_value=400)) for _ in range(n_traces)]
    modules = [draw(st.integers(min_value=0, max_value=3)) for _ in range(n_traces)]
    log = TraceLog(benchmark="prop", duration_seconds=1.0, code_footprint=1000)
    time = 0
    created: list[int] = []
    events = draw(st.lists(st.integers(0, 99), min_size=n_traces, max_size=150))
    next_create = 0
    for token in events:
        time += 1 + token % 5
        if next_create < n_traces and (token % 3 == 0 or not created):
            log.append(
                TraceCreate(
                    time=time,
                    trace_id=next_create,
                    size=sizes[next_create],
                    module_id=modules[next_create],
                )
            )
            created.append(next_create)
            next_create += 1
        elif token % 11 == 1 and created:
            log.append(ModuleUnmap(time=time, module_id=token % 4))
        else:
            trace_id = created[token % len(created)]
            log.append(
                TraceAccess(time=time, trace_id=trace_id, repeat=1 + token % 4)
            )
    log.append(EndOfLog(time=time + 1))
    log.validate()
    return log


@st.composite
def generational_configs(draw):
    nursery = draw(st.floats(min_value=0.1, max_value=0.7))
    probation = draw(st.floats(min_value=0.05, max_value=0.5))
    remaining = 1.0 - nursery - probation
    if remaining < 0.05:
        nursery, probation = 0.4, 0.2
        remaining = 0.4
    threshold = draw(st.integers(min_value=1, max_value=20))
    mode = draw(st.sampled_from(list(PromotionMode)))
    return GenerationalConfig(
        nursery_fraction=nursery,
        probation_fraction=probation,
        persistent_fraction=remaining,
        promotion_threshold=threshold,
        promotion_mode=mode,
    )


@given(log=random_logs(), config=generational_configs(),
       capacity=st.integers(min_value=600, max_value=4000))
@settings(max_examples=60, deadline=None)
def test_generational_replay_invariants(log, config, capacity):
    """Any random log against any generational layout: counters are
    consistent, no trace is ever resident twice, and caches respect
    their budgets."""
    manager = GenerationalCacheManager(capacity, config)
    result = simulate_log(log, manager)
    result.stats.check_invariants()
    manager.check_invariants()
    assert sum(c.capacity for c in manager.caches()) == capacity
    assert result.stats.creations == log.n_traces
    assert result.stats.accesses == log.n_accesses


@given(log=random_logs(), capacity=st.integers(min_value=600, max_value=4000))
@settings(max_examples=60, deadline=None)
def test_unified_and_generational_see_identical_work(log, capacity):
    """Both managers replay the same log: identical access and creation
    counts (only hits/misses may differ)."""
    unified = simulate_log(log, UnifiedCacheManager(capacity))
    generational = simulate_log(
        log, GenerationalCacheManager(capacity, GenerationalConfig())
    )
    assert unified.stats.accesses == generational.stats.accesses
    assert unified.stats.creations == generational.stats.creations


@given(log=random_logs())
@settings(max_examples=30, deadline=None)
def test_unbounded_cache_never_misses(log):
    """With an unbounded cache, only unmapped traces can ever miss."""
    manager = UnifiedCacheManager(1 << 40, local_policy="unbounded")
    result = simulate_log(log, manager)
    # Misses can only happen for re-accesses after an unmap.
    if result.stats.unmap_evictions == 0:
        assert result.stats.misses == 0


@given(log=random_logs(), config=generational_configs(),
       capacity=st.integers(min_value=600, max_value=4000))
@settings(max_examples=40, deadline=None)
def test_replay_is_deterministic(log, config, capacity):
    a = simulate_log(log, GenerationalCacheManager(capacity, config))
    b = simulate_log(log, GenerationalCacheManager(capacity, config))
    assert a.stats == b.stats
