"""Property-based tests for the fleet streaming scheduler."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shared.fleet import ProcessStream, stream_segments
from repro.sim.interleave import interleave_logs
from tests.sim.test_interleave import _log


@st.composite
def fleets(draw, with_churn=True):
    """A list of stream shapes plus scheduling knobs."""
    n = draw(st.integers(min_value=1, max_value=8))
    streams = []
    for _ in range(n):
        length = draw(st.integers(min_value=0, max_value=60))
        spawn_turn = draw(st.integers(min_value=0, max_value=20)) if with_churn else 0
        limit = (
            draw(st.one_of(st.none(), st.integers(min_value=0, max_value=70)))
            if with_churn
            else None
        )
        streams.append(
            ProcessStream(length=length, spawn_turn=spawn_turn, limit=limit)
        )
    schedule = draw(st.sampled_from(["round-robin", "random"]))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    quantum = draw(st.integers(min_value=1, max_value=9))
    return streams, schedule, seed, quantum


def expand(streams, schedule, seed, quantum):
    pairs = []
    for segment in stream_segments(
        streams, schedule=schedule, seed=seed, quantum=quantum
    ):
        assert segment.start < segment.stop  # no empty turns
        for index in range(segment.start, segment.stop):
            pairs.append((segment.process, index))
    return pairs


@settings(max_examples=60, deadline=None)
@given(fleets())
def test_every_record_exactly_once_in_order(fleet):
    """Churn never replays or drops a record: each process contributes
    exactly its effective prefix, in cursor order."""
    streams, schedule, seed, quantum = fleet
    pairs = expand(streams, schedule, seed, quantum)
    for process, stream in enumerate(streams):
        indices = [i for p, i in pairs if p == process]
        assert indices == list(range(stream.effective_length))


@settings(max_examples=60, deadline=None)
@given(fleets())
def test_schedule_is_deterministic(fleet):
    streams, schedule, seed, quantum = fleet
    first = list(
        stream_segments(streams, schedule=schedule, seed=seed, quantum=quantum)
    )
    second = list(
        stream_segments(streams, schedule=schedule, seed=seed, quantum=quantum)
    )
    assert first == second


@settings(max_examples=60, deadline=None)
@given(fleets())
def test_segments_respect_quantum(fleet):
    streams, schedule, seed, quantum = fleet
    for segment in stream_segments(
        streams, schedule=schedule, seed=seed, quantum=quantum
    ):
        assert segment.stop - segment.start <= quantum


@settings(max_examples=60, deadline=None)
@given(fleets(with_churn=True))
def test_spawn_delay_holds_while_starters_run(fleet):
    """A late-spawning process never runs during its delay window while
    turn-0 processes still have records (the clock only fast-forwards
    when everyone alive has drained)."""
    streams, schedule, seed, quantum = fleet
    segments = list(
        stream_segments(streams, schedule=schedule, seed=seed, quantum=quantum)
    )
    starters_total = sum(
        s.effective_length for s in streams if s.spawn_turn == 0
    )
    for process, stream in enumerate(streams):
        if stream.spawn_turn == 0:
            continue
        consumed_before = 0
        for position, segment in enumerate(segments):
            if segment.process == process:
                # Either the delay elapsed turn by turn, or every
                # starter record was consumed first (fast-forward).
                assert (
                    position >= stream.spawn_turn
                    or consumed_before == starters_total
                )
                break
            if streams[segment.process].spawn_turn == 0:
                consumed_before += segment.stop - segment.start


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=6),
    st.sampled_from(["round-robin", "random"]),
    st.integers(min_value=0, max_value=2**16),
    st.integers(min_value=1, max_value=7),
)
def test_matches_reference_interleaver_without_churn(lengths, schedule, seed, quantum):
    """With churn off, expanding fleet segments reproduces the
    reference interleaver's (process, global_time) stream exactly."""
    logs = [_log(f"p{i}", n, stride=3 + i) for i, n in enumerate(lengths)]
    reference = [
        (s.process, s.global_time)
        for s in interleave_logs(logs, schedule=schedule, seed=seed, quantum=quantum)
    ]
    # Stream lengths come from the built logs (which append EndOfLog
    # records), not the raw record-count parameter.
    streams = [ProcessStream(length=len(log.records)) for log in logs]
    last_time = [0] * len(logs)
    global_time = 0
    ours = []
    for segment in stream_segments(
        streams, schedule=schedule, seed=seed, quantum=quantum
    ):
        for index in range(segment.start, segment.stop):
            record = logs[segment.process].records[index]
            delta = record.time - last_time[segment.process]
            if delta > 0:
                global_time += delta
            last_time[segment.process] = record.time
            ours.append((segment.process, global_time))
    assert ours == reference
    # Global virtual time is monotone non-decreasing along the stream.
    assert all(a[1] <= b[1] for a, b in zip(ours, ours[1:]))
