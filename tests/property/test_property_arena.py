"""Property-based tests for the arena (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.cachesim.arena import Arena
from repro.errors import ArenaError, DuplicateTraceError


@st.composite
def placement_batches(draw):
    """A capacity plus a sequence of (trace_id, start, size) attempts."""
    capacity = draw(st.integers(min_value=64, max_value=4096))
    n = draw(st.integers(min_value=1, max_value=40))
    attempts = []
    for trace_id in range(n):
        start = draw(st.integers(min_value=0, max_value=capacity - 1))
        size = draw(st.integers(min_value=1, max_value=capacity))
        attempts.append((trace_id, start, size))
    return capacity, attempts


@given(placement_batches())
@settings(max_examples=120)
def test_arena_never_overlaps_and_accounts_bytes(batch):
    """Whatever sequence of placements is attempted, successful ones
    never overlap, stay in bounds, and the byte accounting is exact."""
    capacity, attempts = batch
    arena = Arena(capacity)
    placed_bytes = 0
    for trace_id, start, size in attempts:
        try:
            arena.place(trace_id, start, size)
            placed_bytes += size
        except ArenaError:
            pass
        except DuplicateTraceError:
            pass
        arena.check_invariants()
        assert arena.used_bytes == placed_bytes
        assert 0.0 <= arena.fragmentation() <= 1.0


@given(placement_batches(), st.data())
@settings(max_examples=80)
def test_holes_partition_free_space(batch, data):
    capacity, attempts = batch
    arena = Arena(capacity)
    for trace_id, start, size in attempts:
        try:
            arena.place(trace_id, start, size)
        except (ArenaError, DuplicateTraceError):
            pass
    holes = arena.holes()
    # Holes are disjoint, ordered, and sum to the free bytes.
    total = 0
    previous_end = -1
    for start, end in holes:
        assert start < end
        assert start > previous_end
        previous_end = end
        total += end - start
    assert total == arena.free_bytes
    # first_fit returns the first hole large enough.
    if holes:
        want = data.draw(
            st.integers(min_value=1, max_value=max(end - start for start, end in holes))
        )
        fit = arena.first_fit(want)
        assert fit is not None
        candidates = [start for start, end in holes if end - start >= want]
        assert fit == candidates[0]


class ArenaMachine(RuleBasedStateMachine):
    """Stateful check: interleaved places/removes keep the arena sound."""

    def __init__(self):
        super().__init__()
        self.arena = Arena(2048)
        self.next_id = 0
        self.live: dict[int, int] = {}  # trace -> size

    @rule(start=st.integers(0, 2047), size=st.integers(1, 512))
    def try_place(self, start, size):
        trace_id = self.next_id
        self.next_id += 1
        try:
            self.arena.place(trace_id, start, size)
            self.live[trace_id] = size
        except ArenaError:
            pass

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def remove_one(self, data):
        trace_id = data.draw(st.sampled_from(sorted(self.live)))
        placement = self.arena.remove(trace_id)
        assert placement.size == self.live.pop(trace_id)

    @precondition(lambda self: self.live)
    @rule()
    def clear_all(self):
        removed = self.arena.clear()
        assert {p.trace_id for p in removed} == set(self.live)
        self.live.clear()

    @invariant()
    def bytes_match(self):
        self.arena.check_invariants()
        assert self.arena.used_bytes == sum(self.live.values())
        assert set(self.arena.trace_ids()) == set(self.live)


TestArenaMachine = ArenaMachine.TestCase
