"""Property-based round-trip tests for the trace-log serialization."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.lifetimes import lifetime_histogram, trace_lifetimes
from repro.tracelog.reader import loads_log
from repro.tracelog.records import (
    EndOfLog,
    ModuleUnmap,
    TraceAccess,
    TraceCreate,
    TraceLog,
    TracePin,
    TraceUnpin,
)
from repro.tracelog.writer import dumps_log


@st.composite
def arbitrary_logs(draw):
    benchmark = draw(
        st.text(
            alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
            min_size=1,
            max_size=12,
        )
    )
    duration = draw(
        st.floats(min_value=0.001, max_value=10_000, allow_nan=False)
    )
    footprint = draw(st.integers(min_value=1, max_value=10**9))
    log = TraceLog(
        benchmark=benchmark, duration_seconds=duration, code_footprint=footprint
    )
    time = 0
    created: list[int] = []
    pinned: set[int] = set()
    n_records = draw(st.integers(min_value=0, max_value=60))
    for index in range(n_records):
        time += draw(st.integers(min_value=0, max_value=100))
        choice = draw(st.integers(0, 9))
        if choice <= 3 or not created:
            trace_id = len(created)
            log.append(
                TraceCreate(
                    time=time,
                    trace_id=trace_id,
                    size=draw(st.integers(1, 10_000)),
                    module_id=draw(st.integers(0, 20)),
                )
            )
            created.append(trace_id)
        elif choice <= 7:
            log.append(
                TraceAccess(
                    time=time,
                    trace_id=draw(st.sampled_from(created)),
                    repeat=draw(st.integers(1, 1000)),
                )
            )
        elif choice == 8:
            log.append(ModuleUnmap(time=time, module_id=draw(st.integers(0, 20))))
        else:
            trace_id = draw(st.sampled_from(created))
            if trace_id in pinned:
                log.append(TraceUnpin(time=time, trace_id=trace_id))
                pinned.discard(trace_id)
            else:
                log.append(TracePin(time=time, trace_id=trace_id))
                pinned.add(trace_id)
    log.append(EndOfLog(time=time + 1))
    return log


@given(arbitrary_logs())
@settings(max_examples=100, deadline=None)
def test_write_read_round_trip_is_identity(log):
    parsed = loads_log(dumps_log(log))
    assert parsed.records == log.records
    assert parsed.benchmark == log.benchmark
    assert parsed.code_footprint == log.code_footprint


@given(arbitrary_logs())
@settings(max_examples=60, deadline=None)
def test_lifetimes_always_in_unit_interval(log):
    if log.end_time <= 0:
        return
    lifetimes = trace_lifetimes(log)
    for value in lifetimes.values():
        assert 0.0 <= value <= 1.0
    histogram = lifetime_histogram(log)
    if histogram.n_traces:
        assert sum(histogram.fractions) == 100.0 or abs(
            sum(histogram.fractions) - 100.0
        ) < 1e-6
