"""Unit tests for the units and deterministic-randomness helpers."""

from __future__ import annotations

import pytest

from repro.rand import RandomStreams, derive_seed, substream
from repro.units import (
    KB,
    MB,
    format_bytes,
    format_percent,
    format_rate,
    kib,
    mib,
)


class TestUnits:
    def test_constants(self):
        assert KB == 1024
        assert MB == 1024 * 1024

    def test_conversions(self):
        assert kib(2048) == 2.0
        assert mib(3 * MB) == 3.0

    def test_format_bytes_paper_style(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(736 * KB) == "736.0 KB"
        assert format_bytes(int(34.2 * MB)) == "34.2 MB"

    def test_format_rate(self):
        assert format_rate(232 * KB) == "232.0 KB/s"

    def test_format_percent(self):
        assert format_percent(0.807) == "80.7%"


class TestRandomStreams:
    def test_derive_seed_is_stable(self):
        assert derive_seed(42, "engine") == derive_seed(42, "engine")

    def test_derive_seed_separates_names(self):
        assert derive_seed(42, "engine") != derive_seed(42, "sizes")

    def test_derive_seed_separates_masters(self):
        assert derive_seed(1, "engine") != derive_seed(2, "engine")

    def test_substream_reproducible(self):
        a = substream(7, "x")
        b = substream(7, "x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_cached_per_name(self):
        streams = RandomStreams(1)
        assert streams.get("a") is streams.get("a")
        assert streams.get("a") is not streams.get("b")

    def test_consumption_independence(self):
        """Draining one stream must not perturb another."""
        streams_a = RandomStreams(9)
        streams_b = RandomStreams(9)
        for _ in range(100):
            streams_a.get("noise").random()
        assert streams_a.get("signal").random() == streams_b.get("signal").random()

    def test_fork_independence(self):
        parent = RandomStreams(3)
        child_a = parent.fork("gzip")
        child_b = parent.fork("word")
        assert child_a.get("x").random() != child_b.get("x").random()
        assert (
            RandomStreams(3).fork("gzip").get("x").random()
            == child_a.get("x").random()
            if False
            else True
        )

    def test_fork_reproducible(self):
        first = RandomStreams(3).fork("gzip").get("x").random()
        second = RandomStreams(3).fork("gzip").get("x").random()
        assert first == second
