"""CLI integration tests."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.tracelog.reader import read_log


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "figure-9"])
        assert args.experiment == "figure-9"
        assert args.seed == 42
        assert not args.quick


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "word" in out
        assert "gzip" in out
        assert "Word Processor" in out

    def test_run_table2(self, capsys):
        assert main(["run", "table-2"]) == 0
        out = capsys.readouterr().out
        assert "69834" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "figure-99"]) == 2

    def test_run_characterization_quick_scaled(self, capsys):
        assert main(["run", "figure-2", "--quick", "--scale", "8"]) == 0
        out = capsys.readouterr().out
        assert "FIGURE-2" in out
        assert "word" in out

    def test_record_writes_readable_log(self, tmp_path, capsys):
        target = tmp_path / "art.log"
        assert main(["record", "art", str(target), "--scale", "2"]) == 0
        log = read_log(target)
        assert log.benchmark == "art"
        assert log.n_traces > 0

    def test_record_binary(self, tmp_path, capsys):
        from repro.tracelog.binary import read_binary_log

        text_target = tmp_path / "art.log"
        binary_target = tmp_path / "art.bin"
        assert main(["record", "art", str(text_target), "--scale", "2"]) == 0
        assert main(
            ["record", "art", str(binary_target), "--scale", "2", "--binary"]
        ) == 0
        assert read_binary_log(binary_target).records == read_log(text_target).records
        assert binary_target.stat().st_size < text_target.stat().st_size

    def test_run_extension_experiment(self, capsys):
        assert main(["run", "capacity", "--quick", "--scale", "16"]) == 0
        out = capsys.readouterr().out
        assert "CAPACITY-SENSITIVITY" in out

    def test_sweep_small(self, capsys):
        assert main(["sweep", "art", "--scale", "2"]) == 0
        out = capsys.readouterr().out
        assert "SECTION-6.1-SWEEP" in out
        assert "BestThreshold" in out


class TestValidation:
    """Structured ConfigError handling: bad flag combinations exit 2
    with a one-line message instead of a traceback."""

    def _error(self, capsys) -> str:
        return capsys.readouterr().err

    def test_negative_scale_rejected(self, capsys):
        assert main(["run", "figure-2", "--scale", "-4"]) == 2
        assert "repro-gencache: error:" in self._error(capsys)

    def test_zero_scale_rejected(self, capsys):
        assert main(["run", "figure-2", "--scale", "0"]) == 2
        assert "--scale" in self._error(capsys)

    def test_quick_with_inflating_scale_rejected(self, capsys):
        assert main(["run", "figure-2", "--quick", "--scale", "0.5"]) == 2
        assert "conflicting" in self._error(capsys)

    def test_quick_with_shrinking_scale_is_fine(self, capsys):
        # --quick --scale 8 shrinks further; that combination is the
        # documented fast path and must keep working.
        assert main(["run", "figure-2", "--quick", "--scale", "16"]) == 0

    def test_jobs_with_server_conflict(self, capsys):
        assert (
            main(
                ["run", "figure-2", "--jobs", "2", "--server", "http://x"]
            )
            == 2
        )
        assert "conflicting" in self._error(capsys)

    def test_zero_jobs_rejected(self, capsys):
        assert main(["run", "figure-2", "--jobs", "0"]) == 2

    def test_unknown_experiment_message(self, capsys):
        assert main(["run", "figure-99"]) == 2
        assert "figure-99" in self._error(capsys)

    def test_submit_all_rejected(self, capsys):
        assert main(["submit", "all", "--no-wait"]) == 2
        assert "single experiment" in self._error(capsys)

    def test_sweep_negative_scale_rejected(self, capsys):
        assert main(["sweep", "art", "--scale", "-1"]) == 2

    def test_unreachable_server_is_service_error(self, capsys):
        assert main(["status", "j0", "--server", "http://127.0.0.1:9"]) == 1
        assert "service error" in self._error(capsys)


class TestParallelDispatch:
    def test_run_with_jobs(self, capsys):
        assert (
            main(["run", "figure-1", "--quick", "--scale", "32", "--jobs", "2"])
            == 0
        )
        out = capsys.readouterr().out
        assert "FIGURE-1" in out

    def test_run_with_jobs_and_store(self, tmp_path, capsys):
        store = str(tmp_path / "results")
        argv = [
            "run", "figure-1", "--quick", "--scale", "32",
            "--jobs", "2", "--store", store,
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
