"""CLI integration tests."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.tracelog.reader import read_log


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "figure-9"])
        assert args.experiment == "figure-9"
        assert args.seed == 42
        assert not args.quick


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "word" in out
        assert "gzip" in out
        assert "Word Processor" in out

    def test_run_table2(self, capsys):
        assert main(["run", "table-2"]) == 0
        out = capsys.readouterr().out
        assert "69834" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "figure-99"]) == 2

    def test_run_characterization_quick_scaled(self, capsys):
        assert main(["run", "figure-2", "--quick", "--scale", "8"]) == 0
        out = capsys.readouterr().out
        assert "FIGURE-2" in out
        assert "word" in out

    def test_record_writes_readable_log(self, tmp_path, capsys):
        target = tmp_path / "art.log"
        assert main(["record", "art", str(target), "--scale", "2"]) == 0
        log = read_log(target)
        assert log.benchmark == "art"
        assert log.n_traces > 0

    def test_record_binary(self, tmp_path, capsys):
        from repro.tracelog.binary import read_binary_log

        text_target = tmp_path / "art.log"
        binary_target = tmp_path / "art.bin"
        assert main(["record", "art", str(text_target), "--scale", "2"]) == 0
        assert main(
            ["record", "art", str(binary_target), "--scale", "2", "--binary"]
        ) == 0
        assert read_binary_log(binary_target).records == read_log(text_target).records
        assert binary_target.stat().st_size < text_target.stat().st_size

    def test_run_extension_experiment(self, capsys):
        assert main(["run", "capacity", "--quick", "--scale", "16"]) == 0
        out = capsys.readouterr().out
        assert "CAPACITY-SENSITIVITY" in out

    def test_sweep_small(self, capsys):
        assert main(["sweep", "art", "--scale", "2"]) == 0
        out = capsys.readouterr().out
        assert "SECTION-6.1-SWEEP" in out
        assert "BestThreshold" in out


class TestValidation:
    """Structured ConfigError handling: bad flag combinations exit 2
    with a one-line message instead of a traceback."""

    def _error(self, capsys) -> str:
        return capsys.readouterr().err

    def test_negative_scale_rejected(self, capsys):
        assert main(["run", "figure-2", "--scale", "-4"]) == 2
        assert "repro-gencache: error:" in self._error(capsys)

    def test_zero_scale_rejected(self, capsys):
        assert main(["run", "figure-2", "--scale", "0"]) == 2
        assert "--scale" in self._error(capsys)

    def test_quick_with_inflating_scale_rejected(self, capsys):
        assert main(["run", "figure-2", "--quick", "--scale", "0.5"]) == 2
        assert "conflicting" in self._error(capsys)

    def test_quick_with_shrinking_scale_is_fine(self, capsys):
        # --quick --scale 8 shrinks further; that combination is the
        # documented fast path and must keep working.
        assert main(["run", "figure-2", "--quick", "--scale", "16"]) == 0

    def test_jobs_with_server_conflict(self, capsys):
        assert (
            main(
                ["run", "figure-2", "--jobs", "2", "--server", "http://x"]
            )
            == 2
        )
        assert "conflicting" in self._error(capsys)

    def test_zero_jobs_rejected(self, capsys):
        assert main(["run", "figure-2", "--jobs", "0"]) == 2

    def test_unknown_experiment_message(self, capsys):
        assert main(["run", "figure-99"]) == 2
        assert "figure-99" in self._error(capsys)

    def test_submit_all_rejected(self, capsys):
        assert main(["submit", "all", "--no-wait"]) == 2
        assert "single experiment" in self._error(capsys)

    def test_sweep_negative_scale_rejected(self, capsys):
        assert main(["sweep", "art", "--scale", "-1"]) == 2

    def test_unreachable_server_is_service_error(self, capsys):
        assert main(["status", "j0", "--server", "http://127.0.0.1:9"]) == 1
        assert "service error" in self._error(capsys)


class TestParallelDispatch:
    def test_run_with_jobs(self, capsys):
        assert (
            main(["run", "figure-1", "--quick", "--scale", "32", "--jobs", "2"])
            == 0
        )
        out = capsys.readouterr().out
        assert "FIGURE-1" in out

    def test_run_with_jobs_and_store(self, tmp_path, capsys):
        store = str(tmp_path / "results")
        argv = [
            "run", "figure-1", "--quick", "--scale", "32",
            "--jobs", "2", "--store", store,
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second


class TestScenarioVerbs:
    """The calibrate/fuzz verbs and the scenarios regression table."""

    @staticmethod
    def _emit_target(tmp_path):
        path = tmp_path / "target.json"
        assert (
            main(
                [
                    "calibrate", "word", "--emit-target", str(path),
                    "--scale", "512", "--seed", "7",
                ]
            )
            == 0
        )
        return path

    def test_emit_target_writes_json(self, tmp_path, capsys):
        path = self._emit_target(tmp_path)
        capsys.readouterr()
        import json

        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["name"] == "word"
        assert len(payload["statistics"]["miss_curve"]) == 4

    def test_calibrate_artifacts_are_seed_deterministic(self, tmp_path, capsys):
        target = self._emit_target(tmp_path)
        argv = [
            "calibrate", "word", "--target", str(target),
            "--scale", "512", "--seed", "7", "--budget", "2",
            "--parameters", "total_trace_kb",
        ]
        out_a = tmp_path / "a"
        out_b = tmp_path / "b"
        assert main(argv + ["--out", str(out_a)]) == 0
        assert main(argv + ["--out", str(out_b)]) == 0
        capsys.readouterr()
        files_a = sorted(p.name for p in out_a.glob("s*.json"))
        files_b = sorted(p.name for p in out_b.glob("s*.json"))
        assert files_a == files_b and len(files_a) == 1
        assert (out_a / files_a[0]).read_bytes() == (out_b / files_b[0]).read_bytes()

    def test_calibrate_needs_exactly_one_target_source(self, tmp_path, capsys):
        target = self._emit_target(tmp_path)
        capsys.readouterr()
        assert main(["calibrate", "word", "--scale", "512"]) == 2
        assert (
            main(
                [
                    "calibrate", "word", "--target", str(target),
                    "--from-profile", "gcc", "--scale", "512",
                ]
            )
            == 2
        )

    def test_calibrate_unknown_benchmark_exits_two(self, capsys):
        assert main(["calibrate", "nope", "--from-profile", "word"]) == 2
        assert "error" in capsys.readouterr().err

    def test_calibrate_bad_scale_exits_two(self, capsys):
        assert main(["calibrate", "word", "--from-profile", "word", "--scale", "-1"]) == 2

    def test_fuzz_same_contenders_exits_two(self, capsys):
        assert main(["fuzz", "--victim", "unified", "--reference", "unified"]) == 2
        assert "must differ" in capsys.readouterr().err

    def test_fuzz_unknown_contender_exits_two(self, capsys):
        assert main(["fuzz", "--victim", "bogus"]) == 2

    def test_fuzz_no_survivors_still_succeeds(self, capsys):
        argv = [
            "fuzz", "--rounds", "1", "--scale", "512", "--base", "word",
            "--min-regret", "0.9", "--seed", "13",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 counterexample(s)" in out
        assert "no candidate cleared" in out

    def test_fuzz_writes_survivor_artifacts(self, tmp_path, capsys):
        argv = [
            "fuzz", "--victim", "flush-all", "--reference", "unified",
            "--rounds", "2", "--scale", "512", "--base", "word",
            "--min-regret", "0.000001", "--seed", "13",
            "--out", str(tmp_path / "cx"),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "cx-flush-all-vs-unified-" in out
        saved = list((tmp_path / "cx").glob("s*.json"))
        assert saved

    def test_run_scenarios_quick(self, capsys):
        assert main(["run", "scenarios", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "SCENARIO-REGRESSION" in out
        assert "ok" in out
