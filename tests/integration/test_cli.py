"""CLI integration tests."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.tracelog.reader import read_log


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "figure-9"])
        assert args.experiment == "figure-9"
        assert args.seed == 42
        assert not args.quick


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "word" in out
        assert "gzip" in out
        assert "Word Processor" in out

    def test_run_table2(self, capsys):
        assert main(["run", "table-2"]) == 0
        out = capsys.readouterr().out
        assert "69834" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "figure-99"]) == 2

    def test_run_characterization_quick_scaled(self, capsys):
        assert main(["run", "figure-2", "--quick", "--scale", "8"]) == 0
        out = capsys.readouterr().out
        assert "FIGURE-2" in out
        assert "word" in out

    def test_record_writes_readable_log(self, tmp_path, capsys):
        target = tmp_path / "art.log"
        assert main(["record", "art", str(target), "--scale", "2"]) == 0
        log = read_log(target)
        assert log.benchmark == "art"
        assert log.n_traces > 0

    def test_record_binary(self, tmp_path, capsys):
        from repro.tracelog.binary import read_binary_log

        text_target = tmp_path / "art.log"
        binary_target = tmp_path / "art.bin"
        assert main(["record", "art", str(text_target), "--scale", "2"]) == 0
        assert main(
            ["record", "art", str(binary_target), "--scale", "2", "--binary"]
        ) == 0
        assert read_binary_log(binary_target).records == read_log(text_target).records
        assert binary_target.stat().st_size < text_target.stat().st_size

    def test_run_extension_experiment(self, capsys):
        assert main(["run", "capacity", "--quick", "--scale", "16"]) == 0
        out = capsys.readouterr().out
        assert "CAPACITY-SENSITIVITY" in out

    def test_sweep_small(self, capsys):
        assert main(["sweep", "art", "--scale", "2"]) == 0
        out = capsys.readouterr().out
        assert "SECTION-6.1-SWEEP" in out
        assert "BestThreshold" in out
