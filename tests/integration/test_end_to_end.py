"""End-to-end integration: full pipeline -> log -> every manager.

These tests exercise the complete system the way the paper's
methodology does: record once with the dynamic-optimizer front end (or
the calibrated synthesizer), then replay the log against the unified
baseline and the generational hierarchy, checking the paper's headline
relationships.
"""

from __future__ import annotations

import pytest

from repro.cachesim.simulator import simulate_log
from repro.core.config import BEST_CONFIG, GenerationalConfig
from repro.core.generational import GenerationalCacheManager
from repro.core.unified import UnifiedCacheManager
from repro.metrics.lifetimes import lifetime_histogram
from repro.overhead.model import TABLE2_COSTS
from repro.tracelog.reader import loads_log
from repro.tracelog.stats import summarize_log
from repro.tracelog.writer import dumps_log
from repro.workloads.catalog import get_profile
from repro.workloads.generator import build_session
from repro.workloads.synthesis import synthesize_log


@pytest.fixture(scope="module")
def word_log():
    # Extra scale keeps the integration suite fast.
    return synthesize_log(get_profile("word"), seed=42, scale=96.0)


@pytest.fixture(scope="module")
def word_capacity(word_log):
    return summarize_log(word_log).total_trace_bytes // 2


class TestHeadlineResult:
    """The paper's core claim on its flagship workload."""

    def test_generational_beats_unified_on_word(self, word_log, word_capacity):
        unified = simulate_log(
            word_log, UnifiedCacheManager(word_capacity), TABLE2_COSTS
        )
        generational = simulate_log(
            word_log,
            GenerationalCacheManager(word_capacity, BEST_CONFIG),
            TABLE2_COSTS,
        )
        assert generational.miss_rate < unified.miss_rate
        assert generational.overhead_instructions < unified.overhead_instructions

    def test_promotions_happen(self, word_log, word_capacity):
        generational = simulate_log(
            word_log, GenerationalCacheManager(word_capacity, BEST_CONFIG)
        )
        assert generational.stats.promotions > 0
        assert generational.stats.hits_by_cache.get("persistent", 0) > 0

    def test_unmap_evictions_present_for_windows_app(self, word_log, word_capacity):
        unified = simulate_log(word_log, UnifiedCacheManager(word_capacity))
        assert unified.stats.unmap_evictions > 0


class TestLogPortability:
    """A recorded log can be serialized, reloaded and replayed with
    identical results — the artifact-reuse property the paper's
    methodology depends on."""

    def test_serialize_replay_identical(self, word_log, word_capacity):
        direct = simulate_log(word_log, UnifiedCacheManager(word_capacity))
        reloaded = loads_log(dumps_log(word_log))
        replayed = simulate_log(reloaded, UnifiedCacheManager(word_capacity))
        assert direct.stats == replayed.stats


class TestFullPipelineAgreement:
    """The block-by-block pipeline (engine + DynOptRuntime) must
    produce logs with the same qualitative structure as the calibrated
    synthesizer."""

    @pytest.fixture(scope="class")
    def pipeline_log(self):
        return build_session(get_profile("winzip"), seed=7)

    def test_pipeline_log_is_u_shaped(self, pipeline_log):
        histogram = lifetime_histogram(pipeline_log)
        assert histogram.n_traces > 10
        assert histogram.short_lived + histogram.long_lived > 40.0

    def test_pipeline_log_replays_under_pressure(self, pipeline_log):
        stats = summarize_log(pipeline_log)
        capacity = max(4096, stats.total_trace_bytes // 2)
        unified = simulate_log(pipeline_log, UnifiedCacheManager(capacity))
        generational = simulate_log(
            pipeline_log, GenerationalCacheManager(capacity, BEST_CONFIG)
        )
        unified.stats.check_invariants()
        generational.stats.check_invariants()

    def test_pipeline_unmaps_flow_through(self, pipeline_log):
        stats = summarize_log(pipeline_log)
        assert stats.n_unmaps > 0
        capacity = max(4096, stats.total_trace_bytes // 2)
        result = simulate_log(pipeline_log, UnifiedCacheManager(capacity))
        assert result.stats.unmap_evictions > 0


class TestCrossPolicyOrdering:
    """Local-policy comparison on one log (the prior-work [12] result:
    circular-style beats preemptive flush under churn)."""

    def test_pseudocircular_beats_preemptive_flush(self, word_log, word_capacity):
        circular = simulate_log(
            word_log, UnifiedCacheManager(word_capacity, "pseudo-circular")
        )
        flush = simulate_log(
            word_log, UnifiedCacheManager(word_capacity, "preemptive-flush")
        )
        assert circular.miss_rate <= flush.miss_rate

    def test_all_policies_replay_cleanly(self, word_log, word_capacity):
        for policy in ("pseudo-circular", "circular", "lru", "preemptive-flush"):
            result = simulate_log(
                word_log, UnifiedCacheManager(word_capacity, policy)
            )
            result.stats.check_invariants()
