"""Every example script must run end-to-end.

These are the repository's runnable deliverables; a refactor that
breaks one should fail the suite, not a user's first session.  Each is
run as a subprocess with small inputs where the script accepts them.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

#: (script, argv) — arguments pick small benchmarks to keep this fast.
EXAMPLES: tuple[tuple[str, list[str]], ...] = (
    ("quickstart.py", []),
    ("dll_churn.py", []),
    ("policy_comparison.py", ["art"]),
    ("config_sweep.py", ["art"]),
    ("oracle_headroom.py", ["gzip"]),
    ("interactive_session.py", []),
)


@pytest.mark.parametrize("script,argv", EXAMPLES, ids=[e[0] for e in EXAMPLES])
def test_example_runs(script: str, argv: list[str]):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"example {script} is missing"
    completed = subprocess.run(
        [sys.executable, str(path), *argv],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"{script} failed:\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{script} produced no output"


def test_quickstart_reports_headline_metrics():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0
    out = completed.stdout
    assert "miss-rate reduction" in out
    assert "overhead ratio" in out
    assert "Figure 9" in out and "Figure 11" in out
