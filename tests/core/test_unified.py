"""Unit tests for the unified single-cache manager."""

from __future__ import annotations

import pytest

from repro.core.effects import Evicted, EvictionReason, Inserted
from repro.core.unified import UnifiedCacheManager
from repro.errors import ConfigError


class TestUnified:
    def test_insert_reports_insertion_effect(self):
        manager = UnifiedCacheManager(1000)
        effects = manager.insert(1, 100, 0, time=5)
        assert effects == [Inserted(trace_id=1, size=100, cache="unified")]

    def test_lookup_and_hit(self):
        manager = UnifiedCacheManager(1000)
        manager.insert(1, 100, 0, time=5)
        assert manager.lookup(1) == "unified"
        outcome = manager.on_hit(1, time=10, count=3)
        assert outcome.cache == "unified"
        assert outcome.effects == []
        assert manager.cache.get(1).access_count == 3

    def test_capacity_eviction_effects(self):
        manager = UnifiedCacheManager(200)
        manager.insert(0, 100, 0, time=0)
        manager.insert(1, 100, 0, time=1)
        effects = manager.insert(2, 100, 0, time=2)
        evictions = [e for e in effects if isinstance(e, Evicted)]
        assert len(evictions) == 1
        assert evictions[0].trace_id == 0
        assert evictions[0].reason is EvictionReason.CAPACITY

    def test_unmap_module_effects(self):
        manager = UnifiedCacheManager(1000)
        manager.insert(0, 100, module_id=3, time=0)
        manager.insert(1, 100, module_id=0, time=1)
        effects = manager.unmap_module(3, time=5)
        assert len(effects) == 1
        assert effects[0].reason is EvictionReason.UNMAP
        assert manager.lookup(0) is None
        assert manager.lookup(1) == "unified"

    def test_pin_returns_false_for_absent_trace(self):
        manager = UnifiedCacheManager(1000)
        assert not manager.pin(42)
        manager.insert(42, 100, 0, time=0)
        assert manager.pin(42)
        assert manager.cache.get(42).pinned

    def test_flush_policy_marks_reason(self):
        manager = UnifiedCacheManager(200, local_policy="preemptive-flush")
        manager.insert(0, 100, 0, time=0)
        manager.insert(1, 100, 0, time=1)
        effects = manager.insert(2, 100, 0, time=2)
        reasons = {e.reason for e in effects if isinstance(e, Evicted)}
        assert reasons == {EvictionReason.FLUSH}

    def test_rejects_unknown_policy(self):
        with pytest.raises(ConfigError):
            UnifiedCacheManager(1000, local_policy="belady")

    def test_alternative_policies_construct(self):
        for policy in ("lru", "circular", "unbounded", "pseudo-circular"):
            manager = UnifiedCacheManager(1000, local_policy=policy)
            manager.insert(0, 100, 0, time=0)
            assert manager.lookup(0) == "unified"

    def test_total_capacity(self):
        assert UnifiedCacheManager(4096).total_capacity == 4096
