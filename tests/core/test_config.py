"""Unit tests for GenerationalConfig."""

from __future__ import annotations

import pytest

from repro.core.config import (
    BEST_CONFIG,
    FIGURE9_CONFIGS,
    GenerationalConfig,
    PromotionMode,
)
from repro.errors import ConfigError


class TestValidation:
    def test_default_is_the_papers_best_layout(self):
        config = GenerationalConfig()
        assert config.nursery_fraction == pytest.approx(0.45)
        assert config.probation_fraction == pytest.approx(0.10)
        assert config.persistent_fraction == pytest.approx(0.45)
        assert config.promotion_threshold == 1
        assert config.promotion_mode is PromotionMode.ON_HIT

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ConfigError):
            GenerationalConfig(
                nursery_fraction=0.5,
                probation_fraction=0.1,
                persistent_fraction=0.5,
            )

    def test_fractions_must_be_inside_unit_interval(self):
        with pytest.raises(ConfigError):
            GenerationalConfig(
                nursery_fraction=0.0,
                probation_fraction=0.5,
                persistent_fraction=0.5,
            )

    def test_threshold_must_be_positive(self):
        with pytest.raises(ConfigError):
            GenerationalConfig(promotion_threshold=0)


class TestSizes:
    def test_sizes_sum_to_total(self):
        for total in (1000, 999, 12345, 7):
            nursery, probation, persistent = GenerationalConfig().sizes(total)
            assert nursery + probation + persistent == total
            assert min(nursery, probation, persistent) >= 1

    def test_proportions_respected_for_large_totals(self):
        nursery, probation, persistent = GenerationalConfig().sizes(1_000_000)
        assert nursery == pytest.approx(450_000, rel=0.01)
        assert probation == pytest.approx(100_000, rel=0.01)
        assert persistent == pytest.approx(450_000, rel=0.01)

    def test_tiny_total_rejected(self):
        with pytest.raises(ConfigError):
            GenerationalConfig().sizes(2)


class TestCatalog:
    def test_figure9_has_three_layouts(self):
        assert len(FIGURE9_CONFIGS) == 3
        labels = [c.label() for c in FIGURE9_CONFIGS]
        assert "45-10-45 (thresh 1)" in labels

    def test_best_config_is_45_10_45(self):
        assert BEST_CONFIG.label() == "45-10-45 (thresh 1)"

    def test_labels_are_unique(self):
        labels = [c.label() for c in FIGURE9_CONFIGS]
        assert len(set(labels)) == len(labels)
