"""Tests for the CacheManager base behaviour and effect records."""

from __future__ import annotations

import pytest

from repro.core.config import GenerationalConfig
from repro.core.effects import Evicted, EvictionReason, Inserted, Promoted
from repro.core.generational import GenerationalCacheManager
from repro.core.unified import UnifiedCacheManager


class TestEffectRecords:
    def test_effects_are_hashable_values(self):
        a = Inserted(trace_id=1, size=10, cache="nursery")
        b = Inserted(trace_id=1, size=10, cache="nursery")
        assert a == b
        assert hash(a) == hash(b)

    def test_eviction_reasons(self):
        assert {r.value for r in EvictionReason} == {
            "capacity", "unmap", "flush",
        }

    def test_promoted_carries_endpoints(self):
        effect = Promoted(trace_id=2, size=100, src="nursery", dst="probation")
        assert (effect.src, effect.dst) == ("nursery", "probation")


class TestManagerBase:
    def test_lookup_none_when_empty(self):
        manager = UnifiedCacheManager(1000)
        assert manager.lookup(5) is None

    def test_generational_total_capacity_exact(self):
        manager = GenerationalCacheManager(997, GenerationalConfig())
        assert manager.total_capacity == 997

    def test_fragmentation_and_occupancy_keys(self):
        manager = GenerationalCacheManager(3000, GenerationalConfig())
        manager.insert(0, 100, 0, time=0)
        assert set(manager.fragmentation()) == {
            "nursery", "probation", "persistent",
        }
        occupancy = manager.occupancy()
        assert occupancy["nursery"] > 0
        assert occupancy["persistent"] == 0

    def test_unpin_of_absent_trace_is_false(self):
        manager = UnifiedCacheManager(1000)
        assert manager.unpin(3) is False

    def test_pin_unpin_round_trip(self):
        manager = GenerationalCacheManager(3000, GenerationalConfig())
        manager.insert(0, 100, 0, time=0)
        assert manager.pin(0)
        assert manager.unpin(0)

    def test_check_invariants_detects_double_residency(self):
        manager = GenerationalCacheManager(3000, GenerationalConfig())
        manager.insert(0, 100, 0, time=0)
        # Force an illegal state by inserting the same id into a second
        # cache directly (bypassing the manager).
        manager.persistent.insert(0, 100, 0, time=1)
        with pytest.raises(AssertionError):
            manager.check_invariants()


class TestUnmapAcrossManagers:
    @pytest.mark.parametrize("make", [
        lambda: UnifiedCacheManager(4000),
        lambda: GenerationalCacheManager(4000, GenerationalConfig()),
    ])
    def test_unmap_is_exhaustive(self, make):
        manager = make()
        for trace_id in range(6):
            manager.insert(trace_id, 150, module_id=trace_id % 2, time=trace_id)
        effects = manager.unmap_module(0, time=10)
        gone = {e.trace_id for e in effects if isinstance(e, Evicted)}
        assert gone == {0, 2, 4}
        for trace_id in gone:
            assert manager.lookup(trace_id) is None
        for trace_id in (1, 3, 5):
            assert manager.lookup(trace_id) is not None
