"""Unit tests for the generational manager (Figure 8's algorithm)."""

from __future__ import annotations

import pytest

from repro.core.config import GenerationalConfig, PromotionMode
from repro.core.effects import Evicted, EvictionReason, Inserted, Promoted
from repro.core.generational import GenerationalCacheManager


def equal_thirds(threshold: int = 1, mode: PromotionMode = PromotionMode.ON_HIT):
    return GenerationalConfig(
        nursery_fraction=0.34,
        probation_fraction=0.33,
        persistent_fraction=0.33,
        promotion_threshold=threshold,
        promotion_mode=mode,
    )


def make_manager(
    total: int = 900,
    threshold: int = 1,
    mode: PromotionMode = PromotionMode.ON_HIT,
) -> GenerationalCacheManager:
    return GenerationalCacheManager(total, equal_thirds(threshold, mode))


def fill_nursery(manager: GenerationalCacheManager, n: int, size: int = 100, base: int = 0):
    for i in range(n):
        manager.insert(base + i, size, 0, time=base + i)


class TestBasicFlow:
    def test_new_trace_lands_in_nursery(self):
        manager = make_manager()
        effects = manager.insert(1, 100, 0, time=0)
        assert effects == [Inserted(trace_id=1, size=100, cache="nursery")]
        assert manager.lookup(1) == "nursery"

    def test_nursery_eviction_promotes_to_probation(self):
        manager = make_manager()  # nursery 306 bytes -> 3 traces of 100
        fill_nursery(manager, 3)
        effects = manager.insert(3, 100, 0, time=3)
        promotions = [e for e in effects if isinstance(e, Promoted)]
        assert promotions == [
            Promoted(trace_id=0, size=100, src="nursery", dst="probation")
        ]
        assert manager.lookup(0) == "probation"

    def test_probation_eviction_without_hits_deletes(self):
        manager = make_manager(threshold=1, mode=PromotionMode.ON_HIT)
        # Push enough traces through that probation (297 bytes) evicts.
        all_effects = []
        for trace_id in range(8):
            all_effects.extend(manager.insert(trace_id, 100, 0, time=trace_id))
        deleted = [
            e for e in all_effects
            if isinstance(e, Evicted) and e.cache == "probation"
        ]
        assert deleted, "probation must have deleted unhit traces"
        for effect in deleted:
            assert effect.reason is EvictionReason.CAPACITY
            assert manager.lookup(effect.trace_id) is None

    def test_trace_lives_in_exactly_one_cache(self):
        manager = make_manager()
        for trace_id in range(20):
            manager.insert(trace_id, 90, 0, time=trace_id)
            manager.check_invariants()


class TestOnHitPromotion:
    def test_single_probation_hit_promotes_to_persistent(self):
        manager = make_manager(threshold=1, mode=PromotionMode.ON_HIT)
        fill_nursery(manager, 3)
        manager.insert(3, 100, 0, time=3)  # trace 0 -> probation
        assert manager.lookup(0) == "probation"
        outcome = manager.on_hit(0, time=10)
        promotions = [e for e in outcome.effects if isinstance(e, Promoted)]
        assert promotions == [
            Promoted(trace_id=0, size=100, src="probation", dst="persistent")
        ]
        assert manager.lookup(0) == "persistent"
        assert outcome.cache == "probation"

    def test_nursery_hit_never_promotes(self):
        manager = make_manager(threshold=1, mode=PromotionMode.ON_HIT)
        manager.insert(0, 100, 0, time=0)
        outcome = manager.on_hit(0, time=1, count=50)
        assert outcome.effects == []
        assert manager.lookup(0) == "nursery"

    def test_threshold_two_needs_two_hits(self):
        manager = make_manager(threshold=2, mode=PromotionMode.ON_HIT)
        fill_nursery(manager, 3)
        manager.insert(3, 100, 0, time=3)
        manager.on_hit(0, time=10)
        assert manager.lookup(0) == "probation"
        manager.on_hit(0, time=11)
        assert manager.lookup(0) == "persistent"

    def test_repeat_counts_accumulate_toward_threshold(self):
        manager = make_manager(threshold=5, mode=PromotionMode.ON_HIT)
        fill_nursery(manager, 3)
        manager.insert(3, 100, 0, time=3)
        manager.on_hit(0, time=10, count=5)
        assert manager.lookup(0) == "persistent"

    def test_persistent_hit_is_plain_hit(self):
        manager = make_manager(threshold=1, mode=PromotionMode.ON_HIT)
        fill_nursery(manager, 3)
        manager.insert(3, 100, 0, time=3)
        manager.on_hit(0, time=10)  # promoted to persistent
        outcome = manager.on_hit(0, time=11)
        assert outcome.cache == "persistent"
        assert outcome.effects == []


class TestOnEvictionPromotion:
    def test_hit_trace_graduates_at_probation_eviction(self):
        manager = make_manager(threshold=1, mode=PromotionMode.ON_EVICTION)
        fill_nursery(manager, 3)
        manager.insert(3, 100, 0, time=3)  # 0 -> probation
        manager.on_hit(0, time=5)  # count 1 in probation; stays put
        assert manager.lookup(0) == "probation"
        # Push probation to evict trace 0.
        all_effects = []
        for trace_id in range(4, 11):
            all_effects.extend(manager.insert(trace_id, 100, 0, time=trace_id))
        graduate = [
            e for e in all_effects
            if isinstance(e, Promoted) and e.dst == "persistent"
        ]
        assert [e.trace_id for e in graduate] == [0]
        assert manager.lookup(0) == "persistent"

    def test_unhit_trace_dies_at_probation_eviction(self):
        manager = make_manager(threshold=1, mode=PromotionMode.ON_EVICTION)
        all_effects = []
        for trace_id in range(12):
            all_effects.extend(manager.insert(trace_id, 100, 0, time=trace_id))
        died = [
            e.trace_id for e in all_effects
            if isinstance(e, Evicted) and e.cache == "probation"
        ]
        assert died
        assert all(manager.lookup(t) is None for t in died)

    def test_below_threshold_dies(self):
        manager = make_manager(threshold=10, mode=PromotionMode.ON_EVICTION)
        fill_nursery(manager, 3)
        manager.insert(3, 100, 0, time=3)
        manager.on_hit(0, time=5, count=9)  # 9 < 10
        for trace_id in range(4, 11):
            manager.insert(trace_id, 100, 0, time=trace_id)
        assert manager.lookup(0) is None


class TestPersistentChurn:
    def test_persistent_eviction_deletes(self):
        manager = make_manager(threshold=1, mode=PromotionMode.ON_HIT)
        # Promote four 100-byte traces into a 297-byte persistent cache.
        all_effects = []
        for round_no in range(6):
            base = round_no * 10
            fill_nursery(manager, 3, base=base)
            all_effects.extend(manager.insert(base + 3, 100, 0, time=base + 3))
            probation_resident = [
                t for t in (base, base + 1, base + 2, base + 3)
                if manager.lookup(t) == "probation"
            ]
            for trace_id in probation_resident:
                all_effects.extend(
                    manager.on_hit(trace_id, time=base + 5).effects
                )
        persistent_deaths = [
            e for e in all_effects
            if isinstance(e, Evicted) and e.cache == "persistent"
        ]
        assert persistent_deaths, "persistent cache must eventually evict"
        manager.check_invariants()


class TestUnmapAndPins:
    def test_unmap_removes_from_all_caches(self):
        manager = make_manager()
        fill_nursery(manager, 3)  # traces 0-2 in nursery
        manager.insert(3, 100, 0, time=3)  # 0 -> probation
        manager.on_hit(0, time=5)  # 0 -> persistent
        manager.insert(4, 100, 0, time=6)  # 1 -> probation
        assert manager.lookup(1) == "probation"
        # All traces belong to module 0; unmap module 0.
        effects = manager.unmap_module(0, time=10)
        assert {e.cache for e in effects} == {"nursery", "probation", "persistent"}
        for trace_id in range(5):
            assert manager.lookup(trace_id) is None

    def test_pinned_trace_survives_churn_in_nursery(self):
        manager = make_manager()
        manager.insert(0, 100, 0, time=0)
        manager.pin(0)
        for trace_id in range(1, 15):
            manager.insert(trace_id, 100, 0, time=trace_id)
        assert manager.lookup(0) == "nursery"

    def test_oversized_trace_falls_back_to_largest_cache(self):
        config = GenerationalConfig(
            nursery_fraction=0.10,
            probation_fraction=0.10,
            persistent_fraction=0.80,
            promotion_threshold=1,
        )
        manager = GenerationalCacheManager(1000, config)
        effects = manager.insert(0, 500, 0, time=0)  # > nursery (100 B)
        inserted = [e for e in effects if isinstance(e, Inserted)]
        assert inserted[0].cache == "persistent"
        assert manager.lookup(0) == "persistent"

    def test_trace_too_big_for_probation_is_deleted_not_crashed(self):
        config = GenerationalConfig(
            nursery_fraction=0.60,
            probation_fraction=0.05,
            persistent_fraction=0.35,
            promotion_threshold=1,
        )
        manager = GenerationalCacheManager(1000, config)
        # 300-byte traces fit the 600-byte nursery but not the 50-byte
        # probation cache; nursery evictions must delete them cleanly.
        all_effects = []
        for trace_id in range(6):
            all_effects.extend(manager.insert(trace_id, 300, 0, time=trace_id))
        deleted = [e for e in all_effects if isinstance(e, Evicted)]
        assert deleted
        manager.check_invariants()


class TestNaming:
    def test_manager_name_carries_config_label(self):
        manager = make_manager()
        assert "34-33-33" in manager.name

    def test_cache_names(self):
        manager = make_manager()
        assert [c.name for c in manager.caches()] == [
            "nursery", "probation", "persistent",
        ]
