"""Unit tests for expansion, rates, miss-rate metrics and summaries."""

from __future__ import annotations

import pytest

from repro.cachesim.stats import CacheStats, SimulationResult
from repro.errors import ExperimentError
from repro.metrics.expansion import code_expansion
from repro.metrics.missrates import miss_rate_reduction, misses_eliminated
from repro.metrics.rates import insertion_rate
from repro.metrics.summary import arithmetic_mean, geometric_mean, std_deviation


def result_with(misses: int, accesses: int = 1000) -> SimulationResult:
    return SimulationResult(
        benchmark="x",
        manager_name="m",
        stats=CacheStats(accesses=accesses, hits=accesses - misses, misses=misses),
    )


class TestExpansion:
    def test_equation1(self):
        # 500% expansion: cache five times the footprint.
        assert code_expansion(5000, 1000) == pytest.approx(5.0)

    def test_zero_cache(self):
        assert code_expansion(0, 1000) == 0.0

    def test_invalid_footprint(self):
        with pytest.raises(ExperimentError):
            code_expansion(100, 0)

    def test_negative_cache_rejected(self):
        with pytest.raises(ExperimentError):
            code_expansion(-1, 100)


class TestRates:
    def test_kb_per_second(self):
        assert insertion_rate(232 * 1024, 1.0) == pytest.approx(232 * 1024)

    def test_zero_duration_rejected(self):
        with pytest.raises(ExperimentError):
            insertion_rate(100, 0.0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ExperimentError):
            insertion_rate(-5, 1.0)


class TestMissRateMetrics:
    def test_reduction(self):
        baseline = result_with(misses=100)
        candidate = result_with(misses=82)
        assert miss_rate_reduction(baseline, candidate) == pytest.approx(0.18)

    def test_negative_reduction_when_candidate_worse(self):
        assert miss_rate_reduction(result_with(50), result_with(60)) < 0

    def test_zero_baseline(self):
        assert miss_rate_reduction(result_with(0), result_with(0)) == 0.0

    def test_misses_eliminated(self):
        assert misses_eliminated(result_with(100), result_with(60)) == 40
        assert misses_eliminated(result_with(50), result_with(70)) == -20


class TestSummary:
    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        assert arithmetic_mean([]) == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0

    def test_geometric_mean_requires_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_geomean_of_ratios_matches_paper_style(self):
        # Like Figure 11: ratios around 0.807 average geometrically.
        ratios = [0.511, 0.85, 0.9, 1.062, 0.75]
        value = geometric_mean(ratios)
        assert 0.5 < value < 1.1

    def test_std_deviation(self):
        assert std_deviation([2.0, 2.0, 2.0]) == 0.0
        assert std_deviation([1.0]) == 0.0
        assert std_deviation([0.0, 2.0]) == pytest.approx(1.0)
