"""Unit tests for Equation 2 lifetimes and the Figure 6 histogram."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.metrics.lifetimes import (
    BUCKET_LABELS,
    LIFETIME_BUCKETS,
    bucket_of,
    lifetime_histogram,
    trace_lifetimes,
)
from repro.tracelog.records import EndOfLog, TraceAccess, TraceCreate, TraceLog


def build_log(records, end=100) -> TraceLog:
    log = TraceLog(benchmark="t", duration_seconds=1.0, code_footprint=100)
    creates_first = {TraceCreate: 0, TraceAccess: 1}
    for record in sorted(records, key=lambda r: (r.time, creates_first[type(r)])):
        log.append(record)
    log.append(EndOfLog(time=end))
    return log


class TestEquation2:
    def test_never_reaccessed_trace_has_zero_lifetime(self):
        log = build_log([TraceCreate(time=10, trace_id=0, size=8, module_id=0)])
        assert trace_lifetimes(log) == {0: 0.0}

    def test_lifetime_spans_creation_to_last_access(self):
        # Creation counts as the first execution: the trace is built
        # while the code is executing (Section 4.1).
        log = build_log([
            TraceCreate(time=0, trace_id=0, size=8, module_id=0),
            TraceAccess(time=10, trace_id=0),
            TraceAccess(time=60, trace_id=0),
        ])
        assert trace_lifetimes(log)[0] == pytest.approx(0.6)

    def test_full_lifetime(self):
        log = build_log([
            TraceCreate(time=0, trace_id=0, size=8, module_id=0),
            TraceAccess(time=0, trace_id=0),
            TraceAccess(time=100, trace_id=0),
        ])
        assert trace_lifetimes(log)[0] == pytest.approx(1.0)

    def test_values_always_in_unit_interval(self, small_log):
        for lifetime in trace_lifetimes(small_log).values():
            assert 0.0 <= lifetime <= 1.0

    def test_empty_execution_time_rejected(self):
        log = TraceLog(benchmark="t", duration_seconds=1.0, code_footprint=1)
        with pytest.raises(ExperimentError):
            trace_lifetimes(log)


class TestBuckets:
    def test_five_buckets(self):
        assert len(LIFETIME_BUCKETS) == 5
        assert len(BUCKET_LABELS) == 5

    def test_bucket_boundaries(self):
        assert bucket_of(0.0) == 0
        assert bucket_of(0.2) == 0
        assert bucket_of(0.21) == 1
        assert bucket_of(0.80) == 3
        assert bucket_of(0.81) == 4
        assert bucket_of(1.0) == 4

    def test_out_of_range_rejected(self):
        with pytest.raises(ExperimentError):
            bucket_of(1.5)
        with pytest.raises(ExperimentError):
            bucket_of(-0.1)


class TestHistogram:
    def test_fractions_sum_to_100(self, small_log):
        histogram = lifetime_histogram(small_log)
        assert sum(histogram.fractions) == pytest.approx(100.0)
        assert histogram.n_traces == 6

    def test_u_shape_detection(self):
        records = [TraceCreate(time=0, trace_id=i, size=8, module_id=0)
                   for i in range(4)]
        # Two short-lived (no re-access => 0), two long-lived.
        records += [
            TraceAccess(time=1, trace_id=2),
            TraceAccess(time=99, trace_id=2),
            TraceAccess(time=1, trace_id=3),
            TraceAccess(time=95, trace_id=3),
        ]
        histogram = lifetime_histogram(build_log(records))
        assert histogram.short_lived == pytest.approx(50.0)
        assert histogram.long_lived == pytest.approx(50.0)
        assert histogram.is_u_shaped

    def test_middle_heavy_is_not_u_shaped(self):
        records = []
        for i in range(3):
            records.append(TraceCreate(time=0, trace_id=i, size=8, module_id=0))
            records.append(TraceAccess(time=1, trace_id=i))
        for i in range(3):
            records.append(TraceAccess(time=50, trace_id=i))
        histogram = lifetime_histogram(build_log(records))
        assert not histogram.is_u_shaped

    def test_empty_log_histogram(self):
        log = build_log([], end=10)
        histogram = lifetime_histogram(log)
        assert histogram.n_traces == 0
        assert sum(histogram.fractions) == 0.0
