"""Unit tests for reuse-distance analysis."""

from __future__ import annotations

import pytest

from repro.metrics.reuse import (
    BUCKET_LABELS,
    reuse_distances,
    reuse_profile,
)
from repro.tracelog.records import EndOfLog, TraceAccess, TraceCreate, TraceLog


def log_of(records, benchmark="t"):
    log = TraceLog(benchmark=benchmark, duration_seconds=1.0, code_footprint=100)
    for record in records:
        log.append(record)
    return log


class TestDistances:
    def test_first_access_has_distance_from_creation(self):
        log = log_of([
            TraceCreate(time=1, trace_id=0, size=100, module_id=0),
            TraceCreate(time=2, trace_id=1, size=50, module_id=0),
            TraceAccess(time=3, trace_id=0),
        ])
        # Between trace 0's creation and its access, 50 bytes arrived.
        assert reuse_distances(log) == [50]

    def test_consecutive_accesses_have_zero_distance(self):
        log = log_of([
            TraceCreate(time=1, trace_id=0, size=100, module_id=0),
            TraceAccess(time=2, trace_id=0),
            TraceAccess(time=3, trace_id=0),
        ])
        assert reuse_distances(log) == [0, 0]

    def test_interleaved_creations_accumulate(self):
        log = log_of([
            TraceCreate(time=1, trace_id=0, size=10, module_id=0),
            TraceAccess(time=2, trace_id=0),
            TraceCreate(time=3, trace_id=1, size=30, module_id=0),
            TraceCreate(time=4, trace_id=2, size=40, module_id=0),
            TraceAccess(time=5, trace_id=0),
        ])
        assert reuse_distances(log) == [0, 70]

    def test_no_reaccess_no_distances(self):
        log = log_of([
            TraceCreate(time=1, trace_id=0, size=10, module_id=0),
        ])
        assert reuse_distances(log) == []


class TestProfile:
    def test_buckets_sum_to_100(self):
        records = [TraceCreate(time=1, trace_id=0, size=100, module_id=0)]
        for t in range(2, 12):
            records.append(TraceAccess(time=t, trace_id=0))
        records.append(EndOfLog(time=20))
        profile = reuse_profile(log_of(records))
        assert profile.n_reaccesses == 10
        assert sum(profile.fractions) == pytest.approx(100.0)
        assert profile.fractions[0] == pytest.approx(100.0)  # all zero-distance
        assert profile.over_half == 0.0

    def test_far_reuse_lands_in_last_bucket(self):
        records = [
            TraceCreate(time=1, trace_id=0, size=10, module_id=0),
            TraceAccess(time=2, trace_id=0),
        ]
        # 99 more creations: total 1000 bytes; then re-access trace 0.
        for i in range(1, 100):
            records.append(TraceCreate(time=2 + i, trace_id=i, size=10, module_id=0))
        records.append(TraceAccess(time=200, trace_id=0))
        profile = reuse_profile(log_of(records))
        # Distance 990 of 1000 total bytes: the <100% bucket, and over
        # the half-capacity line a 0.5*maxCache FIFO can cover.
        assert profile.fractions[3] == pytest.approx(50.0)
        assert profile.over_half == pytest.approx(50.0)

    def test_empty_log(self):
        profile = reuse_profile(log_of([]))
        assert profile.n_reaccesses == 0
        assert sum(profile.fractions) == 0.0

    def test_bucket_labels_cardinality(self):
        assert len(BUCKET_LABELS) == 5


class TestWorkloadShape:
    def test_synthetic_word_has_bimodal_reuse(self):
        """The calibrated interactive workload: the hot core reuses at
        tiny distances, the cool long-lived traffic at huge ones."""
        from repro.workloads import get_profile, synthesize_log

        log = synthesize_log(get_profile("word"), seed=42, scale=128.0)
        profile = reuse_profile(log)
        assert profile.n_reaccesses > 100
        # Almost all re-accesses are near in *cold* (creation-volume)
        # distance — the hot core plus phase-local handlers...
        assert profile.fractions[0] > 90.0
        # ...with a small distant tail.  Cold distance understates the
        # effective pressure: at replay time regeneration traffic
        # multiplies the insertion volume, which is exactly why the
        # unified FIFO loses traces whose cold distances look safe.
        assert sum(profile.fractions[1:]) > 0.3

    def test_experiment_table(self):
        from repro.experiments.reuse import run

        result = run(scale_multiplier=64.0, subset=["gzip", "word"])
        assert len(result.rows) == 2
        for row in result.rows:
            total = sum(float(row[label]) for label in BUCKET_LABELS)
            assert total == pytest.approx(100.0, abs=0.5)
