"""Unit tests for the synthetic instruction set."""

from __future__ import annotations

import pytest

from repro.isa.instructions import (
    BranchKind,
    Instruction,
    Opcode,
    conditional_branch,
    direct_jump,
    encode_size,
    indirect_jump,
    ret,
    straightline,
)


class TestOpcode:
    def test_control_transfer_classification(self):
        assert Opcode.BRANCH.is_control_transfer
        assert Opcode.JUMP.is_control_transfer
        assert Opcode.CALL.is_control_transfer
        assert Opcode.RETURN.is_control_transfer
        assert not Opcode.ALU.is_control_transfer
        assert not Opcode.LOAD.is_control_transfer

    def test_every_opcode_has_a_size(self):
        for opcode in Opcode:
            assert encode_size(opcode) > 0


class TestConstruction:
    def test_straightline(self):
        insn = straightline()
        assert insn.branch_kind is BranchKind.NONE
        assert not insn.is_control_transfer

    def test_conditional_branch(self):
        insn = conditional_branch(7, backward=True)
        assert insn.target_block == 7
        assert insn.backward
        assert insn.is_control_transfer

    def test_direct_jump(self):
        insn = direct_jump(3)
        assert insn.branch_kind is BranchKind.DIRECT
        assert not insn.backward

    def test_indirect_jump_has_no_target(self):
        assert indirect_jump().target_block is None

    def test_return_is_indirect(self):
        assert ret().branch_kind is BranchKind.INDIRECT


class TestValidation:
    def test_control_opcode_requires_branch_kind(self):
        with pytest.raises(ValueError):
            Instruction(opcode=Opcode.JUMP)

    def test_plain_opcode_rejects_branch_kind(self):
        with pytest.raises(ValueError):
            Instruction(opcode=Opcode.ALU, branch_kind=BranchKind.DIRECT)

    def test_indirect_rejects_static_target(self):
        with pytest.raises(ValueError):
            Instruction(
                opcode=Opcode.JUMP,
                branch_kind=BranchKind.INDIRECT,
                target_block=4,
            )

    def test_size_property(self):
        assert straightline().size == encode_size(Opcode.ALU)
