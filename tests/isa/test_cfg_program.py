"""Unit tests for the CFG and program builder."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.isa.cfg import ControlFlowGraph
from repro.isa.modules import ModuleKind
from repro.isa.program import ProgramBuilder, tiny_loop_program


class TestCFG:
    def test_add_edge_registers_blocks(self):
        cfg = ControlFlowGraph()
        cfg.add_edge(0, 1, 1.0)
        assert cfg.blocks == {0, 1}

    def test_successors_and_predecessors(self):
        cfg = ControlFlowGraph()
        cfg.add_edge(0, 1, 0.4)
        cfg.add_edge(0, 2, 0.6)
        assert {e.dst for e in cfg.successors(0)} == {1, 2}
        assert [e.src for e in cfg.predecessors(2)] == [0]

    def test_terminal_detection(self):
        cfg = ControlFlowGraph()
        cfg.add_edge(0, 1, 1.0)
        assert cfg.is_terminal(1)
        assert not cfg.is_terminal(0)

    def test_validate_accepts_unit_sums(self):
        cfg = ControlFlowGraph()
        cfg.add_edge(0, 1, 0.3)
        cfg.add_edge(0, 2, 0.7)
        cfg.validate()

    def test_validate_rejects_bad_sums(self):
        cfg = ControlFlowGraph()
        cfg.add_edge(0, 1, 0.3)
        cfg.add_edge(0, 2, 0.3)
        with pytest.raises(WorkloadError):
            cfg.validate()

    def test_probability_bounds(self):
        cfg = ControlFlowGraph()
        with pytest.raises(WorkloadError):
            cfg.add_edge(0, 1, 1.5)

    def test_sample_successor_deterministic_given_uniform(self):
        cfg = ControlFlowGraph()
        cfg.add_edge(0, 1, 0.25)
        cfg.add_edge(0, 2, 0.75)
        assert cfg.sample_successor(0, 0.1) == 1
        assert cfg.sample_successor(0, 0.25) == 2
        assert cfg.sample_successor(0, 0.999) == 2

    def test_sample_successor_terminal_returns_none(self):
        cfg = ControlFlowGraph()
        cfg.add_block(5)
        assert cfg.sample_successor(5, 0.5) is None

    def test_float_shortfall_falls_back_to_last_edge(self):
        cfg = ControlFlowGraph()
        cfg.add_edge(0, 1, 0.5)
        cfg.add_edge(0, 2, 0.5)
        assert cfg.sample_successor(0, 0.9999999999999999) == 2

    def test_remove_block_drops_incident_edges(self):
        cfg = ControlFlowGraph()
        cfg.add_edge(0, 1, 1.0)
        cfg.add_edge(1, 2, 1.0)
        cfg.remove_block(1)
        assert cfg.successors(0) == []
        assert cfg.predecessors(2) == []
        assert 1 not in cfg.blocks


class TestProgramBuilder:
    def test_tiny_loop_program_validates(self):
        program = tiny_loop_program()
        assert program.entry_block in program.blocks
        assert program.code_footprint > 0

    def test_loop_tail_has_backward_branch(self):
        program = tiny_loop_program()
        tails = [
            b for b in program.blocks.values() if b.ends_in_backward_branch
        ]
        assert len(tails) == 1

    def test_module_membership(self):
        builder = ProgramBuilder("p")
        main = builder.add_module("main.exe", ModuleKind.EXECUTABLE)
        dll = builder.add_module(
            "x.dll", ModuleKind.PLUGIN_DLL, unloadable=True, loaded=False
        )
        a = builder.add_block(main)
        b = builder.add_block(dll)
        program_block_a = builder.finish().blocks[a.block_id]
        assert program_block_a.module_id == main.module_id
        assert b.module_id == dll.module_id
        assert not dll.loaded

    def test_code_size_accumulates(self):
        builder = ProgramBuilder("p")
        main = builder.add_module("main.exe", ModuleKind.EXECUTABLE)
        builder.add_block(main, body_length=5)
        builder.add_block(main, body_length=5)
        assert main.code_size == 2 * 5 * 3

    def test_addresses_do_not_overlap_within_module(self):
        builder = ProgramBuilder("p")
        main = builder.add_module("main.exe", ModuleKind.EXECUTABLE)
        blocks = [builder.add_block(main, body_length=4) for _ in range(5)]
        for first, second in zip(blocks, blocks[1:]):
            assert first.end_address <= second.address

    def test_loop_iterations_mean_validation(self):
        builder = ProgramBuilder("p")
        main = builder.add_module("main.exe", ModuleKind.EXECUTABLE)
        with pytest.raises(WorkloadError):
            builder.add_loop(main, body_blocks=2, iterations_mean=0.5)

    def test_entry_must_exist(self):
        builder = ProgramBuilder("p")
        main = builder.add_module("main.exe", ModuleKind.EXECUTABLE)
        builder.add_block(main)
        builder._program.entry_block = 999
        with pytest.raises(WorkloadError):
            builder.finish()
