"""Unit tests for basic blocks, modules, and the address space."""

from __future__ import annotations

import pytest

from repro.errors import RuntimeStateError
from repro.isa.blocks import BasicBlock
from repro.isa.instructions import conditional_branch, ret, straightline
from repro.isa.modules import AddressSpace, Module, ModuleKind


def block(block_id=0, module_id=0, address=0, body=3, terminator=None):
    instructions = [straightline() for _ in range(body)]
    if terminator is not None:
        instructions.append(terminator)
    return BasicBlock(
        block_id=block_id,
        module_id=module_id,
        address=address,
        instructions=instructions,
    )


class TestBasicBlock:
    def test_size_is_sum_of_instruction_sizes(self):
        b = block(body=4)
        assert b.size == 4 * 3  # four ALU instructions of 3 bytes

    def test_terminator_detection(self):
        b = block(terminator=conditional_branch(5, backward=True))
        assert b.terminator is not None
        assert b.ends_in_backward_branch
        assert not b.ends_in_indirect

    def test_fallthrough_block(self):
        b = block()
        assert b.terminator is None
        assert not b.ends_in_backward_branch

    def test_indirect_terminator(self):
        b = block(terminator=ret())
        assert b.ends_in_indirect

    def test_mid_block_transfer_rejected(self):
        with pytest.raises(ValueError):
            BasicBlock(
                block_id=0,
                module_id=0,
                address=0,
                instructions=[conditional_branch(1, backward=False), straightline()],
            )

    def test_end_address(self):
        b = block(address=100, body=2)
        assert b.end_address == 106


class TestAddressSpace:
    def make_module(self, module_id=0, size=0x2000):
        return Module(
            module_id=module_id,
            name=f"m{module_id}.dll",
            kind=ModuleKind.PLUGIN_DLL,
            code_size=size,
            unloadable=True,
        )

    def test_map_assigns_address(self):
        space = AddressSpace()
        module = self.make_module()
        base = space.map(module)
        assert module.loaded
        assert module.base_address == base

    def test_double_map_rejected(self):
        space = AddressSpace()
        module = self.make_module()
        space.map(module)
        with pytest.raises(RuntimeStateError):
            space.map(module)

    def test_unmap_releases(self):
        space = AddressSpace()
        module = self.make_module()
        space.map(module)
        space.unmap(module)
        assert not module.loaded
        with pytest.raises(RuntimeStateError):
            space.unmap(module)

    def test_released_range_is_reused(self):
        """Address reuse is why stale code-cache entries are dangerous
        (Section 3.4): a new module can land where the old one was."""
        space = AddressSpace()
        first = self.make_module(0)
        base = space.map(first)
        space.unmap(first)
        second = self.make_module(1, size=0x1000)  # smaller: first fit
        assert space.map(second) == base

    def test_distinct_live_modules_do_not_overlap(self):
        space = AddressSpace()
        modules = [self.make_module(i, size=0x1000 * (i + 1)) for i in range(5)]
        for module in modules:
            space.map(module)
        ranges = sorted(space.range_of(m.module_id) for m in modules)
        for (base_a, size_a), (base_b, _) in zip(ranges, ranges[1:]):
            assert base_a + size_a <= base_b

    def test_live_modules_listing(self):
        space = AddressSpace()
        a, b = self.make_module(0), self.make_module(1)
        space.map(a)
        space.map(b)
        space.unmap(a)
        assert space.live_modules == [1]

    def test_alignment_validation(self):
        with pytest.raises(ValueError):
            AddressSpace(alignment=0x1001)
