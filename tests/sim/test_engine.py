"""Unit tests for the execution engine and session scripts."""

from __future__ import annotations

import pytest

from repro.errors import RuntimeStateError, WorkloadError
from repro.isa.modules import ModuleKind
from repro.isa.program import ProgramBuilder, tiny_loop_program
from repro.sim.engine import ExecutionEngine, collect_events
from repro.sim.events import (
    BlockExecuted,
    ModuleLoaded,
    ModuleUnloaded,
    ProgramEnd,
)
from repro.sim.phases import LoadModule, Segment, SessionScript, UnloadModule


def run_engine(program, script, seed=0):
    return collect_events(ExecutionEngine(program, script, seed=seed))


class TestSegments:
    def test_executes_requested_block_count(self):
        program = tiny_loop_program(iterations_mean=10_000.0)
        script = SessionScript().add(Segment(entry_block=program.entry_block, n_blocks=50))
        events = run_engine(program, script)
        blocks = [e for e in events if isinstance(e, BlockExecuted)]
        assert len(blocks) == 50

    def test_ends_with_program_end_carrying_final_time(self):
        program = tiny_loop_program()
        script = SessionScript().add(Segment(entry_block=program.entry_block, n_blocks=20))
        events = run_engine(program, script)
        assert isinstance(events[-1], ProgramEnd)
        assert events[-1].time == events[-2].time

    def test_time_is_monotone(self):
        program = tiny_loop_program()
        script = SessionScript().add(Segment(entry_block=program.entry_block, n_blocks=100))
        events = run_engine(program, script)
        times = [e.time for e in events]
        assert times == sorted(times)

    def test_terminal_block_ends_segment_early(self):
        builder = ProgramBuilder("p")
        main = builder.add_module("main.exe", ModuleKind.EXECUTABLE)
        a = builder.add_block(main)
        b = builder.add_block(main)  # terminal (no successors)
        builder.connect(a, b, 1.0)
        builder.set_entry(a)
        program = builder.finish()
        script = SessionScript().add(Segment(entry_block=a.block_id, n_blocks=100))
        events = run_engine(program, script)
        blocks = [e for e in events if isinstance(e, BlockExecuted)]
        assert [e.block_id for e in blocks] == [a.block_id, b.block_id]

    def test_deterministic_given_seed(self):
        program = tiny_loop_program(iterations_mean=5.0)
        script = SessionScript().add(Segment(entry_block=program.entry_block, n_blocks=200))
        first = run_engine(tiny_loop_program(iterations_mean=5.0), script, seed=3)
        second = run_engine(tiny_loop_program(iterations_mean=5.0), script, seed=3)
        assert first == second

    def test_different_seeds_diverge(self):
        script_blocks = 300
        program_a = tiny_loop_program(iterations_mean=5.0)
        program_b = tiny_loop_program(iterations_mean=5.0)
        script = SessionScript().add(
            Segment(entry_block=program_a.entry_block, n_blocks=script_blocks)
        )
        a = run_engine(program_a, script, seed=1)
        b = run_engine(program_b, script, seed=2)
        assert a != b


class TestModuleSteps:
    def build_dll_program(self):
        builder = ProgramBuilder("p")
        main = builder.add_module("main.exe", ModuleKind.EXECUTABLE)
        dll = builder.add_module(
            "x.dll", ModuleKind.PLUGIN_DLL, unloadable=True, loaded=False
        )
        entry = builder.add_block(main)
        handler = builder.add_block(dll)
        builder.set_entry(entry)
        return builder.finish(), entry, handler, dll

    def test_load_and_unload_events(self):
        program, entry, handler, dll = self.build_dll_program()
        script = SessionScript()
        script.add(Segment(entry_block=entry.block_id, n_blocks=1))
        script.add(LoadModule(module_id=dll.module_id))
        script.add(Segment(entry_block=handler.block_id, n_blocks=1))
        script.add(UnloadModule(module_id=dll.module_id))
        events = run_engine(program, script)
        kinds = [type(e).__name__ for e in events]
        assert kinds == [
            "BlockExecuted", "ModuleLoaded", "BlockExecuted",
            "ModuleUnloaded", "ProgramEnd",
        ]

    def test_executing_unloaded_module_raises(self):
        program, entry, handler, dll = self.build_dll_program()
        script = SessionScript().add(Segment(entry_block=handler.block_id, n_blocks=1))
        with pytest.raises(RuntimeStateError):
            run_engine(program, script)


class TestScriptValidation:
    def test_segment_needs_positive_blocks(self):
        with pytest.raises(WorkloadError):
            Segment(entry_block=0, n_blocks=0)

    def test_total_blocks(self):
        script = SessionScript()
        script.add(Segment(entry_block=0, n_blocks=10))
        script.add(LoadModule(module_id=1))
        script.add(Segment(entry_block=0, n_blocks=5))
        assert script.total_blocks == 15

    def test_engine_rejects_bad_instruction_rate(self):
        program = tiny_loop_program()
        with pytest.raises(ValueError):
            ExecutionEngine(program, SessionScript(), instructions_per_block=0)
