"""Deterministic multi-process log interleaving."""

from __future__ import annotations

import hashlib

import pytest

from repro.errors import ConfigError
from repro.sim.interleave import DEFAULT_QUANTUM, SCHEDULES, interleave_logs
from repro.tracelog.records import EndOfLog, TraceAccess, TraceCreate, TraceLog


def _log(name: str, n_records: int, stride: int = 10) -> TraceLog:
    log = TraceLog(benchmark=name, duration_seconds=1.0, code_footprint=1000)
    log.append(TraceCreate(time=0, trace_id=0, size=50, module_id=0))
    for i in range(1, n_records):
        log.append(TraceAccess(time=i * stride, trace_id=0))
    log.append(EndOfLog(time=n_records * stride))
    return log


def golden_logs() -> list[TraceLog]:
    """The fixed four-process mix the schedule digests are pinned on
    (also replayed by the fleet interleaver's compatibility tests)."""
    return [
        _log("a", 37, stride=7),
        _log("b", 11, stride=13),
        _log("c", 53, stride=5),
        _log("d", 23, stride=11),
    ]


#: sha256 over the "process:global_time;" stream of
#: ``interleave_logs(golden_logs(), schedule, seed=9, quantum=5)``.
#: These freeze the schedule semantics: any reordering — however
#: plausible — changes every multi-process table, so it must show up
#: here first.  The fleet interleaver must reproduce the same stream.
GOLDEN_SCHEDULE_DIGESTS = {
    "round-robin": (
        "aa41c643f05b62b5aac3903afcb8f57cf73b073ee9b2aa9d4779cc8e0ac38aa0"
    ),
    "random": (
        "0d672240395be74fa6687dd35d34dc67929e94c262769cbe1180d607412a8dfd"
    ),
}


def schedule_digest(stream) -> str:
    """Digest of a (process, global_time) schedule stream."""
    digest = hashlib.sha256()
    for process, global_time in stream:
        digest.update(f"{process}:{global_time};".encode())
    return digest.hexdigest()


class TestGoldenSchedule:
    @pytest.mark.parametrize("schedule", SCHEDULES)
    def test_schedule_semantics_are_frozen(self, schedule):
        stream = (
            (s.process, s.global_time)
            for s in interleave_logs(
                golden_logs(), schedule=schedule, seed=9, quantum=5
            )
        )
        assert schedule_digest(stream) == GOLDEN_SCHEDULE_DIGESTS[schedule]


class TestCompleteness:
    @pytest.mark.parametrize("schedule", SCHEDULES)
    def test_every_record_appears_exactly_once(self, schedule):
        logs = [_log("a", 13), _log("b", 5), _log("c", 29)]
        scheduled = list(interleave_logs(logs, schedule=schedule, seed=3))
        assert len(scheduled) == sum(len(log.records) for log in logs)
        for process, log in enumerate(logs):
            mine = [s.record for s in scheduled if s.process == process]
            assert mine == log.records  # per-process order preserved

    @pytest.mark.parametrize("schedule", SCHEDULES)
    def test_global_time_is_monotone(self, schedule):
        logs = [_log("a", 20, stride=7), _log("b", 20, stride=13)]
        times = [
            s.global_time
            for s in interleave_logs(logs, schedule=schedule, seed=5)
        ]
        assert times == sorted(times)

    def test_single_log_passthrough(self):
        log = _log("solo", 8)
        scheduled = list(interleave_logs([log]))
        assert [s.record for s in scheduled] == log.records
        assert all(s.process == 0 for s in scheduled)
        # One process: global time equals the log's own clock.
        assert scheduled[-1].global_time == log.records[-1].time


class TestDeterminism:
    def test_round_robin_alternates_by_quantum(self):
        logs = [_log("a", 10), _log("b", 10)]
        scheduled = list(interleave_logs(logs, quantum=3))
        assert [s.process for s in scheduled[:6]] == [0, 0, 0, 1, 1, 1]

    def test_random_schedule_is_seed_reproducible(self):
        logs = [_log("a", 30), _log("b", 30), _log("c", 30)]

        def order(seed):
            return [
                s.process
                for s in interleave_logs(
                    logs, schedule="random", seed=seed, quantum=4
                )
            ]

        assert order(1) == order(1)
        assert order(1) != order(2)  # seed actually matters

    def test_exhausted_logs_drop_out(self):
        logs = [_log("short", 2), _log("long", 40)]
        tail = list(interleave_logs(logs, quantum=4))[-20:]
        assert all(s.process == 1 for s in tail)


class TestValidation:
    def test_unknown_schedule(self):
        with pytest.raises(ConfigError, match="schedule"):
            next(interleave_logs([_log("a", 3)], schedule="fifo"))

    def test_empty_log_list(self):
        with pytest.raises(ConfigError, match="at least one"):
            next(interleave_logs([]))

    def test_non_positive_quantum(self):
        with pytest.raises(ConfigError, match="quantum"):
            next(interleave_logs([_log("a", 3)], quantum=0))

    def test_default_quantum_is_positive(self):
        assert DEFAULT_QUANTUM >= 1
