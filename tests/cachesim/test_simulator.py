"""Unit tests for the log-replay simulator."""

from __future__ import annotations

import pytest

from repro.cachesim.simulator import CacheSimulator, simulate_log
from repro.core.config import GenerationalConfig
from repro.core.generational import GenerationalCacheManager
from repro.core.unified import UnifiedCacheManager
from repro.errors import LogFormatError
from repro.overhead.model import TABLE2_COSTS
from repro.tracelog.records import (
    EndOfLog,
    ModuleUnmap,
    TraceAccess,
    TraceCreate,
    TraceLog,
    TracePin,
    TraceUnpin,
)

from tests.conftest import make_churn_log


def log_of(records, benchmark="t") -> TraceLog:
    log = TraceLog(benchmark=benchmark, duration_seconds=1.0, code_footprint=1000)
    for record in records:
        log.append(record)
    return log


class TestBasicReplay:
    def test_access_after_create_is_hit(self):
        log = log_of([
            TraceCreate(time=1, trace_id=0, size=100, module_id=0),
            TraceAccess(time=2, trace_id=0),
            EndOfLog(time=3),
        ])
        result = simulate_log(log, UnifiedCacheManager(1000))
        assert result.stats.accesses == 1
        assert result.stats.hits == 1
        assert result.stats.misses == 0
        assert result.stats.creations == 1

    def test_creation_is_not_a_miss(self, small_log):
        result = simulate_log(small_log, UnifiedCacheManager(10_000))
        assert result.stats.misses == 0
        assert result.stats.creations == 6

    def test_repeat_expansion(self):
        log = log_of([
            TraceCreate(time=1, trace_id=0, size=100, module_id=0),
            TraceAccess(time=2, trace_id=0, repeat=10),
            EndOfLog(time=3),
        ])
        result = simulate_log(log, UnifiedCacheManager(1000))
        assert result.stats.accesses == 10
        assert result.stats.hits == 10

    def test_conflict_miss_regenerates_then_hits(self):
        # Cache of 100 bytes holds exactly one trace.
        log = log_of([
            TraceCreate(time=1, trace_id=0, size=100, module_id=0),
            TraceCreate(time=2, trace_id=1, size=100, module_id=0),
            TraceAccess(time=3, trace_id=0, repeat=5),
            EndOfLog(time=4),
        ])
        result = simulate_log(log, UnifiedCacheManager(100))
        assert result.stats.misses == 1
        assert result.stats.hits == 4

    def test_access_before_create_raises(self):
        log = TraceLog(benchmark="bad", duration_seconds=1.0, code_footprint=10)
        log.records = [TraceAccess(time=1, trace_id=0)]
        simulator = CacheSimulator(UnifiedCacheManager(1000))
        with pytest.raises(LogFormatError):
            simulator.run(log)

    def test_hits_plus_misses_equals_accesses(self, churn_log):
        result = simulate_log(churn_log, UnifiedCacheManager(2000))
        result.stats.check_invariants()
        assert result.stats.hits + result.stats.misses == result.stats.accesses


class TestUnmapReplay:
    def test_unmap_deletes_and_counts(self, small_log):
        result = simulate_log(small_log, UnifiedCacheManager(10_000))
        assert result.stats.unmap_evictions == 1

    def test_unmap_of_absent_module_is_noop(self):
        log = log_of([
            TraceCreate(time=1, trace_id=0, size=100, module_id=0),
            ModuleUnmap(time=2, module_id=9),
            EndOfLog(time=3),
        ])
        result = simulate_log(log, UnifiedCacheManager(1000))
        assert result.stats.unmap_evictions == 0


class TestPinReplay:
    def test_pin_protects_trace_through_churn(self):
        records = [
            TraceCreate(time=1, trace_id=0, size=100, module_id=0),
            TracePin(time=2, trace_id=0),
        ]
        time = 3
        for trace_id in range(1, 10):
            records.append(
                TraceCreate(time=time, trace_id=trace_id, size=100, module_id=0)
            )
            time += 1
        records.append(TraceAccess(time=time, trace_id=0))
        records.append(EndOfLog(time=time + 1))
        result = simulate_log(log_of(records), UnifiedCacheManager(300))
        # Trace 0 was pinned, so its final access must be a hit.
        assert result.stats.misses == 0

    def test_pending_pin_applies_on_reinsert(self):
        records = [
            TraceCreate(time=1, trace_id=0, size=100, module_id=0),
            TraceCreate(time=2, trace_id=1, size=100, module_id=0),  # full
            TraceCreate(time=3, trace_id=2, size=100, module_id=0),  # evicts 0
            TracePin(time=4, trace_id=0),  # 0 absent; pin is pending
            TraceAccess(time=5, trace_id=0),  # miss -> reinsert, pin applies
            TraceCreate(time=6, trace_id=3, size=100, module_id=0),
            TraceAccess(time=7, trace_id=0),  # must still be resident
            EndOfLog(time=8),
        ]
        result = simulate_log(log_of(records), UnifiedCacheManager(200))
        assert result.stats.misses == 1  # only the explicit regeneration

    def test_unpin_releases(self):
        records = [
            TraceCreate(time=1, trace_id=0, size=100, module_id=0),
            TracePin(time=2, trace_id=0),
            TraceUnpin(time=3, trace_id=0),
            TraceCreate(time=4, trace_id=1, size=100, module_id=0),
            TraceAccess(time=5, trace_id=0),
            EndOfLog(time=6),
        ]
        result = simulate_log(log_of(records), UnifiedCacheManager(100))
        assert result.stats.misses == 1


class TestDeterminismAndSharing:
    def test_same_log_same_stats(self, churn_log):
        a = simulate_log(churn_log, UnifiedCacheManager(2000))
        b = simulate_log(churn_log, UnifiedCacheManager(2000))
        assert a.stats == b.stats

    def test_generational_replay_consistency(self, churn_log, default_config):
        a = simulate_log(
            churn_log, GenerationalCacheManager(2000, default_config)
        )
        b = simulate_log(
            churn_log, GenerationalCacheManager(2000, default_config)
        )
        assert a.stats == b.stats
        assert a.stats.promotions == b.stats.promotions

    def test_overhead_account_attached(self, churn_log):
        with_model = simulate_log(
            churn_log, UnifiedCacheManager(2000), TABLE2_COSTS
        )
        without = simulate_log(churn_log, UnifiedCacheManager(2000))
        assert with_model.overhead_instructions is not None
        assert with_model.overhead_instructions > 0
        assert without.overhead_instructions is None

    def test_result_carries_final_state(self, churn_log, default_config):
        result = simulate_log(
            make_churn_log(n_traces=40),
            GenerationalCacheManager(2000, default_config),
        )
        assert set(result.final_fragmentation) == {
            "nursery", "probation", "persistent",
        }
        for value in result.final_fragmentation.values():
            assert 0.0 <= value <= 1.0
        for value in result.final_occupancy.values():
            assert 0.0 <= value <= 1.0
