"""Unit tests for cache statistics containers."""

from __future__ import annotations

import pytest

from repro.cachesim.stats import CacheStats, SimulationResult


class TestCacheStats:
    def test_rates_zero_without_accesses(self):
        stats = CacheStats()
        assert stats.miss_rate == 0.0
        assert stats.hit_rate == 0.0

    def test_rates(self):
        stats = CacheStats(accesses=100, hits=90, misses=10)
        assert stats.miss_rate == pytest.approx(0.1)
        assert stats.hit_rate == pytest.approx(0.9)

    def test_record_hit_tracks_per_cache(self):
        stats = CacheStats()
        stats.accesses = 5
        stats.record_hit("nursery", 3)
        stats.record_hit("persistent", 1)
        stats.misses = 1
        assert stats.hits == 4
        assert stats.hits_by_cache == {"nursery": 3, "persistent": 1}
        stats.check_invariants()

    def test_invariant_violation_detected(self):
        stats = CacheStats(accesses=10, hits=3, misses=3)
        with pytest.raises(AssertionError):
            stats.check_invariants()


class TestSimulationResult:
    def test_miss_rate_passthrough(self):
        result = SimulationResult(
            benchmark="x",
            manager_name="unified",
            stats=CacheStats(accesses=10, hits=8, misses=2),
        )
        assert result.miss_rate == pytest.approx(0.2)
