"""Unit tests for the byte arena."""

from __future__ import annotations

import pytest

from repro.cachesim.arena import Arena
from repro.errors import (
    ArenaBoundsError,
    ArenaOverlapError,
    DuplicateTraceError,
    UnknownTraceError,
)


class TestPlacement:
    def test_place_and_lookup(self):
        arena = Arena(1000)
        placement = arena.place(1, 0, 100)
        assert placement.start == 0
        assert placement.end == 100
        assert 1 in arena
        assert arena.placement_of(1).size == 100

    def test_used_and_free_bytes(self):
        arena = Arena(1000)
        arena.place(1, 0, 100)
        arena.place(2, 100, 300)
        assert arena.used_bytes == 400
        assert arena.free_bytes == 600
        assert arena.n_traces == 2

    def test_place_rejects_overlap(self):
        arena = Arena(1000)
        arena.place(1, 100, 100)
        with pytest.raises(ArenaOverlapError):
            arena.place(2, 150, 100)

    def test_place_rejects_partial_overlap_from_below(self):
        arena = Arena(1000)
        arena.place(1, 100, 100)
        with pytest.raises(ArenaOverlapError):
            arena.place(2, 50, 60)

    def test_place_rejects_out_of_bounds(self):
        arena = Arena(1000)
        with pytest.raises(ArenaBoundsError):
            arena.place(1, 950, 100)
        with pytest.raises(ArenaBoundsError):
            arena.place(1, -10, 50)

    def test_place_rejects_zero_size(self):
        arena = Arena(1000)
        with pytest.raises(ArenaBoundsError):
            arena.place(1, 0, 0)

    def test_place_rejects_duplicate_trace(self):
        arena = Arena(1000)
        arena.place(1, 0, 100)
        with pytest.raises(DuplicateTraceError):
            arena.place(1, 500, 100)

    def test_exactly_adjacent_placements_are_legal(self):
        arena = Arena(1000)
        arena.place(1, 0, 100)
        arena.place(2, 100, 100)  # no overlap: [0,100) and [100,200)
        assert arena.used_bytes == 200

    def test_capacity_must_be_positive(self):
        with pytest.raises(ArenaBoundsError):
            Arena(0)


class TestRemoval:
    def test_remove_returns_placement(self):
        arena = Arena(1000)
        arena.place(1, 40, 100)
        placement = arena.remove(1)
        assert placement.start == 40
        assert 1 not in arena
        assert arena.used_bytes == 0

    def test_remove_unknown_raises(self):
        arena = Arena(1000)
        with pytest.raises(UnknownTraceError):
            arena.remove(99)

    def test_clear_returns_all_in_address_order(self):
        arena = Arena(1000)
        arena.place(2, 500, 100)
        arena.place(1, 0, 100)
        removed = arena.clear()
        assert [p.trace_id for p in removed] == [1, 2]
        assert arena.n_traces == 0
        assert arena.free_bytes == 1000


class TestOverlappingQuery:
    def test_finds_placement_extending_into_window(self):
        arena = Arena(1000)
        arena.place(1, 0, 100)
        hits = arena.overlapping(50, 60)
        assert [p.trace_id for p in hits] == [1]

    def test_finds_placements_starting_inside_window(self):
        arena = Arena(1000)
        arena.place(1, 100, 50)
        arena.place(2, 200, 50)
        hits = arena.overlapping(90, 210)
        assert [p.trace_id for p in hits] == [1, 2]

    def test_excludes_adjacent_placements(self):
        arena = Arena(1000)
        arena.place(1, 0, 100)
        arena.place(2, 200, 100)
        assert arena.overlapping(100, 200) == []

    def test_empty_window(self):
        arena = Arena(1000)
        arena.place(1, 0, 100)
        assert arena.overlapping(50, 50) == []

    def test_no_double_count_at_window_start(self):
        arena = Arena(1000)
        arena.place(1, 100, 50)
        hits = arena.overlapping(100, 200)
        assert [p.trace_id for p in hits] == [1]


class TestHolesAndFragmentation:
    def test_empty_arena_one_hole(self):
        arena = Arena(1000)
        assert arena.holes() == [(0, 1000)]
        assert arena.largest_hole() == 1000
        assert arena.fragmentation() == 0.0

    def test_full_arena_no_holes(self):
        arena = Arena(100)
        arena.place(1, 0, 100)
        assert arena.holes() == []
        assert arena.fragmentation() == 0.0

    def test_middle_hole(self):
        arena = Arena(300)
        arena.place(1, 0, 100)
        arena.place(2, 200, 100)
        assert arena.holes() == [(100, 200)]

    def test_fragmentation_two_equal_holes(self):
        arena = Arena(400)
        arena.place(1, 100, 100)
        arena.place(2, 300, 100)
        # Free: [0,100) and [200,300) -> largest 100 of 200 free.
        assert arena.fragmentation() == pytest.approx(0.5)

    def test_first_fit(self):
        arena = Arena(400)
        arena.place(1, 0, 100)
        arena.place(2, 150, 100)
        assert arena.first_fit(50) == 100
        assert arena.first_fit(100) == 250
        assert arena.first_fit(200) is None

    def test_invariants_hold_through_mutation(self):
        arena = Arena(500)
        arena.place(1, 0, 100)
        arena.place(2, 100, 100)
        arena.place(3, 300, 100)
        arena.remove(2)
        arena.place(4, 120, 60)
        arena.check_invariants()
        assert arena.used_bytes == 260
