"""Unit tests for trace-log records and the TraceLog container."""

from __future__ import annotations

import pytest

from repro.errors import LogOrderError
from repro.tracelog.records import (
    EndOfLog,
    ModuleUnmap,
    TraceAccess,
    TraceCreate,
    TraceLog,
    TracePin,
    TraceUnpin,
)


def empty_log() -> TraceLog:
    return TraceLog(benchmark="t", duration_seconds=1.0, code_footprint=100)


class TestAppendOrdering:
    def test_appends_in_time_order(self):
        log = empty_log()
        log.append(TraceCreate(time=1, trace_id=0, size=10, module_id=0))
        log.append(TraceAccess(time=2, trace_id=0))
        assert len(log.records) == 2

    def test_equal_times_allowed(self):
        log = empty_log()
        log.append(TraceCreate(time=5, trace_id=0, size=10, module_id=0))
        log.append(TraceAccess(time=5, trace_id=0))

    def test_rejects_time_going_backwards(self):
        log = empty_log()
        log.append(TraceCreate(time=10, trace_id=0, size=10, module_id=0))
        with pytest.raises(LogOrderError):
            log.append(TraceAccess(time=9, trace_id=0))


class TestDerivedProperties:
    def test_end_time_from_end_record(self, small_log):
        assert small_log.end_time == 200

    def test_end_time_falls_back_to_last_record(self):
        log = empty_log()
        log.append(TraceCreate(time=7, trace_id=0, size=10, module_id=0))
        assert log.end_time == 7

    def test_empty_log_end_time_zero(self):
        assert empty_log().end_time == 0

    def test_counts(self, small_log):
        assert small_log.n_traces == 6
        assert small_log.total_trace_bytes == 100 + 150 + 120 + 200 + 90 + 110
        assert small_log.n_accesses == 3 + 1 + 1 + 2 + 1

    def test_creates_in_order(self, small_log):
        assert [c.trace_id for c in small_log.creates()] == [0, 1, 2, 3, 4, 5]


class TestValidation:
    def test_small_log_validates(self, small_log):
        small_log.validate()

    def test_access_before_create_rejected(self):
        log = empty_log()
        log.records = [
            TraceAccess(time=1, trace_id=9),
        ]
        with pytest.raises(LogOrderError):
            log.validate()

    def test_pin_of_unknown_trace_rejected(self):
        log = empty_log()
        log.records = [TracePin(time=1, trace_id=3)]
        with pytest.raises(LogOrderError):
            log.validate()

    def test_unpin_of_unknown_trace_rejected(self):
        log = empty_log()
        log.records = [TraceUnpin(time=1, trace_id=3)]
        with pytest.raises(LogOrderError):
            log.validate()

    def test_nonpositive_size_rejected(self):
        log = empty_log()
        log.records = [TraceCreate(time=1, trace_id=0, size=0, module_id=0)]
        with pytest.raises(LogOrderError):
            log.validate()

    def test_nonpositive_repeat_rejected(self):
        log = empty_log()
        log.records = [
            TraceCreate(time=1, trace_id=0, size=10, module_id=0),
            TraceAccess(time=2, trace_id=0, repeat=0),
        ]
        with pytest.raises(LogOrderError):
            log.validate()

    def test_unordered_records_rejected(self):
        log = empty_log()
        log.records = [
            TraceCreate(time=10, trace_id=0, size=10, module_id=0),
            TraceCreate(time=5, trace_id=1, size=10, module_id=0),
        ]
        with pytest.raises(LogOrderError):
            log.validate()

    def test_unmap_needs_no_known_traces(self):
        log = empty_log()
        log.records = [ModuleUnmap(time=1, module_id=5), EndOfLog(time=2)]
        log.validate()
