"""Unit tests for log summary statistics."""

from __future__ import annotations

import pytest

from repro.tracelog.records import (
    EndOfLog,
    ModuleUnmap,
    TraceAccess,
    TraceCreate,
    TraceLog,
)
from repro.tracelog.stats import summarize_log


class TestSummarize:
    def test_small_log_counts(self, small_log):
        stats = summarize_log(small_log)
        assert stats.n_traces == 6
        assert stats.total_trace_bytes == 770
        assert stats.n_accesses == 8
        assert stats.n_unmaps == 1
        assert stats.end_time == 200

    def test_unmapped_bytes_counts_traces_created_before_unmap(self, small_log):
        stats = summarize_log(small_log)
        # Only trace 2 (120 B, module 1) existed when module 1 unmapped.
        assert stats.unmapped_trace_bytes == 120
        assert stats.unmapped_n_traces == 1
        assert stats.unmapped_fraction == pytest.approx(120 / 770)

    def test_median_trace_size(self, small_log):
        stats = summarize_log(small_log)
        # Sizes: 90, 100, 110, 120, 150, 200 -> median (110+120)/2.
        assert stats.median_trace_size == pytest.approx(115.0)

    def test_insertion_rate(self, small_log):
        stats = summarize_log(small_log)
        assert stats.insertion_rate_bytes_per_second == pytest.approx(770.0)

    def test_empty_log(self):
        log = TraceLog(benchmark="e", duration_seconds=2.0, code_footprint=10)
        stats = summarize_log(log)
        assert stats.n_traces == 0
        assert stats.unmapped_fraction == 0.0
        assert stats.median_trace_size == 0.0

    def test_trace_created_after_unmap_not_counted(self):
        log = TraceLog(benchmark="x", duration_seconds=1.0, code_footprint=10)
        log.append(TraceCreate(time=1, trace_id=0, size=100, module_id=5))
        log.append(ModuleUnmap(time=2, module_id=5))
        log.append(TraceCreate(time=3, trace_id=1, size=100, module_id=5))
        log.append(EndOfLog(time=4))
        stats = summarize_log(log)
        assert stats.unmapped_trace_bytes == 100

    def test_double_unmap_counts_each_generation(self):
        log = TraceLog(benchmark="x", duration_seconds=1.0, code_footprint=10)
        log.append(TraceCreate(time=1, trace_id=0, size=100, module_id=5))
        log.append(ModuleUnmap(time=2, module_id=5))
        log.append(TraceCreate(time=3, trace_id=1, size=50, module_id=5))
        log.append(ModuleUnmap(time=4, module_id=5))
        log.append(EndOfLog(time=5))
        stats = summarize_log(log)
        assert stats.unmapped_trace_bytes == 150
        assert stats.n_unmaps == 2

    def test_repeats_expand_in_access_count(self):
        log = TraceLog(benchmark="x", duration_seconds=1.0, code_footprint=10)
        log.append(TraceCreate(time=1, trace_id=0, size=100, module_id=0))
        log.append(TraceAccess(time=2, trace_id=0, repeat=17))
        stats = summarize_log(log)
        assert stats.n_accesses == 17
