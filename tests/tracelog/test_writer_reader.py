"""Round-trip and format tests for the log writer/reader."""

from __future__ import annotations

import pytest

from repro.errors import LogFormatError
from repro.tracelog.reader import loads_log, parse_lines, read_log
from repro.tracelog.records import (
    EndOfLog,
    TraceAccess,
    TraceCreate,
    TraceLog,
)
from repro.tracelog.writer import dumps_log, format_record, write_log


class TestRoundTrip:
    def test_small_log_round_trips(self, small_log):
        text = dumps_log(small_log)
        parsed = loads_log(text)
        assert parsed.benchmark == small_log.benchmark
        assert parsed.duration_seconds == small_log.duration_seconds
        assert parsed.code_footprint == small_log.code_footprint
        assert parsed.records == small_log.records

    def test_file_round_trip(self, small_log, tmp_path):
        path = tmp_path / "log.txt"
        write_log(small_log, path)
        parsed = read_log(path)
        assert parsed.records == small_log.records

    def test_repeat_default_omittable(self):
        parsed = parse_lines(
            [
                "# repro-tracelog v1",
                "# benchmark=x duration=1.0 footprint=10",
                "C 1 0 10 0",
                "A 2 0",
            ]
        )
        assert parsed.records[1] == TraceAccess(time=2, trace_id=0, repeat=1)


class TestFormat:
    def test_format_create(self):
        record = TraceCreate(time=5, trace_id=7, size=242, module_id=3)
        assert format_record(record) == "C 5 7 242 3"

    def test_format_access_with_repeat(self):
        assert format_record(TraceAccess(time=9, trace_id=1, repeat=4)) == "A 9 1 4"

    def test_format_end(self):
        assert format_record(EndOfLog(time=100)) == "E 100"

    def test_blank_lines_and_comments_skipped(self):
        parsed = parse_lines(
            [
                "# repro-tracelog v1",
                "# benchmark=x duration=2.5 footprint=10",
                "",
                "# a comment",
                "C 1 0 10 0",
                "E 2",
            ]
        )
        assert len(parsed.records) == 2
        assert parsed.duration_seconds == 2.5


class TestErrors:
    def test_empty_input(self):
        with pytest.raises(LogFormatError):
            parse_lines([])

    def test_bad_magic(self):
        with pytest.raises(LogFormatError):
            parse_lines(["not a log", "# benchmark=x duration=1 footprint=1"])

    def test_missing_metadata(self):
        with pytest.raises(LogFormatError):
            parse_lines(["# repro-tracelog v1"])

    def test_metadata_missing_key(self):
        with pytest.raises(LogFormatError):
            parse_lines(["# repro-tracelog v1", "# benchmark=x duration=1"])

    def test_unknown_tag(self):
        with pytest.raises(LogFormatError):
            parse_lines(
                [
                    "# repro-tracelog v1",
                    "# benchmark=x duration=1 footprint=1",
                    "Z 1 2",
                ]
            )

    def test_malformed_record(self):
        with pytest.raises(LogFormatError):
            parse_lines(
                [
                    "# repro-tracelog v1",
                    "# benchmark=x duration=1 footprint=1",
                    "C 1 notanint 10 0",
                ]
            )

    def test_truncated_record(self):
        with pytest.raises(LogFormatError):
            parse_lines(
                [
                    "# repro-tracelog v1",
                    "# benchmark=x duration=1 footprint=1",
                    "C 1 0",
                ]
            )

    def test_validation_can_be_disabled(self):
        # Access to a never-created trace parses if validate=False.
        parsed = parse_lines(
            [
                "# repro-tracelog v1",
                "# benchmark=x duration=1 footprint=1",
                "A 1 99",
            ],
            validate=False,
        )
        assert len(parsed.records) == 1
        with pytest.raises(LogFormatError):
            parse_lines(
                [
                    "# repro-tracelog v1",
                    "# benchmark=x duration=1 footprint=1",
                    "A 1 99",
                ]
            )
