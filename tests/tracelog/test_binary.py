"""Tests for the binary trace-log format."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.errors import LogFormatError
from repro.tracelog.binary import (
    dumps_binary,
    loads_binary,
    read_binary_log,
    write_binary_log,
)
from repro.tracelog.writer import dumps_log

from tests.property.test_property_log_roundtrip import arbitrary_logs


class TestRoundTrip:
    def test_small_log(self, small_log):
        parsed = loads_binary(dumps_binary(small_log))
        assert parsed.records == small_log.records
        assert parsed.benchmark == small_log.benchmark
        assert parsed.duration_seconds == small_log.duration_seconds
        assert parsed.code_footprint == small_log.code_footprint

    def test_file_round_trip(self, small_log, tmp_path):
        path = tmp_path / "log.bin"
        write_binary_log(small_log, path)
        parsed = read_binary_log(path)
        assert parsed.records == small_log.records

    def test_smaller_than_text_for_real_logs(self):
        from repro.workloads import get_profile, synthesize_log

        log = synthesize_log(get_profile("gzip"), seed=3, scale=2.0)
        assert len(dumps_binary(log)) < len(dumps_log(log).encode("utf-8"))

    @given(arbitrary_logs())
    @settings(max_examples=60, deadline=None)
    def test_property_round_trip(self, log):
        parsed = loads_binary(dumps_binary(log))
        assert parsed.records == log.records
        assert parsed.benchmark == log.benchmark


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(LogFormatError):
            loads_binary(b"NOPE" + b"\x00" * 30)

    def test_truncated(self, small_log):
        data = dumps_binary(small_log)
        with pytest.raises(LogFormatError):
            loads_binary(data[:-3])

    def test_empty(self):
        with pytest.raises(LogFormatError):
            loads_binary(b"")

    def test_synthesized_workload_round_trips(self):
        from repro.workloads import get_profile, synthesize_log

        log = synthesize_log(get_profile("art"), seed=5, scale=2.0)
        parsed = loads_binary(dumps_binary(log))
        assert parsed.records == log.records


class TestStreaming:
    """Chunk-buffered dump_binary/load_binary match the in-memory API."""

    def test_stream_bytes_identical(self, small_log):
        import io

        from repro.tracelog.binary import dump_binary

        buffer = io.BytesIO()
        written = dump_binary(small_log, buffer)
        assert buffer.getvalue() == dumps_binary(small_log)
        assert written == len(buffer.getvalue())

    def test_tiny_chunks_round_trip(self, small_log):
        import io

        from repro.tracelog.binary import dump_binary, load_binary

        # chunk_size=1 forces a flush per record and a refill per byte:
        # the worst case for the buffering logic.
        buffer = io.BytesIO()
        dump_binary(small_log, buffer, chunk_size=1)
        assert buffer.getvalue() == dumps_binary(small_log)
        buffer.seek(0)
        parsed = load_binary(buffer, chunk_size=1)
        assert parsed.records == small_log.records
        assert parsed.benchmark == small_log.benchmark

    def test_truncated_stream(self, small_log):
        import io

        from repro.tracelog.binary import load_binary

        data = dumps_binary(small_log)
        with pytest.raises(LogFormatError):
            load_binary(io.BytesIO(data[:-3]))

    def test_invalid_chunk_size(self, small_log):
        import io

        from repro.tracelog.binary import dump_binary, load_binary

        with pytest.raises(LogFormatError):
            dump_binary(small_log, io.BytesIO(), chunk_size=0)
        with pytest.raises(LogFormatError):
            load_binary(io.BytesIO(b""), chunk_size=0)
