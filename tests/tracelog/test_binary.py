"""Tests for the binary trace-log format."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.errors import LogFormatError
from repro.tracelog.binary import (
    dumps_binary,
    loads_binary,
    read_binary_log,
    write_binary_log,
)
from repro.tracelog.writer import dumps_log

from tests.property.test_property_log_roundtrip import arbitrary_logs


class TestRoundTrip:
    def test_small_log(self, small_log):
        parsed = loads_binary(dumps_binary(small_log))
        assert parsed.records == small_log.records
        assert parsed.benchmark == small_log.benchmark
        assert parsed.duration_seconds == small_log.duration_seconds
        assert parsed.code_footprint == small_log.code_footprint

    def test_file_round_trip(self, small_log, tmp_path):
        path = tmp_path / "log.bin"
        write_binary_log(small_log, path)
        parsed = read_binary_log(path)
        assert parsed.records == small_log.records

    def test_smaller_than_text_for_real_logs(self):
        from repro.workloads import get_profile, synthesize_log

        log = synthesize_log(get_profile("gzip"), seed=3, scale=2.0)
        assert len(dumps_binary(log)) < len(dumps_log(log).encode("utf-8"))

    @given(arbitrary_logs())
    @settings(max_examples=60, deadline=None)
    def test_property_round_trip(self, log):
        parsed = loads_binary(dumps_binary(log))
        assert parsed.records == log.records
        assert parsed.benchmark == log.benchmark


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(LogFormatError):
            loads_binary(b"NOPE" + b"\x00" * 30)

    def test_truncated(self, small_log):
        data = dumps_binary(small_log)
        with pytest.raises(LogFormatError):
            loads_binary(data[:-3])

    def test_empty(self):
        with pytest.raises(LogFormatError):
            loads_binary(b"")

    def test_synthesized_workload_round_trips(self):
        from repro.workloads import get_profile, synthesize_log

        log = synthesize_log(get_profile("art"), seed=5, scale=2.0)
        parsed = loads_binary(dumps_binary(log))
        assert parsed.records == log.records
