"""The repro-lint command-line interface."""

from __future__ import annotations

import json

from repro.analysis.cli import main
from repro.analysis.core import REGISTRY


class TestReproLintCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main([str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_violations_exit_one(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import random\n")
        assert main([str(tmp_path)]) == 1
        assert "no-nondeterminism" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import random\n")
        assert main(["--format", "json", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] == 1

    def test_select_subset_of_rules(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import random\nrate == 0.5\n")
        assert main(["--select", "float-equality", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "float-equality" in out
        assert "no-nondeterminism" not in out

    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        assert main(["--select", "bogus", str(tmp_path)]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in REGISTRY:
            assert rule_id in out

    def test_single_file_target(self, tmp_path):
        target = tmp_path / "one.py"
        target.write_text("def f(xs=[]):\n    pass\n")
        assert main([str(target)]) == 1
