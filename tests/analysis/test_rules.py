"""Per-rule fixture tests: positive, negative, and suppressed snippets."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import Analyzer, make_rules

#: Default fake path — inside the package so every path-scoped rule
#: except policy-api considers it.
SIM_PATH = "src/repro/sim/fixture.py"
POLICY_PATH = "src/repro/policies/fixture.py"


def hits(source: str, rule_id: str, path: str = SIM_PATH) -> list[str]:
    """Rule ids reported by *rule_id*'s rule alone over *source*."""
    analyzer = Analyzer(make_rules([rule_id]))
    violations = analyzer.analyze_source(textwrap.dedent(source), path=path)
    return [v.rule_id for v in violations]


class TestNoNondeterminism:
    def test_import_random_flagged(self):
        assert hits("import random\n", "no-nondeterminism") == ["no-nondeterminism"]

    def test_from_import_flagged(self):
        assert hits("from datetime import datetime\n", "no-nondeterminism") == [
            "no-nondeterminism"
        ]

    def test_time_module_flagged(self):
        assert hits("import time\n", "no-nondeterminism") == ["no-nondeterminism"]

    def test_builtin_hash_flagged(self):
        assert hits("x = hash('label')\n", "no-nondeterminism") == [
            "no-nondeterminism"
        ]

    def test_repro_rand_is_fine(self):
        src = "from repro.rand import RandomStreams\nrng = RandomStreams(42)\n"
        assert hits(src, "no-nondeterminism") == []

    def test_method_named_hash_is_fine(self):
        assert hits("x = obj.hash()\n", "no-nondeterminism") == []

    def test_rand_module_is_exempt(self):
        assert (
            hits("import random\n", "no-nondeterminism", path="src/repro/rand.py")
            == []
        )

    def test_suppressed(self):
        src = "import random  # cachelint: disable=no-nondeterminism\n"
        assert hits(src, "no-nondeterminism") == []


class TestPolicyApi:
    GOOD = """
        class GoodCache(CodeCache):
            policy_name = "good"

            def __init__(self, capacity, name="cache"):
                super().__init__(capacity, name)

            def _allocate(self, trace):
                return 0, []
    """

    def test_conforming_policy_is_fine(self):
        assert hits(self.GOOD, "policy-api", path=POLICY_PATH) == []

    def test_missing_allocate_flagged(self):
        src = """
            class BadCache(CodeCache):
                policy_name = "bad"
        """
        assert hits(src, "policy-api", path=POLICY_PATH) == ["policy-api"]

    def test_missing_policy_name_flagged(self):
        src = """
            class BadCache(CodeCache):
                def _allocate(self, trace):
                    return 0, []
        """
        assert hits(src, "policy-api", path=POLICY_PATH) == ["policy-api"]

    def test_init_without_super_flagged(self):
        src = """
            class BadCache(CodeCache):
                policy_name = "bad"

                def __init__(self, capacity):
                    self.capacity = capacity

                def _allocate(self, trace):
                    return 0, []
        """
        assert hits(src, "policy-api", path=POLICY_PATH) == ["policy-api"]

    def test_transitive_subclass_checked(self):
        src = """
            class BaseCache(CodeCache):
                policy_name = "base"

                def _allocate(self, trace):
                    return 0, []

            class SubCache(BaseCache):
                def __init__(self, capacity):
                    self.capacity = capacity
        """
        assert hits(src, "policy-api", path=POLICY_PATH) == ["policy-api"]

    def test_outside_policies_dir_not_checked(self):
        src = """
            class FreeCache(CodeCache):
                pass
        """
        assert hits(src, "policy-api", path=SIM_PATH) == []

    def test_suppressed(self):
        src = """
            class BadCache(CodeCache):  # cachelint: disable=policy-api
                policy_name = "bad"
        """
        assert hits(src, "policy-api", path=POLICY_PATH) == []


class TestFloatEquality:
    def test_eq_float_literal_flagged(self):
        assert hits("ok = rate == 0.5\n", "float-equality") == ["float-equality"]

    def test_noteq_float_literal_flagged(self):
        assert hits("ok = 1.0 != rate\n", "float-equality") == ["float-equality"]

    def test_negative_literal_flagged(self):
        assert hits("ok = rate == -0.5\n", "float-equality") == ["float-equality"]

    def test_inequality_is_fine(self):
        assert hits("ok = rate <= 0.0\n", "float-equality") == []

    def test_int_literal_is_fine(self):
        assert hits("ok = count == 3\n", "float-equality") == []

    def test_suppressed(self):
        src = "ok = rate == 0.5  # cachelint: disable=float-equality\n"
        assert hits(src, "float-equality") == []


class TestBareExcept:
    def test_bare_except_flagged(self):
        src = """
            try:
                work()
            except:
                pass
        """
        assert hits(src, "bare-except") == ["bare-except"]

    def test_swallowed_exception_flagged(self):
        src = """
            try:
                work()
            except Exception:
                pass
        """
        assert hits(src, "bare-except") == ["bare-except"]

    def test_handled_exception_is_fine(self):
        src = """
            try:
                work()
            except ValueError as exc:
                raise ReproError(str(exc))
        """
        assert hits(src, "bare-except") == []

    def test_exception_with_real_body_is_fine(self):
        src = """
            try:
                work()
            except Exception as exc:
                log(exc)
                raise
        """
        assert hits(src, "bare-except") == []

    def test_suppressed_file_wide(self):
        src = """
            # cachelint: disable-file=bare-except
            try:
                work()
            except:
                pass
        """
        assert hits(src, "bare-except") == []


class TestUnitsHygiene:
    def test_raw_kb_flagged(self):
        assert hits("size = mb * 1024\n", "units-hygiene") == ["units-hygiene"]

    def test_raw_mb_flagged(self):
        assert hits("cap = 4 * 1048576\n", "units-hygiene") == ["units-hygiene"]

    def test_units_constants_are_fine(self):
        src = "from repro.units import KB\nsize = mb * KB\n"
        assert hits(src, "units-hygiene") == []

    def test_units_module_is_exempt(self):
        assert (
            hits("KB = 2 * 1024\n", "units-hygiene", path="src/repro/units.py")
            == []
        )

    def test_suppressed(self):
        src = "size = mb * 1024  # cachelint: disable=units-hygiene\n"
        assert hits(src, "units-hygiene") == []


class TestMutableDefault:
    def test_list_literal_flagged(self):
        assert hits("def f(xs=[]):\n    pass\n", "mutable-default") == [
            "mutable-default"
        ]

    def test_dict_call_flagged(self):
        assert hits("def f(m=dict()):\n    pass\n", "mutable-default") == [
            "mutable-default"
        ]

    def test_kwonly_default_flagged(self):
        assert hits("def f(*, xs={}):\n    pass\n", "mutable-default") == [
            "mutable-default"
        ]

    def test_none_default_is_fine(self):
        assert hits("def f(xs=None):\n    pass\n", "mutable-default") == []

    def test_tuple_default_is_fine(self):
        assert hits("def f(xs=()):\n    pass\n", "mutable-default") == []

    def test_suppressed(self):
        src = "def f(xs=[]):  # cachelint: disable=mutable-default\n    pass\n"
        assert hits(src, "mutable-default") == []


class TestEngineBehaviour:
    def test_syntax_error_reported_not_raised(self):
        analyzer = Analyzer()
        violations = analyzer.analyze_source("def broken(:\n", path=SIM_PATH)
        assert [v.rule_id for v in violations] == ["parse-error"]

    def test_disable_all_suppresses_everything(self):
        src = "import random  # cachelint: disable=all\n"
        assert hits(src, "no-nondeterminism") == []

    def test_unknown_rule_id_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            make_rules(["no-such-rule"])

    def test_multiple_rules_one_pass(self):
        src = "import random\ndef f(xs=[]):\n    ok = xs == 0.5\n"
        analyzer = Analyzer()
        found = {v.rule_id for v in analyzer.analyze_source(src, path=SIM_PATH)}
        assert {"no-nondeterminism", "mutable-default", "float-equality"} <= found


class TestNoRawConcurrency:
    def test_threading_flagged(self):
        assert hits("import threading\n", "no-raw-concurrency") == [
            "no-raw-concurrency"
        ]

    def test_multiprocessing_flagged(self):
        assert hits("import multiprocessing\n", "no-raw-concurrency") == [
            "no-raw-concurrency"
        ]

    def test_from_concurrent_flagged(self):
        src = "from concurrent.futures import ThreadPoolExecutor\n"
        assert hits(src, "no-raw-concurrency") == ["no-raw-concurrency"]

    def test_queue_flagged(self):
        assert hits("import queue\n", "no-raw-concurrency") == [
            "no-raw-concurrency"
        ]

    def test_service_package_is_exempt(self):
        assert (
            hits(
                "import multiprocessing\nimport threading\n",
                "no-raw-concurrency",
                path="src/repro/service/scheduler.py",
            )
            == []
        )

    def test_plain_imports_are_fine(self):
        assert hits("import json\nimport hashlib\n", "no-raw-concurrency") == []

    def test_suppressed(self):
        src = "import threading  # cachelint: disable=no-raw-concurrency\n"
        assert hits(src, "no-raw-concurrency") == []

    def test_cluster_package_is_exempt(self):
        assert (
            hits(
                "import asyncio\nimport threading\n",
                "no-raw-concurrency",
                path="src/repro/cluster/http.py",
            )
            == []
        )


class TestClusterApi:
    def test_asyncio_import_flagged_outside_cluster(self):
        assert hits("import asyncio\n", "cluster-api") == ["cluster-api"]

    def test_asyncio_from_import_flagged(self):
        src = "from asyncio import StreamReader\n"
        assert hits(src, "cluster-api") == ["cluster-api"]

    def test_asyncio_flagged_even_in_service_layer(self):
        # no-raw-concurrency admits asyncio in repro.service; this rule
        # tightens that to the cluster front end only.
        assert hits(
            "import asyncio\n",
            "cluster-api",
            path="src/repro/service/http.py",
        ) == ["cluster-api"]

    def test_event_bus_import_flagged_outside_cluster(self):
        src = "from repro.cluster.events import EventBus\n"
        assert hits(src, "cluster-api") == ["cluster-api"]

    def test_event_bus_module_import_flagged(self):
        assert hits("import repro.cluster.events\n", "cluster-api") == [
            "cluster-api"
        ]

    def test_cluster_package_is_exempt(self):
        src = "import asyncio\nfrom repro.cluster.events import EventBus\n"
        assert (
            hits(src, "cluster-api", path="src/repro/cluster/http.py") == []
        )

    def test_other_cluster_imports_are_fine(self):
        src = "from repro.cluster.shards import ClusterScheduler\n"
        assert hits(src, "cluster-api") == []

    def test_suppressed(self):
        src = "import asyncio  # cachelint: disable=cluster-api\n"
        assert hits(src, "cluster-api") == []


class TestSharedCacheApi:
    def test_module_import_flagged(self):
        assert hits("import repro.shared.cache\n", "shared-cache-api") == [
            "shared-cache-api"
        ]

    def test_from_module_import_flagged(self):
        src = "from repro.shared.cache import SHARED_PERSISTENT\n"
        assert hits(src, "shared-cache-api") == ["shared-cache-api"]

    def test_class_import_from_package_flagged(self):
        src = "from repro.shared import SharedPersistentCache\n"
        assert hits(src, "shared-cache-api") == ["shared-cache-api"]

    def test_direct_construction_flagged(self):
        src = "cache = SharedPersistentCache(arena)\n"
        assert hits(src, "shared-cache-api") == ["shared-cache-api"]

    def test_attribute_construction_flagged(self):
        src = "cache = shared_mod.SharedPersistentCache(arena)\n"
        assert hits(src, "shared-cache-api") == ["shared-cache-api"]

    def test_shared_package_is_exempt(self):
        src = "from repro.shared.cache import SharedPersistentCache\n"
        assert (
            hits(src, "shared-cache-api", path="src/repro/shared/manager.py")
            == []
        )

    def test_group_manager_usage_is_fine(self):
        src = "from repro.shared import make_group\ngroup = make_group(c, g, s)\n"
        assert hits(src, "shared-cache-api") == []

    def test_suppressed(self):
        src = (
            "import repro.shared.cache"
            "  # cachelint: disable=shared-cache-api\n"
        )
        assert hits(src, "shared-cache-api") == []


class TestFleetApi:
    def test_scheduler_module_import_flagged(self):
        assert hits("import repro.shared.fleet.scheduler\n", "fleet-api") == [
            "fleet-api"
        ]

    def test_from_workloads_import_flagged(self):
        src = "from repro.shared.fleet.workloads import DistinctWorkload\n"
        assert hits(src, "fleet-api") == ["fleet-api"]

    def test_from_simulator_import_flagged(self):
        src = "from repro.shared.fleet.simulator import FleetSimulator\n"
        assert hits(src, "fleet-api") == ["fleet-api"]

    def test_direct_distinct_construction_flagged(self):
        src = "w = DistinctWorkload(name, cols, keys, 0, 0, (), {})\n"
        assert hits(src, "fleet-api") == ["fleet-api"]

    def test_attribute_construction_flagged(self):
        src = "w = workloads_mod.DistinctWorkload(name)\n"
        assert hits(src, "fleet-api") == ["fleet-api"]

    def test_fleet_package_is_exempt(self):
        src = "from repro.shared.fleet.scheduler import ProcessStream\n"
        assert (
            hits(src, "fleet-api", path="src/repro/shared/fleet/simulator.py")
            == []
        )

    def test_package_root_usage_is_fine(self):
        src = (
            "from repro.shared.fleet import FleetSimulator, FleetWorkloads\n"
            "fw = FleetWorkloads.from_specs(specs)\n"
        )
        assert hits(src, "fleet-api") == []

    def test_suppressed(self):
        src = (
            "import repro.shared.fleet.scheduler"
            "  # cachelint: disable=fleet-api\n"
        )
        assert hits(src, "fleet-api") == []


class TestScenariosDeterminism:
    SCENARIO_PATH = "src/repro/scenarios/fixture.py"

    def test_wall_clock_call_flagged(self):
        src = "import profiling\nstart = profiling.perf_counter()\n"
        assert hits(src, "scenarios-determinism", path=self.SCENARIO_PATH) == [
            "scenarios-determinism"
        ]

    def test_datetime_now_flagged(self):
        assert hits(
            "stamp = datetime.now()\n",
            "scenarios-determinism",
            path=self.SCENARIO_PATH,
        ) == ["scenarios-determinism"]

    def test_random_construction_flagged(self):
        src = "from repro.rand import Random\nrng = Random(42)\n"
        assert hits(src, "scenarios-determinism", path=self.SCENARIO_PATH) == [
            "scenarios-determinism"
        ]

    def test_reseeding_flagged(self):
        assert hits(
            "rng.seed(7)\n", "scenarios-determinism", path=self.SCENARIO_PATH
        ) == ["scenarios-determinism"]

    def test_substream_is_fine(self):
        src = "from repro.rand import substream\nrng = substream(42, 'x')\n"
        assert hits(src, "scenarios-determinism", path=self.SCENARIO_PATH) == []

    def test_rng_methods_are_fine(self):
        src = "x = rng.random() + rng.uniform(0, 1)\n"
        assert hits(src, "scenarios-determinism", path=self.SCENARIO_PATH) == []

    def test_only_scenarios_package_checked(self):
        assert hits("stamp = datetime.now()\n", "scenarios-determinism") == []

    def test_suppressed(self):
        src = (
            "stamp = time.monotonic()  "
            "# cachelint: disable=scenarios-determinism\n"
        )
        assert hits(src, "scenarios-determinism", path=self.SCENARIO_PATH) == []
