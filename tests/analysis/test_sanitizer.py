"""The runtime sanitizer: clean replays pass, corruption is caught."""

from __future__ import annotations

import pytest

from repro.analysis.sanitizer import (
    SanitizerHarness,
    disable_sanitizer,
    enable_sanitizer,
    sanitizer_enabled,
)
from repro.cachesim.simulator import CacheSimulator, simulate_log
from repro.core.config import GenerationalConfig
from repro.core.effects import Effect, Evicted, EvictionReason
from repro.core.generational import GenerationalCacheManager
from repro.core.unified import UnifiedCacheManager
from repro.errors import ConfigError, InvariantViolation
from repro.tracelog.records import TraceCreate, TracePin


def make_manager(capacity: int = 3000) -> GenerationalCacheManager:
    return GenerationalCacheManager(capacity, GenerationalConfig())


class TestCleanRuns:
    def test_small_log_replay_is_clean(self, small_log):
        manager = make_manager()
        harness = SanitizerHarness(manager, stride=1)
        result = CacheSimulator(manager, sanitizer=harness).run(small_log)
        assert result.stats.accesses > 0
        assert harness.checks_run >= harness.events_seen  # final_check too
        assert harness.summary()["stride"] == 1

    def test_unified_manager_also_supported(self, small_log):
        manager = UnifiedCacheManager(3000)
        harness = SanitizerHarness(manager, stride=2)
        simulate_log(small_log, manager, sanitizer=harness)
        assert harness.checks_run > 0

    def test_stride_must_be_positive(self):
        with pytest.raises(ConfigError):
            SanitizerHarness(make_manager(), stride=0)


class TestCorruptionDetection:
    """Satellite: check_invariants is wired into the replay stride and
    corrupted cache state is actually detected."""

    def test_dual_residency_detected(self):
        manager = make_manager()
        manager.insert(1, 100, 0, time=0)
        # Corrupt: clone the nursery resident into the persistent cache
        # behind the manager's back.
        manager.persistent.insert(1, 100, 0, time=0)
        harness = SanitizerHarness(manager)
        with pytest.raises(InvariantViolation) as excinfo:
            harness.check_now()
        assert excinfo.value.invariant == "dual-residency"
        assert excinfo.value.trace_id == 1

    def test_stale_byte_accounting_detected(self):
        manager = make_manager()
        manager.insert(1, 100, 0, time=0)
        manager.nursery.arena._used += 7
        harness = SanitizerHarness(manager)
        with pytest.raises(InvariantViolation) as excinfo:
            harness.check_now()
        assert excinfo.value.invariant == "arena-extents"
        assert excinfo.value.cache == "nursery"

    def test_table_arena_disagreement_detected(self):
        manager = make_manager()
        manager.insert(1, 100, 0, time=0)
        del manager.nursery._traces[1]
        harness = SanitizerHarness(manager)
        with pytest.raises(InvariantViolation) as excinfo:
            harness.check_now()
        assert excinfo.value.invariant == "cache-consistency"

    def test_pinned_eviction_detected(self):
        manager = make_manager()
        manager.insert(1, 100, 0, time=0)
        harness = SanitizerHarness(manager, stride=100)
        harness.observe_event(TraceCreate(time=0, trace_id=1, size=100, module_id=0))
        harness.observe_event(TracePin(time=1, trace_id=1))
        bad_eviction: list[Effect] = [
            Evicted(trace_id=1, size=100, cache="nursery",
                    reason=EvictionReason.CAPACITY)
        ]
        with pytest.raises(InvariantViolation) as excinfo:
            harness.observe_effects(bad_eviction)
        assert excinfo.value.invariant == "pinned-eviction"
        assert excinfo.value.time == 1

    def test_unmap_eviction_of_pinned_trace_is_sanctioned(self):
        manager = make_manager()
        manager.insert(1, 100, 0, time=0)
        harness = SanitizerHarness(manager, stride=100)
        harness.observe_event(TracePin(time=1, trace_id=1))
        harness.observe_effects(
            [Evicted(trace_id=1, size=100, cache="nursery",
                     reason=EvictionReason.UNMAP)]
        )  # must not raise: the paper allows unmap to break pinning

    def test_probation_count_regression_detected(self):
        manager = make_manager()
        manager.probation.insert(7, 50, 0, time=0)
        manager.probation.get(7).access_count = 5
        harness = SanitizerHarness(manager)
        harness.check_now()
        manager.probation.get(7).access_count = 3
        with pytest.raises(InvariantViolation) as excinfo:
            harness.check_now()
        assert excinfo.value.invariant == "probation-monotone"

    def test_violation_carries_event_context(self, small_log):
        class CorruptingManager(GenerationalCacheManager):
            """Duplicates every insertion into the persistent cache."""

            def insert(self, trace_id, size, module_id, time):
                effects = super().insert(trace_id, size, module_id, time)
                if trace_id not in self.persistent:
                    self.persistent.insert(trace_id, size, module_id, time)
                return effects

        manager = CorruptingManager(3000, GenerationalConfig())
        with pytest.raises(InvariantViolation) as excinfo:
            simulate_log(
                small_log, manager,
                sanitizer=SanitizerHarness(manager, stride=1),
            )
        violation = excinfo.value
        assert violation.invariant == "dual-residency"
        assert violation.time is not None
        assert "event" in violation.context

    def test_violation_is_assertion_error_compatible(self):
        manager = make_manager()
        manager.insert(1, 100, 0, time=0)
        manager.persistent.insert(1, 100, 0, time=0)
        with pytest.raises(AssertionError):
            manager.check_invariants()


class TestGlobalSwitch:
    def test_enable_attaches_to_new_simulators(self, small_log):
        try:
            enable_sanitizer(stride=4)
            assert sanitizer_enabled()
            manager = make_manager()
            simulator = CacheSimulator(manager)
            assert simulator.sanitizer is not None
            assert simulator.sanitizer.stride == 4
            simulator.run(small_log)
            assert simulator.sanitizer.checks_run > 0
        finally:
            disable_sanitizer()

    def test_disabled_by_default(self):
        assert not sanitizer_enabled()
        assert CacheSimulator(make_manager()).sanitizer is None

    def test_explicit_harness_wins_over_switch(self, small_log):
        try:
            enable_sanitizer(stride=4)
            manager = make_manager()
            mine = SanitizerHarness(manager, stride=2)
            assert CacheSimulator(manager, sanitizer=mine).sanitizer is mine
        finally:
            disable_sanitizer()

    def test_invalid_stride_rejected(self):
        with pytest.raises(ConfigError):
            enable_sanitizer(stride=0)
