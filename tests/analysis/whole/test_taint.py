"""Determinism-taint: sources, sinks, interprocedural paths,
suppressions."""

from __future__ import annotations

from repro.analysis.engine import analyze
from repro.analysis.whole.program import Program
from repro.analysis.whole.taint import DeterminismTaintRule

from tests.analysis.whole.test_graph import write_pkg


def check(tmp_path, files):
    program = Program.from_paths([write_pkg(tmp_path, files)])
    return DeterminismTaintRule().check(program)


class TestDirectTaint:
    def test_wall_clock_into_result_payload_is_caught(self, tmp_path):
        # The canonical regression: time.time() feeding an
        # ExperimentResult payload must be flagged.
        violations = check(
            tmp_path,
            {
                "exp.py": (
                    "import time\n"
                    "def run():\n"
                    "    payload = {'elapsed': time.time()}\n"
                    "    return ExperimentResult(payload)\n"
                ),
            },
        )
        (violation,) = violations
        assert violation.rule_id == "determinism-taint"
        assert "time.time" in violation.message
        assert "'ExperimentResult' sink" in violation.message
        assert violation.trace[0].startswith("sink 'ExperimentResult'")
        assert violation.trace[-1].startswith("source 'time.time'")

    def test_clean_function_is_silent(self, tmp_path):
        assert (
            check(
                tmp_path,
                {
                    "ok.py": (
                        "def run(seed):\n"
                        "    return ExperimentResult({'seed': seed})\n"
                    ),
                },
            )
            == []
        )


class TestInterproceduralTaint:
    def test_source_reached_through_helper_module(self, tmp_path):
        violations = check(
            tmp_path,
            {
                "clock.py": (
                    "import time\n"
                    "def stamp():\n"
                    "    return time.time()\n"
                ),
                "exp.py": (
                    "from pkg.clock import stamp as now\n"
                    "def run():\n"
                    "    return ExperimentResult({'at': now()})\n"
                ),
            },
        )
        (violation,) = violations
        hops = [step for step in violation.trace if " calls " in step]
        assert any("pkg.clock.stamp" in hop for hop in hops)
        assert violation.trace[-1].startswith("source 'time.time'")

    def test_aliased_sink_call_is_matched(self, tmp_path):
        # ``from .jobs import job_id as compute_job_id`` — the sink is
        # found via the resolved call target, not the local name.
        violations = check(
            tmp_path,
            {
                "jobs.py": "def job_id(spec):\n    return str(spec)\n",
                "sched.py": (
                    "import random\n"
                    "from pkg.jobs import job_id as compute_job_id\n"
                    "def admit(spec):\n"
                    "    jitter = random.random()\n"
                    "    return compute_job_id(spec), jitter\n"
                ),
            },
        )
        assert any("'job_id' sink" in v.message for v in violations)


class TestSourceKinds:
    def test_set_iteration_is_a_source_but_sorted_is_not(self, tmp_path):
        violations = check(
            tmp_path,
            {
                "bad.py": (
                    "def run(items):\n"
                    "    seen = set(items)\n"
                    "    rows = [x for x in seen]\n"
                    "    return ExperimentResult({'rows': rows})\n"
                ),
                "good.py": (
                    "def run(items):\n"
                    "    seen = set(items)\n"
                    "    rows = [x for x in sorted(seen)]\n"
                    "    return ExperimentResult({'rows': rows})\n"
                ),
            },
        )
        assert len(violations) == 1
        assert violations[0].path.endswith("bad.py")
        assert "unordered set" in violations[0].message

    def test_env_reads_outside_repro_namespace(self, tmp_path):
        violations = check(
            tmp_path,
            {
                "env.py": (
                    "import os\n"
                    "KEY = 'REPRO_CACHE_DIR'\n"
                    "def good():\n"
                    "    return ExperimentResult({'d': os.environ.get(KEY)})\n"
                    "def bad():\n"
                    "    return ExperimentResult({'h': os.environ['HOME']})\n"
                ),
            },
        )
        (violation,) = violations
        assert "'HOME'" in violation.message

    def test_id_builtin_is_a_source(self, tmp_path):
        violations = check(
            tmp_path,
            {
                "ids.py": (
                    "def run(obj):\n"
                    "    return ExperimentResult({'tag': id(obj)})\n"
                ),
            },
        )
        (violation,) = violations
        assert "id()" in violation.message


class TestSuppression:
    def test_allow_nondet_marks_an_intentional_source(self, tmp_path):
        assert (
            check(
                tmp_path,
                {
                    "exp.py": (
                        "import time\n"
                        "def run():\n"
                        "    at = time.time()  # cachelint: allow[nondet]\n"
                        "    return ExperimentResult({'at': at})\n"
                    ),
                },
            )
            == []
        )

    def test_disable_comment_suppresses_via_the_engine(self, tmp_path):
        pkg = write_pkg(
            tmp_path,
            {
                "exp.py": (
                    "import time  # cachelint: disable=no-nondeterminism\n"
                    "def run():\n"
                    "    at = time.time()\n"
                    "    return ExperimentResult({'at': at})"
                    "  # cachelint: disable=determinism-taint\n"
                ),
            },
        )
        report = analyze([pkg])
        assert [v.rule_id for v in report.violations] == []
        assert report.suppressed >= 2
