"""Concurrency-lockset: shared-state detection across thread roots."""

from __future__ import annotations

from repro.analysis.whole.lockset import ConcurrencyLocksetRule, find_roots
from repro.analysis.whole.program import Program

from tests.analysis.whole.test_graph import write_pkg


def check(tmp_path, files):
    program = Program.from_paths([write_pkg(tmp_path, files)])
    return ConcurrencyLocksetRule().check(program)


UNLOCKED = {
    "svc.py": (
        "import threading\n"
        "class Service:\n"
        "    def __init__(self):\n"
        "        self.count: int = 0\n"
        "        self._lock = threading.Lock()\n"
        "    def start(self):\n"
        "        threading.Thread(target=self._worker).start()\n"
        "        threading.Thread(target=self._reporter).start()\n"
        "    def _worker(self):\n"
        "        self.count += 1\n"
        "    def _reporter(self):\n"
        "        return self.count\n"
    ),
}


class TestLocksetBasics:
    def test_unlocked_shared_counter_is_flagged(self, tmp_path):
        violations = check(tmp_path, UNLOCKED)
        (violation,) = violations
        assert violation.rule_id == "concurrency-lockset"
        assert "'pkg.svc.Service.count'" in violation.message
        assert "2 thread roots" in violation.message
        assert any(step.startswith("root path:") for step in violation.trace)

    def test_consistent_locking_is_clean(self, tmp_path):
        assert (
            check(
                tmp_path,
                {
                    "svc.py": (
                        "import threading\n"
                        "class Service:\n"
                        "    def __init__(self):\n"
                        "        self.count: int = 0\n"
                        "        self._lock = threading.Lock()\n"
                        "    def start(self):\n"
                        "        threading.Thread(target=self._worker).start()\n"
                        "        threading.Thread(target=self._reporter).start()\n"
                        "    def _worker(self):\n"
                        "        with self._lock:\n"
                        "            self.count += 1\n"
                        "    def _reporter(self):\n"
                        "        with self._lock:\n"
                        "            return self.count\n"
                    ),
                },
            )
            == []
        )

    def test_caller_held_lock_covers_the_helper(self, tmp_path):
        # The helper touches state unlocked, but every call path from a
        # root enters it with the lock held.
        assert (
            check(
                tmp_path,
                {
                    "svc.py": (
                        "import threading\n"
                        "class Service:\n"
                        "    def __init__(self):\n"
                        "        self.count: int = 0\n"
                        "        self._lock = threading.Lock()\n"
                        "    def start(self):\n"
                        "        threading.Thread(target=self._worker).start()\n"
                        "        threading.Thread(target=self._reporter).start()\n"
                        "    def _bump(self):\n"
                        "        self.count += 1\n"
                        "    def _worker(self):\n"
                        "        with self._lock:\n"
                        "            self._bump()\n"
                        "    def _reporter(self):\n"
                        "        with self._lock:\n"
                        "            return self.count\n"
                    ),
                },
            )
            == []
        )

    def test_single_root_never_races(self, tmp_path):
        assert (
            check(
                tmp_path,
                {
                    "svc.py": (
                        "import threading\n"
                        "class Service:\n"
                        "    def __init__(self):\n"
                        "        self.count: int = 0\n"
                        "    def start(self):\n"
                        "        threading.Thread(target=self._worker).start()\n"
                        "    def _worker(self):\n"
                        "        self.count += 1\n"
                    ),
                },
            )
            == []
        )

    def test_read_only_sharing_is_clean(self, tmp_path):
        assert (
            check(
                tmp_path,
                {
                    "svc.py": (
                        "import threading\n"
                        "class Service:\n"
                        "    def __init__(self):\n"
                        "        self.limit: int = 8\n"
                        "    def start(self):\n"
                        "        threading.Thread(target=self._a).start()\n"
                        "        threading.Thread(target=self._b).start()\n"
                        "    def _a(self):\n"
                        "        return self.limit\n"
                        "    def _b(self):\n"
                        "        return self.limit * 2\n"
                    ),
                },
            )
            == []
        )


class TestRootDiscovery:
    def test_http_handlers_and_thread_targets_are_roots(self, tmp_path):
        pkg = write_pkg(
            tmp_path,
            {
                "web.py": (
                    "import threading\n"
                    "from http.server import BaseHTTPRequestHandler\n"
                    "class Handler(BaseHTTPRequestHandler):\n"
                    "    def do_GET(self):\n"
                    "        return None\n"
                    "def spawn(fn):\n"
                    "    threading.Thread(target=fn)\n"
                    "def run():\n"
                    "    spawn(tick)\n"
                    "def tick():\n"
                    "    return 1\n"
                ),
            },
        )
        roots = find_roots(Program.from_paths([pkg]).graph)
        assert roots.get("pkg.web.Handler.do_GET") == "http-handler"

    def test_asyncio_start_server_handler_is_a_root(self, tmp_path):
        pkg = write_pkg(
            tmp_path,
            {
                "srv.py": (
                    "import asyncio\n"
                    "class Server:\n"
                    "    async def _open(self):\n"
                    "        await asyncio.start_server(\n"
                    "            self._handle, '127.0.0.1', 0)\n"
                    "    async def _handle(self, reader, writer):\n"
                    "        return None\n"
                    "async def boot(handler):\n"
                    "    await asyncio.start_server(\n"
                    "        client_connected_cb=on_conn, host='::1')\n"
                    "async def on_conn(reader, writer):\n"
                    "    return None\n"
                ),
            },
        )
        roots = find_roots(Program.from_paths([pkg]).graph)
        assert roots.get("pkg.srv.Server._handle") == "asyncio-handler"
        assert roots.get("pkg.srv.on_conn") == "asyncio-handler"

    def test_asyncio_handler_racing_a_thread_is_flagged(self, tmp_path):
        violations = check(
            tmp_path,
            {
                "srv.py": (
                    "import asyncio\n"
                    "import threading\n"
                    "STATE = {}\n"
                    "async def handle(reader, writer):\n"
                    "    return STATE.get('value')\n"
                    "def loop():\n"
                    "    STATE['value'] = 1\n"
                    "def run():\n"
                    "    threading.Thread(target=loop).start()\n"
                    "    asyncio.start_server(handle, '::1', 0)\n"
                ),
            },
        )
        (violation,) = violations
        assert "'pkg.srv.STATE'" in violation.message

    def test_http_handler_racing_a_thread_is_flagged(self, tmp_path):
        violations = check(
            tmp_path,
            {
                "web.py": (
                    "import threading\n"
                    "from http.server import BaseHTTPRequestHandler\n"
                    "STATE = {}\n"
                    "class Handler(BaseHTTPRequestHandler):\n"
                    "    def do_GET(self):\n"
                    "        return STATE.get('value')\n"
                    "def loop():\n"
                    "    STATE['value'] = 1\n"
                    "def run():\n"
                    "    threading.Thread(target=loop).start()\n"
                ),
            },
        )
        (violation,) = violations
        assert "'pkg.web.STATE'" in violation.message


class TestServiceLayerIsClean:
    def test_src_repro_has_no_lockset_findings(self):
        from pathlib import Path

        repo_root = Path(__file__).resolve().parents[3]
        program = Program.from_paths([repo_root / "src" / "repro"])
        assert ConcurrencyLocksetRule().check(program) == []
