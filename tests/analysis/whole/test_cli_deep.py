"""``repro-lint --deep`` and ``--graph`` behaviour."""

from __future__ import annotations

import json

from repro.analysis.cli import main

from tests.analysis.whole.test_graph import write_pkg

TAINTED = {
    "exp.py": (
        "def run():\n"
        "    payload = {'x': 1}\n"
        "    return ExperimentResult(payload)\n"
    ),
    "clock.py": "x = 1\n",
}

TAINTED["exp.py"] = (
    "import time  # cachelint: disable=no-nondeterminism\n"
    "def run():\n"
    "    payload = {'at': time.time()}\n"
    "    return ExperimentResult(payload)\n"
)


class TestDeepFlag:
    def test_default_run_skips_whole_program_rules(self, tmp_path, capsys):
        pkg = write_pkg(tmp_path, TAINTED)
        assert main([str(pkg)]) == 0
        assert "determinism-taint" not in capsys.readouterr().out

    def test_deep_runs_the_whole_program_passes(self, tmp_path, capsys):
        pkg = write_pkg(tmp_path, TAINTED)
        assert main(["--deep", str(pkg)]) == 1
        out = capsys.readouterr().out
        assert "determinism-taint" in out
        # The source→sink path is rendered under the violation.
        assert "sink 'ExperimentResult'" in out
        assert "source 'time.time'" in out

    def test_selecting_a_whole_rule_implies_deep(self, tmp_path, capsys):
        pkg = write_pkg(tmp_path, TAINTED)
        assert main(["--select", "determinism-taint", str(pkg)]) == 1
        assert "determinism-taint" in capsys.readouterr().out

    def test_deep_json_carries_traces(self, tmp_path, capsys):
        pkg = write_pkg(tmp_path, TAINTED)
        assert main(["--deep", "--format", "json", str(pkg)]) == 1
        payload = json.loads(capsys.readouterr().out)
        (violation,) = [
            v
            for v in payload["violations"]
            if v["rule"] == "determinism-taint"
        ]
        assert violation["trace"][0].startswith("sink 'ExperimentResult'")
        assert payload["summary"]["elapsed_seconds"] >= 0


class TestGraphVerb:
    def test_graph_dump(self, tmp_path, capsys):
        pkg = write_pkg(
            tmp_path,
            {"a.py": "def f():\n    return 1\n"},
        )
        out = tmp_path / "graph.json"
        assert main(["--graph", str(out), str(pkg)]) == 0
        assert "wrote call graph" in capsys.readouterr().out
        data = json.loads(out.read_text())
        assert "pkg.a.f" in data["functions"]
        assert data["modules"]["pkg.a"]["path"].endswith("a.py")
