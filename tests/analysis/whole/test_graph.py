"""Call-graph construction: module naming, call resolution, cycles."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.whole.graph import ImportCycleRule
from repro.analysis.whole.program import Program, module_name_for


def write_pkg(root: Path, files: dict[str, str]) -> Path:
    pkg = root / "pkg"
    pkg.mkdir(exist_ok=True)
    (pkg / "__init__.py").write_text("")
    for name, source in files.items():
        target = pkg / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return pkg


class TestModuleNaming:
    def test_package_module(self, tmp_path):
        pkg = write_pkg(tmp_path, {"mod.py": "x = 1\n"})
        assert module_name_for(pkg / "mod.py") == "pkg.mod"

    def test_package_init(self, tmp_path):
        pkg = write_pkg(tmp_path, {})
        assert module_name_for(pkg / "__init__.py") == "pkg"

    def test_bare_file(self, tmp_path):
        path = tmp_path / "solo.py"
        path.write_text("x = 1\n")
        assert module_name_for(path) == "solo"


class TestCallResolution:
    def test_direct_and_aliased_calls(self, tmp_path):
        pkg = write_pkg(
            tmp_path,
            {
                "a.py": "def helper():\n    return 1\n",
                "b.py": (
                    "from pkg.a import helper as h\n"
                    "def caller():\n"
                    "    return h()\n"
                ),
            },
        )
        graph = Program.from_paths([pkg]).graph
        (call,) = graph.functions["pkg.b.caller"].calls
        assert call.targets == ("pkg.a.helper",)

    def test_self_method_resolves_through_mro(self, tmp_path):
        pkg = write_pkg(
            tmp_path,
            {
                "c.py": (
                    "class Base:\n"
                    "    def shared(self):\n"
                    "        return 0\n"
                    "class Child(Base):\n"
                    "    def run(self):\n"
                    "        return self.shared()\n"
                ),
            },
        )
        graph = Program.from_paths([pkg]).graph
        (call,) = graph.functions["pkg.c.Child.run"].calls
        assert "pkg.c.Base.shared" in call.targets

    def test_super_call_skips_own_class(self, tmp_path):
        pkg = write_pkg(
            tmp_path,
            {
                "d.py": (
                    "class Base:\n"
                    "    def step(self):\n"
                    "        return 0\n"
                    "class Child(Base):\n"
                    "    def step(self):\n"
                    "        return super().step() + 1\n"
                ),
            },
        )
        graph = Program.from_paths([pkg]).graph
        calls = graph.functions["pkg.d.Child.step"].calls
        (call,) = [c for c in calls if c.name == "step"]
        assert call.targets == ("pkg.d.Base.step",)

    def test_dynamic_dispatch_includes_overrides(self, tmp_path):
        pkg = write_pkg(
            tmp_path,
            {
                "e.py": (
                    "class Policy:\n"
                    "    def pick(self):\n"
                    "        return 0\n"
                    "class Lru(Policy):\n"
                    "    def pick(self):\n"
                    "        return 1\n"
                    "def drive(p: Policy):\n"
                    "    return p.pick()\n"
                ),
            },
        )
        graph = Program.from_paths([pkg]).graph
        (call,) = graph.functions["pkg.e.drive"].calls
        assert set(call.targets) == {"pkg.e.Policy.pick", "pkg.e.Lru.pick"}

    def test_graph_json_round_trips(self, tmp_path):
        pkg = write_pkg(tmp_path, {"a.py": "def f():\n    return 1\n"})
        data = Program.from_paths([pkg]).graph.to_dict()
        decoded = json.loads(json.dumps(data, sort_keys=True))
        assert "pkg.a.f" in decoded["functions"]


class TestImportCycles:
    def test_mutual_imports_are_flagged(self, tmp_path):
        pkg = write_pkg(
            tmp_path,
            {
                "a.py": "import pkg.b\n",
                "b.py": "import pkg.a\n",
            },
        )
        program = Program.from_paths([pkg])
        (violation,) = ImportCycleRule().check(program)
        assert violation.rule_id == "import-cycle"
        assert set(violation.trace) == {"pkg.a", "pkg.b"}

    def test_function_scoped_import_breaks_the_cycle(self, tmp_path):
        pkg = write_pkg(
            tmp_path,
            {
                "a.py": "import pkg.b\n",
                "b.py": (
                    "def late():\n"
                    "    from pkg import a\n"
                    "    return a\n"
                ),
            },
        )
        program = Program.from_paths([pkg])
        assert ImportCycleRule().check(program) == []
        # ...but the lazily imported name still resolves for calls.
        assert "pkg.a" in program.graph.imports["pkg.b"].values()

    def test_type_checking_imports_are_ignored(self, tmp_path):
        pkg = write_pkg(
            tmp_path,
            {
                "a.py": "import pkg.b\n",
                "b.py": (
                    "from typing import TYPE_CHECKING\n"
                    "if TYPE_CHECKING:\n"
                    "    import pkg.a\n"
                ),
            },
        )
        assert ImportCycleRule().check(Program.from_paths([pkg])) == []

    def test_submodule_import_does_not_drag_in_the_package(self, tmp_path):
        # ``from pkg import sub`` is cycle-safe (sys.modules fallback):
        # the edge goes to the submodule, not the package __init__.
        pkg = write_pkg(tmp_path, {"sub.py": "x = 1\n"})
        (pkg / "__init__.py").write_text("from pkg import sub\n")
        (pkg / "user.py").write_text("from pkg import sub\n")
        program = Program.from_paths([pkg])
        assert ImportCycleRule().check(program) == []
        assert program.graph.module_imports["pkg.user"] == {"pkg.sub": 1}
