"""Fastpath-safety: hook closures of ``fastpath_safe`` managers."""

from __future__ import annotations

from repro.analysis.whole.fastpath import FastpathSafetyRule
from repro.analysis.whole.program import Program

from tests.analysis.whole.test_graph import write_pkg


def check(tmp_path, files):
    program = Program.from_paths([write_pkg(tmp_path, files)])
    return FastpathSafetyRule().check(program)


class TestFastpathSafety:
    def test_allowlisted_closure_is_clean(self, tmp_path):
        assert (
            check(
                tmp_path,
                {
                    "mgr.py": (
                        "class Manager:\n"
                        "    fastpath_safe = True\n"
                        "    def on_hit(self, cache, trace):\n"
                        "        cache.touch(trace)\n"
                        "        return self._count(trace)\n"
                        "    def _count(self, trace):\n"
                        "        return len(trace)\n"
                    ),
                },
            )
            == []
        )

    def test_disallowed_call_is_reported_with_hook_path(self, tmp_path):
        violations = check(
            tmp_path,
            {
                "mgr.py": (
                    "class Manager:\n"
                    "    fastpath_safe = True\n"
                    "    def on_hit(self, cache, trace):\n"
                    "        return self._log(trace)\n"
                    "    def _log(self, trace):\n"
                    "        print(trace)\n"
                ),
            },
        )
        (violation,) = violations
        assert violation.rule_id == "fastpath-safety"
        assert "'print'" in violation.message
        assert "hook 'on_hit'" in violation.message
        assert violation.trace[0].startswith("pkg.mgr.Manager.on_hit")
        assert violation.trace[-1].startswith("call 'print'")

    def test_unsafe_manager_is_not_checked(self, tmp_path):
        assert (
            check(
                tmp_path,
                {
                    "mgr.py": (
                        "class Manager:\n"
                        "    fastpath_safe = False\n"
                        "    def on_hit(self, cache, trace):\n"
                        "        print(trace)\n"
                    ),
                },
            )
            == []
        )

    def test_flag_is_inherited_through_the_mro(self, tmp_path):
        violations = check(
            tmp_path,
            {
                "mgr.py": (
                    "class Base:\n"
                    "    fastpath_safe = True\n"
                    "    def on_hit(self, cache, trace):\n"
                    "        return None\n"
                    "class Child(Base):\n"
                    "    def on_hit(self, cache, trace):\n"
                    "        print(trace)\n"
                ),
            },
        )
        assert any("Child" in v.message for v in violations)

    def test_exceptions_are_allowed(self, tmp_path):
        assert (
            check(
                tmp_path,
                {
                    "mgr.py": (
                        "class Manager:\n"
                        "    fastpath_safe = True\n"
                        "    def on_hit(self, cache, trace):\n"
                        "        if trace is None:\n"
                        "            raise ValueError('no trace')\n"
                        "        return cache.touch(trace)\n"
                    ),
                },
            )
            == []
        )
