"""Reporter output snapshots and the self-check that src/repro is
lint-clean."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import Analyzer, analyze
from repro.analysis.engine import AnalysisReport
from repro.analysis.reporters import render_json, render_text

REPO_ROOT = Path(__file__).resolve().parents[2]

FIXTURE = "import random\nrate == 0.5\nsize = mb * 1024\n"


def _fixture_report(tmp_path: Path) -> AnalysisReport:
    target = tmp_path / "fixture.py"
    target.write_text(FIXTURE)
    return Analyzer().analyze_paths([target])


class TestTextReporter:
    def test_snapshot(self, tmp_path):
        report = _fixture_report(tmp_path)
        prefix = str(tmp_path / "fixture.py")
        assert render_text(report).splitlines() == [
            f"{prefix}:1:0: error [no-nondeterminism] import of "
            "nondeterministic module 'random'; use the seeded streams in "
            "repro.rand",
            f"{prefix}:2:0: error [float-equality] equality comparison "
            "against a float literal; use math.isclose or an inequality guard",
            f"{prefix}:3:7: warning [units-hygiene] magic byte constant "
            "1024; use repro.units.KB",
            f"checked 1 file(s) in {report.elapsed_seconds:.2f}s: "
            "2 error(s), 1 warning(s)",
        ]

    def test_summary_counts_suppressed(self, tmp_path):
        target = tmp_path / "fixture.py"
        target.write_text("import random  # cachelint: disable=all\n")
        report = Analyzer().analyze_paths([target])
        assert report.suppressed == 1
        assert render_text(report).endswith("1 suppressed")


class TestJsonReporter:
    def test_structure(self, tmp_path):
        report = _fixture_report(tmp_path)
        payload = json.loads(render_json(report))
        assert payload["summary"]["files_checked"] == 1
        assert payload["summary"]["errors"] == 2
        assert payload["summary"]["warnings"] == 1
        assert payload["summary"]["by_rule"] == {
            "float-equality": 1,
            "no-nondeterminism": 1,
            "units-hygiene": 1,
        }
        rules = [v["rule"] for v in payload["violations"]]
        assert rules == ["no-nondeterminism", "float-equality", "units-hygiene"]
        first = payload["violations"][0]
        assert first["line"] == 1
        assert first["severity"] == "error"

    def test_exit_codes(self, tmp_path):
        report = _fixture_report(tmp_path)
        assert report.exit_code() == 1
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert Analyzer().analyze_paths([clean]).exit_code() == 0

    def test_warning_only_exits_zero(self, tmp_path):
        target = tmp_path / "warn.py"
        target.write_text("size = mb * 1024\n")
        report = Analyzer().analyze_paths([target])
        assert report.warning_count == 1
        assert report.exit_code() == 0


class TestSelfCheck:
    def test_src_repro_is_lint_clean(self):
        """The package must satisfy its own lint rules — including the
        whole-program passes, which ``analyze`` runs by default (the
        fixes landed with the rules that caught them)."""
        report = analyze([REPO_ROOT / "src" / "repro"])
        assert report.files_checked > 90
        assert report.elapsed_seconds > 0
        offending = [v.location() + " " + v.rule_id for v in report.violations]
        assert offending == []
