"""The content-addressed workload artifact cache."""

from __future__ import annotations

import json

import pytest

from repro.experiments.dataset import WorkloadDataset
from repro.fastpath import artifacts as artifacts_module
from repro.fastpath.artifacts import (
    ARTIFACT_TOTALS,
    ArtifactCache,
    artifact_key,
    cached_log,
    configure,
    dump_compiled_container,
    load_compiled_container,
)
from repro.fastpath.compiled import compile_log
from repro.tracelog.stats import summarize_log
from repro.workloads.catalog import get_profile
from repro.workloads.synthesis import synthesize_log


@pytest.fixture
def store(tmp_path):
    """Point the process-wide store at a fresh directory."""
    previous = artifacts_module._cache
    cache = configure(tmp_path / "store")
    yield cache
    artifacts_module._cache = previous


@pytest.fixture
def no_store():
    previous = artifacts_module._cache
    configure(None)
    yield
    artifacts_module._cache = previous


def _totals():
    return dict(ARTIFACT_TOTALS)


def _delta(before):
    return {k: ARTIFACT_TOTALS[k] - before[k] for k in before}


# ----------------------------------------------------------------------
# Container codec
# ----------------------------------------------------------------------


def test_container_roundtrip(small_log):
    compiled = compile_log(small_log)
    blob = dump_compiled_container(compiled)
    restored = load_compiled_container(blob)
    assert restored is not None
    assert list(restored.rows()) == list(compiled.rows())
    assert restored.benchmark == compiled.benchmark
    assert restored.duration_seconds == compiled.duration_seconds
    assert restored.code_footprint == compiled.code_footprint


def test_container_rejects_corruption(small_log):
    blob = dump_compiled_container(compile_log(small_log))
    assert load_compiled_container(b"XXXX" + blob[4:]) is None  # bad magic
    corrupt = bytearray(blob)
    corrupt[-1] ^= 0xFF  # payload bit-flip breaks the checksum
    assert load_compiled_container(bytes(corrupt)) is None
    assert load_compiled_container(blob[:-3]) is None  # truncated


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------


def test_keys_separate_parameters():
    gzip, word = get_profile("gzip"), get_profile("word")
    base = artifact_key("compiled-log", gzip, 42, 2.0)
    assert artifact_key("compiled-log", gzip, 42, 2.0) == base
    assert artifact_key("compiled-log", gzip, 43, 2.0) != base
    assert artifact_key("compiled-log", gzip, 42, 4.0) != base
    assert artifact_key("compiled-log", word, 42, 2.0) != base
    assert artifact_key("log-stats", gzip, 42, 2.0) != base


# ----------------------------------------------------------------------
# Store behavior
# ----------------------------------------------------------------------


def test_cold_then_warm_compiled_log(store):
    profile = get_profile("gzip")
    calls = []

    def synthesize():
        calls.append(1)
        return synthesize_log(profile, seed=5, scale=2.0)

    before = _totals()
    cold, log = store.compiled_log(profile, 5, 2.0, synthesize)
    assert log is not None and calls == [1]
    assert _delta(before) == {
        "hits": 0, "misses": 1, "stores": 1, "logs_synthesized": 1,
    }
    before = _totals()
    warm, log2 = store.compiled_log(profile, 5, 2.0, synthesize)
    assert log2 is None and calls == [1]
    assert _delta(before) == {
        "hits": 1, "misses": 0, "stores": 0, "logs_synthesized": 0,
    }
    assert list(warm.rows()) == list(cold.rows())


def test_corrupt_entry_is_rewritten(store):
    profile = get_profile("gzip")
    synthesize = lambda: synthesize_log(profile, seed=5, scale=2.0)
    store.compiled_log(profile, 5, 2.0, synthesize)
    path = store._path(artifact_key("compiled-log", profile, 5, 2.0), ".rac")
    path.write_bytes(b"garbage")
    before = _totals()
    compiled, log = store.compiled_log(profile, 5, 2.0, synthesize)
    assert log is not None  # re-synthesized
    assert _delta(before)["misses"] == 1 and _delta(before)["stores"] == 1
    assert load_compiled_container(path.read_bytes()) is not None


def test_log_stats_roundtrip(store, small_log):
    profile = get_profile("gzip")
    reference = summarize_log(small_log)
    cold = store.log_stats(profile, 7, 1.0, lambda: reference)
    assert cold == reference
    warm = store.log_stats(
        profile, 7, 1.0, lambda: pytest.fail("stats recomputed on warm hit")
    )
    assert warm == reference


def test_cached_log_matches_synthesis(store):
    profile = get_profile("gzip")
    direct = synthesize_log(profile, seed=11, scale=2.0)
    cold = cached_log(profile, 11, 2.0)
    warm = cached_log(profile, 11, 2.0)  # decompiled from the artifact
    assert cold.records == direct.records
    assert warm.records == direct.records


def test_write_failure_degrades_to_miss(tmp_path, small_log):
    target = tmp_path / "not-a-dir"
    target.write_text("file in the way")
    cache = ArtifactCache(target / "store")
    profile = get_profile("gzip")
    compiled, log = cache.compiled_log(
        profile, 1, 1.0, lambda: synthesize_log(profile, seed=1, scale=1.0)
    )
    assert log is not None and len(compiled) > 0  # run still succeeded


# ----------------------------------------------------------------------
# Dataset integration
# ----------------------------------------------------------------------


def test_dataset_warm_run_skips_synthesis(store):
    kwargs = dict(seed=13, scale_multiplier=4.0, subset=["gzip"])
    first = WorkloadDataset(**kwargs)
    cold_compiled = first.compiled("gzip")
    cold_stats = first.stats("gzip")
    before = _totals()
    second = WorkloadDataset(**kwargs)
    warm_compiled = second.compiled("gzip")
    warm_stats = second.stats("gzip")
    warm_log = second.log("gzip")
    delta = _delta(before)
    assert delta["logs_synthesized"] == 0
    assert delta["misses"] == 0
    assert list(warm_compiled.rows()) == list(cold_compiled.rows())
    assert warm_stats == cold_stats
    assert warm_log.records == first.log("gzip").records


def test_dataset_without_store_still_works(no_store):
    dataset = WorkloadDataset(seed=13, scale_multiplier=4.0, subset=["gzip"])
    compiled = dataset.compiled("gzip")
    assert compiled.decompile().records == dataset.log("gzip").records
    assert dataset.stats("gzip").n_traces == compiled.n_traces


def test_stats_json_is_plain(store, small_log):
    profile = get_profile("gzip")
    store.log_stats(profile, 7, 1.0, lambda: summarize_log(small_log))
    path = store._path(artifact_key("log-stats", profile, 7, 1.0), ".json")
    fields = json.loads(path.read_text())
    assert fields["benchmark"] == "tiny"
    assert fields["n_traces"] == 6
