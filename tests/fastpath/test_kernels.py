"""The policy-specialized replay kernels.

Plan construction (streak collapsing, chunk retry ladders), spec
selection and the structural prologue guards, the replay-tier
switches, forced mid-batch aborts with bit-identical resume,
unmap-storm side exits, dead-store elimination, and the on-disk plan
artifact round trip.
"""

from __future__ import annotations

import pytest

from repro.cachesim.simulator import CacheSimulator
from repro.core.config import FIGURE9_CONFIGS, GenerationalConfig, PromotionMode
from repro.core.generational import GenerationalCacheManager
from repro.core.manager import KernelSpec
from repro.core.unified import UnifiedCacheManager
from repro.fastpath import (
    FASTPATH_TOTALS,
    compile_log,
    fastpath_mode,
    object_path,
    prepare_plan,
    set_abort_fuzz,
    set_fastpath_mode,
    set_vectorized,
    vectorized_enabled,
)
from repro.fastpath import artifacts as artifacts_module
from repro.fastpath.artifacts import configure
from repro.fastpath.kernels import (
    CHUNK_RECORDS,
    KIND_SCALAR,
    KIND_STREAK,
    build_plan,
)
from repro.overhead.model import TABLE2_COSTS
from repro.tracelog.records import (
    EndOfLog,
    ModuleUnmap,
    TraceAccess,
    TraceCreate,
    TraceLog,
    TracePin,
    TraceUnpin,
)

LONG_RUN = 3 * CHUNK_RECORDS - 4  # spans multiple chunks, ragged tail
SHORT_RUN = CHUNK_RECORDS - 2


def _runs_log() -> TraceLog:
    """Two access runs (one multi-chunk, one single-chunk) separated
    by an unmap, over a handful of traces."""
    log = TraceLog(benchmark="runs", duration_seconds=1.0, code_footprint=4096)
    t = 0
    for tid in range(4):
        t += 1
        log.append(
            TraceCreate(time=t, trace_id=tid, size=100 + tid, module_id=tid % 2)
        )
    for k in range(LONG_RUN):
        t += 1
        log.append(TraceAccess(time=t, trace_id=k % 4, repeat=1 + k % 3))
    t += 1
    log.append(ModuleUnmap(time=t, module_id=1))
    for k in range(SHORT_RUN):
        t += 1
        log.append(TraceAccess(time=t, trace_id=2 * (k % 2), repeat=1))
    log.append(EndOfLog(time=t + 1))
    return log


def _storm_log() -> TraceLog:
    """Unmap storm: every round unmaps a module out from under the hot
    working set, so the next run's guard side-exits and the re-creating
    misses replay through the chunk retry ladder.  Pins ride along."""
    log = TraceLog(benchmark="storm", duration_seconds=1.0, code_footprint=8192)
    t = 0
    next_id = 0
    live: list[int] = []
    for round_no in range(6):
        created = []
        for _ in range(4):
            t += 1
            log.append(
                TraceCreate(
                    time=t,
                    trace_id=next_id,
                    size=64 + 8 * (next_id % 5),
                    module_id=next_id % 4,
                )
            )
            created.append(next_id)
            next_id += 1
        live = (live + created)[-10:]
        t += 1
        log.append(TracePin(time=t, trace_id=created[0]))
        for _ in range(3):
            for tid in live:
                t += 1
                log.append(
                    TraceAccess(time=t, trace_id=tid, repeat=1 + tid % 3)
                )
        t += 1
        log.append(TraceUnpin(time=t, trace_id=created[0]))
        t += 1
        log.append(ModuleUnmap(time=t, module_id=round_no % 4))
    log.append(EndOfLog(time=t + 1))
    return log


def _delta(before: dict) -> dict:
    return {k: FASTPATH_TOTALS[k] - before[k] for k in before}


def _capacity(log, fraction=2.0) -> int:
    return max(4096, int(log.total_trace_bytes * fraction))


def assert_all_tiers(log, make_manager):
    """Replay through the kernels with both guard variants and check
    each against the object path; returns the per-variant counter
    deltas."""
    compiled = compile_log(log)
    with object_path():
        reference = CacheSimulator(make_manager(), TABLE2_COSTS).run(log)
    was = vectorized_enabled()
    deltas = {}
    try:
        for vector in (False, True):
            set_vectorized(vector)
            before = dict(FASTPATH_TOTALS)
            outcome = CacheSimulator(make_manager(), TABLE2_COSTS).run(compiled)
            deltas[vector] = _delta(before)
            assert outcome.stats == reference.stats, vector
            assert (
                outcome.overhead_instructions
                == reference.overhead_instructions
            ), vector
            assert outcome.final_fragmentation == reference.final_fragmentation
            assert outcome.final_occupancy == reference.final_occupancy
    finally:
        set_vectorized(was)
    return deltas


# ----------------------------------------------------------------------
# Plan construction
# ----------------------------------------------------------------------


def test_plan_collapses_runs_and_chunks():
    compiled = compile_log(_runs_log())
    plan = build_plan(compiled)
    kinds = [step[0] for step in plan.steps]
    assert kinds == [
        KIND_SCALAR,  # the creates
        KIND_STREAK,  # the long run
        KIND_SCALAR,  # the unmap
        KIND_STREAK,  # the short run
        KIND_SCALAR,  # end-of-log
    ]
    assert plan.n_records == len(compiled)

    long_run = plan.steps[1]
    _, start, end, items, tids, keyset, total_hits, chunks = long_run
    assert end - start == LONG_RUN
    # Collapsed to the distinct ids, guards precomputed in parallel.
    assert sorted(tids) == [0, 1, 2, 3]
    assert keyset == frozenset(tids)
    assert total_hits == sum(1 + k % 3 for k in range(LONG_RUN))
    assert sum(item[1] for item in items) == total_hits
    # Last-occurrence order: the collapsed last_access must be the
    # run's final timestamp for the trace accessed last.
    assert items[-1][2] == max(item[2] for item in items)
    # Multi-chunk run: the retry ladder tiles [start, end) exactly.
    assert len(chunks) == (LONG_RUN + CHUNK_RECORDS - 1) // CHUNK_RECORDS
    assert chunks[0][0] == start and chunks[-1][1] == end
    assert all(
        chunks[i][1] == chunks[i + 1][0] for i in range(len(chunks) - 1)
    )
    assert sum(chunk[5] for chunk in chunks) == total_hits

    short_run = plan.steps[3]
    assert short_run[2] - short_run[1] == SHORT_RUN
    assert short_run[7] == ()  # single chunk: the run guard suffices


def test_plan_stops_at_end_of_log():
    log = _runs_log()
    # Garbage after EndOfLog must never be planned (mirrors replay).
    log.records.append(TraceAccess(time=10_000, trace_id=0))
    compiled = compile_log(log)
    plan = build_plan(compiled)
    covered = plan.steps[-1][2]
    assert covered < plan.n_records


def test_prepare_plan_memoizes_in_process():
    previous = artifacts_module._cache
    configure(None)
    try:
        compiled = compile_log(_runs_log())
        before = dict(FASTPATH_TOTALS)
        plan = prepare_plan(compiled)
        assert prepare_plan(compiled) is plan
        delta = _delta(before)
        assert delta["plans_built"] == 1
        assert delta["plans_loaded"] == 0
    finally:
        artifacts_module._cache = previous


def test_plan_artifact_round_trip(tmp_path):
    previous = artifacts_module._cache
    configure(tmp_path / "store")
    try:
        log = _runs_log()
        before = dict(FASTPATH_TOTALS)
        built = prepare_plan(compile_log(log))
        assert _delta(before)["plans_built"] == 1
        # A fresh compile of the same records has no memo slot: the
        # plan must come back from the store, chunk ladders and all.
        before = dict(FASTPATH_TOTALS)
        loaded = prepare_plan(compile_log(log))
        delta = _delta(before)
        assert delta["plans_built"] == 0
        assert delta["plans_loaded"] == 1
        assert loaded.n_records == built.n_records
        assert loaded.steps == built.steps
    finally:
        artifacts_module._cache = previous


# ----------------------------------------------------------------------
# Spec selection
# ----------------------------------------------------------------------


def test_spec_selection_by_policy():
    log = _runs_log()
    capacity = _capacity(log)
    # Plain-touch, dead-counter policy: the simplest kernel shape.
    spec = UnifiedCacheManager(capacity).replay_kernel_spec()
    assert spec.kind == "single"
    assert spec.live_counter_caches == ()
    # LFU's victim scan reads the counters: still specializable, but
    # the counter writes stay live.
    spec = UnifiedCacheManager(
        capacity, local_policy="lfu"
    ).replay_kernel_spec()
    assert spec.kind == "single"
    assert spec.live_counter_caches == spec.cache_names
    # Stateful recency policies fall back to the batched loop.
    assert (
        UnifiedCacheManager(capacity, local_policy="lru").replay_kernel_spec()
        is None
    )
    gen_spec = GenerationalCacheManager(
        capacity, FIGURE9_CONFIGS[0]
    ).replay_kernel_spec()
    assert gen_spec.kind == "multi"
    assert len(gen_spec.cache_names) == 3
    assert (
        GenerationalCacheManager(
            capacity,
            GenerationalConfig(
                promotion_mode=PromotionMode.ON_HIT,
                promotion_threshold=2,
                local_policy="lru",
            ),
        ).replay_kernel_spec()
        is None
    )


def test_on_hit_promotion_spec_is_guarded():
    log = _runs_log()
    spec = GenerationalCacheManager(
        _capacity(log),
        GenerationalConfig(
            promotion_mode=PromotionMode.ON_HIT, promotion_threshold=5
        ),
    ).replay_kernel_spec()
    assert spec.guarded_cache is not None
    assert spec.promotion_threshold == 5
    assert spec.live_counter_caches == (spec.guarded_cache,)


def test_bogus_spec_is_structural_abort():
    """A manager whose spec misdescribes its caches must abort in the
    prologue and fall back to the batched loop — correct results, one
    guard abort, no specialized replay."""

    class LyingManager(UnifiedCacheManager):
        def replay_kernel_spec(self):
            return KernelSpec(
                kind="single",
                cache_names=("not-my-cache",),
                live_counter_caches=(),
            )

    log = _runs_log()
    compiled = compile_log(log)
    with object_path():
        reference = CacheSimulator(
            UnifiedCacheManager(_capacity(log)), TABLE2_COSTS
        ).run(log)
    before = dict(FASTPATH_TOTALS)
    outcome = CacheSimulator(LyingManager(_capacity(log)), TABLE2_COSTS).run(
        compiled
    )
    delta = _delta(before)
    assert delta["guard_aborts"] == 1
    assert delta["specialized_replays"] == 0
    assert delta["fast_replays"] == 1  # the batched loop picked it up
    assert outcome.stats == reference.stats
    assert outcome.overhead_instructions == reference.overhead_instructions


# ----------------------------------------------------------------------
# Tier switches
# ----------------------------------------------------------------------


def test_mode_switch_selects_tier():
    log = _runs_log()
    compiled = compile_log(log)
    was = fastpath_mode()
    try:
        for mode, key in (
            ("kernel", "specialized_replays"),
            ("batched", "fast_replays"),
            ("off", "object_replays"),
        ):
            set_fastpath_mode(mode)
            before = dict(FASTPATH_TOTALS)
            CacheSimulator(UnifiedCacheManager(_capacity(log))).run(compiled)
            delta = _delta(before)
            assert delta[key] == 1, mode
            if mode != "kernel":
                assert delta["specialized_replays"] == 0, mode
    finally:
        set_fastpath_mode(was)
    with pytest.raises(ValueError):
        set_fastpath_mode("turbo")


def test_vectorized_toggle_counts_replays():
    log = _runs_log()
    deltas = assert_all_tiers(
        log, lambda: UnifiedCacheManager(_capacity(log))
    )
    for vector, delta in deltas.items():
        assert delta["specialized_replays"] == 1
        assert delta["vectorized_replays"] == (1 if vector else 0)
        assert delta["segment_commits"] > 0
        assert delta["guard_aborts"] == 0


# ----------------------------------------------------------------------
# Speculation: commits, side exits, aborts
# ----------------------------------------------------------------------


def test_clean_log_commits_every_run():
    """With capacity for everything, every run commits whole: streak
    coverage is every access record, and no side exits fire."""
    log = _runs_log()
    deltas = assert_all_tiers(
        log, lambda: UnifiedCacheManager(_capacity(log, 4.0))
    )
    for delta in deltas.values():
        assert delta["streak_records"] == LONG_RUN + SHORT_RUN
        assert delta["segment_commits"] == 2
        assert delta["segment_side_exits"] == 0


@pytest.mark.parametrize("manager_kind", ["unified", "generational"])
def test_unmap_storm_side_exits(manager_kind):
    """Unmaps mid-working-set force guard side exits; the chunk retry
    ladder contains the damage and the results stay bit-identical."""
    log = _storm_log()
    if manager_kind == "unified":
        make = lambda: UnifiedCacheManager(_capacity(log))
    else:
        make = lambda: GenerationalCacheManager(
            _capacity(log), FIGURE9_CONFIGS[0]
        )
    deltas = assert_all_tiers(log, make)
    for delta in deltas.values():
        assert delta["specialized_replays"] == 1
        assert delta["segment_side_exits"] > 0
        assert delta["segment_commits"] > 0  # clean chunks still commit
        assert delta["guard_aborts"] == 0


@pytest.mark.parametrize("manager_kind", ["unified", "generational"])
@pytest.mark.parametrize("after", [0, 1])
def test_forced_abort_resumes_bit_identical(manager_kind, after):
    """``set_abort_fuzz`` kills speculation mid-replay (after 0 or 1
    committed runs); the scalar remainder must agree with the object
    path exactly."""
    log = _storm_log()
    if manager_kind == "unified":
        make = lambda: UnifiedCacheManager(_capacity(log))
    else:
        make = lambda: GenerationalCacheManager(
            _capacity(log), FIGURE9_CONFIGS[1]
        )
    set_abort_fuzz(after)
    try:
        deltas = assert_all_tiers(log, make)
    finally:
        set_abort_fuzz(None)
    for delta in deltas.values():
        assert delta["guard_aborts"] == 1
        assert delta["segment_commits"] == after


def test_tight_capacity_churn():
    """A starved cache misses inside nearly every run — maximal
    de-optimization pressure on the chunk ladder."""
    log = _storm_log()
    deltas = assert_all_tiers(
        log, lambda: UnifiedCacheManager(max(1024, _capacity(log, 0.2)))
    )
    for delta in deltas.values():
        assert delta["segment_side_exits"] > 0
        assert delta["guard_aborts"] == 0


# ----------------------------------------------------------------------
# Dead-store elimination
# ----------------------------------------------------------------------


def test_dead_counters_are_skipped():
    """Nothing reads a pseudo-circular cache's per-trace counters, so
    the kernel provably skips the per-hit writes — the LFU variant
    (whose victim scan reads them) must keep them exact."""
    log = _runs_log()
    compiled = compile_log(log)

    def final_counts(local_policy):
        manager = UnifiedCacheManager(
            _capacity(log, 4.0), local_policy=local_policy
        )
        CacheSimulator(manager, TABLE2_COSTS).run(compiled)
        return {
            tid: trace.access_count
            for tid, trace in manager.caches()[0].resident_map().items()
        }

    def object_counts(local_policy):
        manager = UnifiedCacheManager(
            _capacity(log, 4.0), local_policy=local_policy
        )
        with object_path():
            CacheSimulator(manager, TABLE2_COSTS).run(log)
        return {
            tid: trace.access_count
            for tid, trace in manager.caches()[0].resident_map().items()
        }

    # Dead counters: every committed hit skipped the write, so the
    # counts sit at their insertion values.
    dead = final_counts("pseudo-circular")
    assert dead != object_counts("pseudo-circular")
    assert all(count == 0 for count in dead.values())
    # Live counters: bit-identical to the object path.
    assert final_counts("lfu") == object_counts("lfu")
