"""Compiled-log representation: lossless packing and serialization."""

from __future__ import annotations

import io

import pytest

from repro.errors import LogFormatError
from repro.fastpath import compile_log, ensure_compiled
from repro.tracelog.binary import (
    dumps_binary,
    load_binary_compiled,
    loads_binary,
    loads_binary_compiled,
    read_binary_log_compiled,
    write_binary_log,
)
from repro.tracelog.records import TraceLog
from repro.workloads.catalog import get_profile
from repro.workloads.synthesis import synthesize_log


@pytest.fixture(scope="module")
def synth_log():
    return synthesize_log(get_profile("gzip"), seed=3, scale=4.0)


def test_compile_decompile_roundtrip(small_log):
    compiled = compile_log(small_log)
    assert len(compiled) == len(small_log.records)
    restored = compiled.decompile()
    assert restored.records == small_log.records
    assert restored.benchmark == small_log.benchmark
    assert restored.duration_seconds == small_log.duration_seconds
    assert restored.code_footprint == small_log.code_footprint


def test_compile_decompile_roundtrip_synthesized(synth_log):
    compiled = compile_log(synth_log)
    assert compiled.decompile().records == synth_log.records


def test_summary_properties_match(synth_log):
    compiled = compile_log(synth_log)
    assert compiled.n_records == len(synth_log.records)
    assert compiled.n_traces == synth_log.n_traces
    assert compiled.n_accesses == synth_log.n_accesses
    assert compiled.total_trace_bytes == synth_log.total_trace_bytes
    assert compiled.end_time == synth_log.end_time


def test_iter_records_matches_decompile(small_log):
    compiled = compile_log(small_log)
    assert list(compiled.iter_records()) == small_log.records


def test_tracelog_compile_method(small_log):
    assert small_log.compile().decompile().records == small_log.records


def test_ensure_compiled_passthrough(small_log):
    compiled = compile_log(small_log)
    assert ensure_compiled(compiled) is compiled
    assert ensure_compiled(small_log).decompile().records == small_log.records


def test_compile_rejects_foreign_record(small_log):
    small_log.records.insert(0, object())
    with pytest.raises(LogFormatError, match="cannot compile"):
        compile_log(small_log)


def test_empty_log_compiles():
    log = TraceLog(benchmark="empty", duration_seconds=0.0, code_footprint=0)
    compiled = compile_log(log)
    assert len(compiled) == 0
    assert compiled.end_time == 0
    assert compiled.decompile().records == []


# ----------------------------------------------------------------------
# RTL2 interop: compiled logs serialize without decompiling
# ----------------------------------------------------------------------


def test_dump_binary_compiled_is_byte_identical(synth_log):
    compiled = compile_log(synth_log)
    assert dumps_binary(compiled) == dumps_binary(synth_log)


def test_loads_binary_compiled(synth_log):
    blob = dumps_binary(synth_log)
    compiled = loads_binary_compiled(blob)
    assert list(compiled.rows()) == list(compile_log(synth_log).rows())
    assert compiled.benchmark == synth_log.benchmark
    assert compiled.duration_seconds == synth_log.duration_seconds
    assert compiled.code_footprint == synth_log.code_footprint


def test_load_binary_compiled_streaming(small_log):
    blob = dumps_binary(small_log)
    compiled = load_binary_compiled(io.BytesIO(blob), chunk_size=7)
    assert compiled.decompile().records == small_log.records


def test_write_read_compiled_file(tmp_path, small_log):
    compiled = compile_log(small_log)
    path = tmp_path / "log.bin"
    write_binary_log(compiled, path)
    assert read_binary_log_compiled(path).decompile().records == small_log.records
    assert loads_binary(path.read_bytes()).records == small_log.records


def test_loads_binary_compiled_rejects_garbage():
    with pytest.raises(LogFormatError):
        loads_binary_compiled(b"NOPE")
