"""Property-style equivalence: random logs, both replay paths agree.

Skipped cleanly when hypothesis is not installed.
"""

from __future__ import annotations

import pytest

try:  # pragma: no cover - hypothesis is an optional dep
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False

from repro.cachesim.simulator import CacheSimulator
from repro.errors import CacheFullError
from repro.core.config import GenerationalConfig, PromotionMode
from repro.core.generational import GenerationalCacheManager
from repro.core.unified import UnifiedCacheManager
from repro.fastpath import compile_log, object_path
from repro.overhead.model import TABLE2_COSTS
from repro.tracelog.records import (
    EndOfLog,
    ModuleUnmap,
    TraceAccess,
    TraceCreate,
    TraceLog,
    TracePin,
    TraceUnpin,
)

pytestmark = pytest.mark.skipif(
    not HAVE_HYPOTHESIS, reason="hypothesis not installed"
)

if HAVE_HYPOTHESIS:

    @st.composite
    def trace_logs(draw):
        """A small, valid, time-sorted log with adversarial structure:
        re-accesses after unmaps, pins before residency, bursts."""
        n_events = draw(st.integers(min_value=1, max_value=120))
        log = TraceLog(benchmark="prop", duration_seconds=1.0, code_footprint=4096)
        time = 0
        next_id = 0
        created: list[int] = []
        for _ in range(n_events):
            time += draw(st.integers(min_value=1, max_value=50))
            kind = draw(
                st.sampled_from(
                    ["create", "access", "access", "unmap", "pin", "unpin"]
                )
            )
            if kind == "create" or not created:
                log.append(
                    TraceCreate(
                        time=time,
                        trace_id=next_id,
                        size=draw(st.integers(min_value=16, max_value=900)),
                        module_id=draw(st.integers(min_value=0, max_value=3)),
                    )
                )
                created.append(next_id)
                next_id += 1
            elif kind == "access":
                log.append(
                    TraceAccess(
                        time=time,
                        trace_id=draw(st.sampled_from(created)),
                        repeat=draw(st.integers(min_value=1, max_value=12)),
                    )
                )
            elif kind == "unmap":
                log.append(
                    ModuleUnmap(
                        time=time,
                        module_id=draw(st.integers(min_value=0, max_value=3)),
                    )
                )
            elif kind == "pin":
                log.append(
                    TracePin(time=time, trace_id=draw(st.sampled_from(created)))
                )
            else:
                log.append(
                    TraceUnpin(time=time, trace_id=draw(st.sampled_from(created)))
                )
        log.append(EndOfLog(time=time + 1))
        return log

    def _replay(make_manager, payload):
        """Run one path; a starved, pin-blocked cache legitimately
        raises CacheFullError — the paths must agree on that too."""
        try:
            return CacheSimulator(make_manager(), TABLE2_COSTS).run(payload)
        except CacheFullError as exc:
            return ("cache-full", str(exc))

    def _check(log, make_manager):
        compiled = compile_log(log)
        assert compiled.decompile().records == log.records
        with object_path():
            reference = _replay(make_manager, log)
        outcome = _replay(make_manager, compiled)
        if isinstance(reference, tuple):
            assert outcome == reference
            return
        assert outcome.stats == reference.stats
        assert outcome.overhead_instructions == reference.overhead_instructions
        assert outcome.final_fragmentation == reference.final_fragmentation
        assert outcome.final_occupancy == reference.final_occupancy

    @given(log=trace_logs(), fraction=st.sampled_from([0.15, 0.5, 1.0]))
    @settings(max_examples=60, deadline=None)
    def test_unified_random_logs(log, fraction):
        capacity = max(1024, int(log.total_trace_bytes * fraction))
        _check(log, lambda: UnifiedCacheManager(capacity))

    @given(
        log=trace_logs(),
        threshold=st.sampled_from([1, 2, 10]),
        on_hit=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_generational_random_logs(log, threshold, on_hit):
        mode = PromotionMode.ON_HIT if on_hit else PromotionMode.ON_EVICTION
        config = GenerationalConfig(
            promotion_mode=mode, promotion_threshold=threshold
        )
        capacity = max(4096, int(log.total_trace_bytes * 0.4))
        _check(log, lambda: GenerationalCacheManager(capacity, config))
