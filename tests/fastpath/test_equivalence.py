"""Object path vs compiled fast path: byte-identical results.

Every policy, both manager families, every generational promotion
config — and every compiled replay tier (the batched loop, the
specialized kernels with scalar guards, and the kernels with the
vectorized columnar guards) must agree with the object path on the
full :class:`~repro.cachesim.stats.SimulationResult`, including the
float-accumulated overhead instruction totals (``==``, not isclose:
the fast path charges effects in the same order, so the floats match
bit for bit).
"""

from __future__ import annotations

import pytest

from repro.cachesim.simulator import CacheSimulator
from repro.core.config import FIGURE9_CONFIGS, GenerationalConfig, PromotionMode
from repro.core.generational import GenerationalCacheManager
from repro.core.unified import UnifiedCacheManager
from repro.fastpath import (
    FASTPATH_TOTALS,
    batched_path,
    compile_log,
    disable_fastpath,
    enable_fastpath,
    fastpath_enabled,
    object_path,
    set_vectorized,
    vectorized_enabled,
)
from repro.overhead.model import TABLE2_COSTS
from repro.policies import POLICIES
from repro.workloads.catalog import get_profile
from repro.workloads.synthesis import synthesize_log

GENERATIONAL_CONFIGS = FIGURE9_CONFIGS + (
    GenerationalConfig(
        promotion_mode=PromotionMode.ON_HIT, promotion_threshold=5
    ),
    GenerationalConfig(
        nursery_fraction=0.2,
        probation_fraction=0.4,
        persistent_fraction=0.4,
        promotion_mode=PromotionMode.ON_EVICTION,
        promotion_threshold=25,
    ),
    GenerationalConfig(
        promotion_mode=PromotionMode.ON_HIT,
        promotion_threshold=2,
        local_policy="lru",
    ),
)

#: word exercises unmaps and pins; gzip is a pure SPEC loop shape.
#: scale is a trace-count divisor; these keep each log around a few
#: thousand records so the ~30-case cross product stays fast — the
#: benchmarks cover evaluation-scale logs.
LOGS = {
    "gzip": synthesize_log(get_profile("gzip"), seed=9, scale=8.0),
    "word": synthesize_log(get_profile("word"), seed=9, scale=64.0),
}


def assert_equivalent(log, make_manager, cost_model=TABLE2_COSTS):
    """Replay *log* through every compiled tier and compare each
    against the object path.  Managers without a kernel spec simply
    take the batched loop on the kernel tiers — the equivalence
    contract is the same either way."""
    compiled = compile_log(log)
    with object_path():
        reference = CacheSimulator(make_manager(), cost_model).run(log)
    outcomes = {}
    was_vectorized = vectorized_enabled()
    try:
        with batched_path():
            outcomes["batched"] = CacheSimulator(
                make_manager(), cost_model
            ).run(compiled)
        set_vectorized(False)
        outcomes["specialized"] = CacheSimulator(
            make_manager(), cost_model
        ).run(compiled)
        set_vectorized(True)
        before = FASTPATH_TOTALS["fast_replays"]
        outcomes["vectorized"] = CacheSimulator(
            make_manager(), cost_model
        ).run(compiled)
        assert FASTPATH_TOTALS["fast_replays"] == before + 1, (
            "compiled replay did not take the fast path"
        )
    finally:
        set_vectorized(was_vectorized)
    for tier, outcome in outcomes.items():
        assert outcome.stats == reference.stats, tier
        assert (
            outcome.overhead_instructions == reference.overhead_instructions
        ), tier
        assert outcome.final_fragmentation == reference.final_fragmentation
        assert outcome.final_occupancy == reference.final_occupancy
        assert outcome.benchmark == reference.benchmark
        assert outcome.manager_name == reference.manager_name
    return outcomes["vectorized"]


def _capacity(log, fraction=0.5):
    return max(4096, int(log.total_trace_bytes * fraction))


@pytest.mark.parametrize("bench", sorted(LOGS))
@pytest.mark.parametrize(
    "policy", sorted(set(POLICIES) - {"oracle"})
)
def test_unified_policies_equivalent(bench, policy):
    log = LOGS[bench]
    # The unbounded policy never evicts, so it needs room for every
    # trace ever created; the bounded policies run starved at 50%.
    fraction = 2.0 if policy == "unbounded" else 0.5
    assert_equivalent(
        log,
        lambda: UnifiedCacheManager(
            _capacity(log, fraction), local_policy=policy
        ),
    )


@pytest.mark.parametrize("bench", sorted(LOGS))
def test_unified_oracle_equivalent(bench):
    from repro.experiments.headroom import oracle_manager

    log = LOGS[bench]
    assert_equivalent(log, lambda: oracle_manager(log, _capacity(log)))


@pytest.mark.parametrize("bench", sorted(LOGS))
@pytest.mark.parametrize(
    "config", GENERATIONAL_CONFIGS, ids=lambda c: c.label()
)
def test_generational_configs_equivalent(bench, config):
    log = LOGS[bench]
    assert_equivalent(
        log, lambda: GenerationalCacheManager(_capacity(log), config)
    )


@pytest.mark.parametrize("bench", sorted(LOGS))
def test_tight_capacity_equivalent(bench):
    """A starved cache maximizes eviction/promotion churn."""
    log = LOGS[bench]
    assert_equivalent(log, lambda: UnifiedCacheManager(_capacity(log, 0.1)))
    assert_equivalent(
        log,
        lambda: GenerationalCacheManager(_capacity(log, 0.1), FIGURE9_CONFIGS[0]),
    )


def test_no_cost_model_equivalent():
    log = LOGS["word"]
    assert_equivalent(
        log,
        lambda: GenerationalCacheManager(_capacity(log), FIGURE9_CONFIGS[1]),
        cost_model=None,
    )


def test_sanitizer_forces_object_path():
    from repro.analysis.sanitizer import SanitizerHarness

    log = LOGS["gzip"]
    compiled = compile_log(log)
    manager = UnifiedCacheManager(_capacity(log))
    sim = CacheSimulator(
        manager, TABLE2_COSTS, sanitizer=SanitizerHarness(manager, stride=64)
    )
    before = dict(FASTPATH_TOTALS)
    sanitized = sim.run(compiled)
    assert FASTPATH_TOTALS["fast_replays"] == before["fast_replays"]
    assert FASTPATH_TOTALS["object_replays"] == before["object_replays"] + 1
    with object_path():
        reference = CacheSimulator(
            UnifiedCacheManager(_capacity(log)), TABLE2_COSTS
        ).run(log)
    assert sanitized.stats == reference.stats


def test_disable_fastpath_switch():
    log = LOGS["gzip"]
    compiled = compile_log(log)
    assert fastpath_enabled()
    disable_fastpath()
    try:
        assert not fastpath_enabled()
        before = FASTPATH_TOTALS["object_replays"]
        CacheSimulator(UnifiedCacheManager(_capacity(log))).run(compiled)
        assert FASTPATH_TOTALS["object_replays"] == before + 1
    finally:
        enable_fastpath()


def test_object_path_context_restores():
    with object_path():
        assert not fastpath_enabled()
        with object_path():
            assert not fastpath_enabled()
        # Inner exit must not prematurely re-enable.
        assert not fastpath_enabled()
    assert fastpath_enabled()
