"""Unit tests for the basic-block cache and trace-head table."""

from __future__ import annotations

import pytest

from repro.isa.blocks import BasicBlock
from repro.isa.instructions import straightline
from repro.runtime.bbcache import BasicBlockCache
from repro.runtime.selection import (
    DEFAULT_TRACE_THRESHOLD,
    TraceHeadTable,
    TraceSelectionConfig,
)


def block(block_id=0, module_id=0):
    return BasicBlock(
        block_id=block_id,
        module_id=module_id,
        address=block_id * 16,
        instructions=[straightline() for _ in range(4)],
    )


class TestBasicBlockCache:
    def test_copy_in_and_execute(self):
        cache = BasicBlockCache()
        cache.copy_in(block(0))
        assert 0 in cache
        assert cache.execute(0) == 1
        assert cache.execute(0) == 2
        assert cache.executions(0) == 2

    def test_size_accounting(self):
        cache = BasicBlockCache()
        cache.copy_in(block(0))
        cache.copy_in(block(1))
        assert cache.n_blocks == 2
        assert cache.size_bytes == 2 * 12

    def test_purge_module(self):
        cache = BasicBlockCache()
        cache.copy_in(block(0, module_id=0))
        cache.copy_in(block(1, module_id=5))
        cache.copy_in(block(2, module_id=5))
        purged = cache.purge_module(5)
        assert sorted(purged) == [1, 2]
        assert cache.n_blocks == 1

    def test_total_copies_counts_recopies(self):
        cache = BasicBlockCache()
        cache.copy_in(block(0, module_id=5))
        cache.purge_module(5)
        cache.copy_in(block(0, module_id=5))
        assert cache.total_copies == 2
        assert cache.executions(0) == 0  # counter reset with recopy


class TestTraceHeadTable:
    def test_default_threshold_is_dynamorio_50(self):
        assert DEFAULT_TRACE_THRESHOLD == 50
        assert TraceSelectionConfig().threshold == 50

    def test_unmarked_blocks_never_trigger(self):
        table = TraceHeadTable(TraceSelectionConfig(threshold=2))
        assert not table.record_execution(7)
        assert table.count(7) == 0

    def test_threshold_trigger(self):
        table = TraceHeadTable(TraceSelectionConfig(threshold=3))
        table.mark(1)
        assert not table.record_execution(1)
        assert not table.record_execution(1)
        assert table.record_execution(1)

    def test_mark_is_idempotent_and_preserves_counts(self):
        table = TraceHeadTable(TraceSelectionConfig(threshold=5))
        table.mark(1)
        table.record_execution(1)
        table.mark(1)
        assert table.count(1) == 1

    def test_reset_restarts_counting(self):
        table = TraceHeadTable(TraceSelectionConfig(threshold=2))
        table.mark(1)
        table.record_execution(1)
        table.record_execution(1)
        table.reset(1)
        assert not table.record_execution(1)

    def test_purge_forgets_heads(self):
        table = TraceHeadTable()
        table.mark(1)
        table.mark(2)
        table.purge([1])
        assert 1 not in table
        assert 2 in table
        assert table.n_heads == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TraceSelectionConfig(threshold=0)
        with pytest.raises(ValueError):
            TraceSelectionConfig(max_trace_blocks=0)
