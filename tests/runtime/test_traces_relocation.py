"""Unit tests for trace building and code relocation."""

from __future__ import annotations

import pytest

from repro.errors import RuntimeStateError
from repro.isa.blocks import BasicBlock
from repro.isa.instructions import (
    conditional_branch,
    direct_jump,
    ret,
    straightline,
)
from repro.runtime.relocation import layout_blocks, relocate_trace
from repro.runtime.traces import EXIT_STUB_BYTES, Trace, TraceBuilder


def block(block_id, module_id=0, terminator=None, body=3):
    instructions = [straightline() for _ in range(body)]
    if terminator is not None:
        instructions.append(terminator)
    return BasicBlock(
        block_id=block_id,
        module_id=module_id,
        address=block_id * 32,
        instructions=instructions,
    )


class TestTraceBuilder:
    def test_head_is_first_block(self):
        head = block(0)
        builder = TraceBuilder(trace_id=1, head=head, started_at=0)
        trace = builder.finish(created_at=10)
        assert trace.head_block == 0
        assert trace.block_ids == (0,)
        assert trace.created_at == 10

    def test_size_includes_exit_stubs(self):
        head = block(0, terminator=conditional_branch(9, backward=False))
        tail = block(1)
        builder = TraceBuilder(trace_id=1, head=head, started_at=0)
        builder.extend(tail)
        trace = builder.finish(created_at=0)
        block_bytes = head.size + tail.size
        # One stub for the head's conditional exit + one final exit.
        assert trace.size == block_bytes + 2 * EXIT_STUB_BYTES

    def test_max_blocks_enforced(self):
        builder = TraceBuilder(trace_id=1, head=block(0), started_at=0, max_blocks=2)
        builder.extend(block(1))
        assert builder.full
        with pytest.raises(RuntimeStateError):
            builder.extend(block(2))

    def test_module_boundary_rejected(self):
        builder = TraceBuilder(trace_id=1, head=block(0, module_id=0), started_at=0)
        with pytest.raises(RuntimeStateError):
            builder.extend(block(1, module_id=9))

    def test_contains_block(self):
        builder = TraceBuilder(trace_id=1, head=block(0), started_at=0)
        builder.extend(block(4))
        assert builder.contains_block(4)
        assert not builder.contains_block(5)

    def test_trace_validation(self):
        with pytest.raises(RuntimeStateError):
            Trace(
                trace_id=0, head_block=1, block_ids=(),
                module_id=0, size=10, created_at=0,
            )
        with pytest.raises(RuntimeStateError):
            Trace(
                trace_id=0, head_block=1, block_ids=(2, 1),
                module_id=0, size=10, created_at=0,
            )


class TestRelocation:
    def test_layout_is_contiguous(self):
        blocks = [block(0), block(1, body=5), block(2)]
        addresses = layout_blocks(blocks, base=1000)
        assert addresses[0] == 1000
        assert addresses[1] == 1000 + blocks[0].size
        assert addresses[2] == addresses[1] + blocks[1].size

    def test_intra_trace_branch_fixup(self):
        # Block 1 branches back to block 0 inside the same trace.
        blocks = [
            block(0),
            block(1, terminator=conditional_branch(0, backward=True)),
        ]
        relocated = relocate_trace(7, blocks, old_base=0, new_base=5000)
        intra = [f for f in relocated.fixups if f.kind == "intra"]
        assert len(intra) == 1
        assert intra[0].old_target == 0
        assert intra[0].new_target == 5000

    def test_off_trace_branch_becomes_stub_fixup(self):
        blocks = [
            block(0, terminator=direct_jump(99)),  # target outside trace
            block(1),
        ]
        relocated = relocate_trace(7, blocks, old_base=100, new_base=600)
        stubs = [f for f in relocated.fixups if f.kind == "stub"]
        assert len(stubs) == 1
        assert stubs[0].new_target - stubs[0].old_target == 500

    def test_indirect_terminators_need_no_fixup(self):
        blocks = [block(0, terminator=ret())]
        relocated = relocate_trace(7, blocks, old_base=0, new_base=100)
        assert relocated.fixups == ()

    def test_relocation_preserves_block_order_and_sizes(self):
        blocks = [block(0), block(1, body=7), block(2, body=1)]
        relocated = relocate_trace(3, blocks, old_base=0, new_base=4096)
        assert relocated.block_addresses[0] == 4096
        deltas = [
            relocated.block_addresses[i + 1] - relocated.block_addresses[i]
            for i in range(len(blocks) - 1)
        ]
        assert deltas == [blocks[0].size, blocks[1].size]

    def test_zero_delta_relocation_is_identity_on_stubs(self):
        blocks = [block(0, terminator=direct_jump(50))]
        relocated = relocate_trace(1, blocks, old_base=128, new_base=128)
        assert all(f.old_target == f.new_target for f in relocated.fixups)
