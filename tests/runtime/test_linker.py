"""Unit tests for the trace linker."""

from __future__ import annotations

import pytest

from repro.errors import DuplicateTraceError, UnknownTraceError
from repro.runtime.linker import TraceLinker, exit_targets_of
from repro.runtime.traces import Trace


def trace(trace_id: int, head: int, blocks=None, module_id: int = 0) -> Trace:
    block_ids = tuple(blocks) if blocks else (head,)
    return Trace(
        trace_id=trace_id,
        head_block=head,
        block_ids=block_ids,
        module_id=module_id,
        size=100,
        created_at=0,
    )


class TestExitTargets:
    def test_off_trace_targets_only(self):
        t = trace(0, head=1, blocks=(1, 2, 3))
        targets = exit_targets_of(
            t, {1: 2, 2: 9, 3: 1}  # 1->2 internal, 2->9 exit, 3->1 internal
        )
        assert targets == (9,)

    def test_fallthrough_blocks_contribute_nothing(self):
        t = trace(0, head=1, blocks=(1, 2))
        assert exit_targets_of(t, {1: None, 2: None}) == ()


class TestLinking:
    def test_outgoing_link_to_resident_head(self):
        linker = TraceLinker()
        linker.register(trace(0, head=10), exit_targets=())
        patched = linker.register(trace(1, head=20), exit_targets=(10,))
        assert patched == 1
        assert linker.is_linked(1, 0)
        assert not linker.is_linked(0, 1)
        assert linker.n_links == 1

    def test_incoming_link_resolved_on_registration(self):
        linker = TraceLinker()
        # Trace 0 exits toward block 20 before any trace heads there.
        linker.register(trace(0, head=10), exit_targets=(20,))
        assert linker.n_links == 0
        patched = linker.register(trace(1, head=20), exit_targets=())
        assert patched == 1
        assert linker.is_linked(0, 1)

    def test_mutual_links(self):
        linker = TraceLinker()
        linker.register(trace(0, head=10), exit_targets=(20,))
        linker.register(trace(1, head=20), exit_targets=(10,))
        assert linker.is_linked(0, 1)
        assert linker.is_linked(1, 0)
        linker.check_invariants()

    def test_duplicate_registration_rejected(self):
        linker = TraceLinker()
        linker.register(trace(0, head=10), exit_targets=())
        with pytest.raises(DuplicateTraceError):
            linker.register(trace(0, head=11), exit_targets=())


class TestUnlinking:
    def test_removal_unpatches_both_directions(self):
        linker = TraceLinker()
        linker.register(trace(0, head=10), exit_targets=(20,))
        linker.register(trace(1, head=20), exit_targets=(10,))
        unlinked = linker.remove(1)
        assert unlinked == 2
        assert linker.n_links == 0
        assert not linker.is_linked(0, 1)
        linker.check_invariants()

    def test_remove_unknown_raises(self):
        with pytest.raises(UnknownTraceError):
            TraceLinker().remove(5)

    def test_remove_module_unlinks_everything_of_module(self):
        linker = TraceLinker()
        linker.register(trace(0, head=10, module_id=0), exit_targets=(20, 30))
        linker.register(trace(1, head=20, module_id=7), exit_targets=())
        linker.register(trace(2, head=30, module_id=7), exit_targets=())
        assert linker.n_links == 2
        linker.remove_module(7)
        assert linker.n_traces == 1
        assert linker.n_links == 0
        linker.check_invariants()

    def test_stats_accumulate(self):
        linker = TraceLinker()
        linker.register(trace(0, head=10), exit_targets=(20,))
        linker.register(trace(1, head=20), exit_targets=())
        linker.remove(1)
        assert linker.stats.links_patched == 1
        assert linker.stats.links_unpatched == 1


class TestTransitions:
    def test_linked_transition_counts(self):
        linker = TraceLinker()
        linker.register(trace(0, head=10), exit_targets=(20,))
        linker.register(trace(1, head=20), exit_targets=())
        assert linker.record_transition(0, 1)
        assert not linker.record_transition(1, 0)  # no link that way
        assert not linker.record_transition(None, 0)  # from dispatcher
        assert linker.stats.linked_transitions == 1
        assert linker.stats.unlinked_transitions == 2
        assert linker.stats.switches_avoided == 2


class TestRuntimeIntegration:
    def test_loop_trace_transitions_recorded(self):
        from repro.isa.program import tiny_loop_program
        from repro.runtime.system import record_session
        from repro.sim.phases import Segment, SessionScript

        program = tiny_loop_program(iterations_mean=10_000.0)
        script = SessionScript().add(
            Segment(entry_block=program.entry_block, n_blocks=2000)
        )
        from repro.runtime.system import DynOptRuntime
        from repro.sim.engine import ExecutionEngine

        runtime = DynOptRuntime(program)
        runtime.run(ExecutionEngine(program, script, seed=1))
        stats = runtime.linker.stats
        # The loop trace links back to itself?  No self-links; its
        # re-entries come straight from its own exit, but a self-link
        # is excluded, so transitions are unlinked here.
        assert stats.linked_transitions + stats.unlinked_transitions > 0
        runtime.linker.check_invariants()
