"""Unit/integration tests for the DynOptRuntime front end."""

from __future__ import annotations

import pytest

from repro.isa.modules import ModuleKind
from repro.isa.program import ProgramBuilder, tiny_loop_program
from repro.runtime.selection import TraceSelectionConfig
from repro.runtime.system import DynOptRuntime, record_session
from repro.sim.phases import LoadModule, Segment, SessionScript, UnloadModule
from repro.tracelog.records import (
    EndOfLog,
    ModuleUnmap,
    TraceAccess,
    TraceCreate,
)


def loop_session(iterations_mean=10_000.0, n_blocks=2_000, threshold=50):
    program = tiny_loop_program(iterations_mean=iterations_mean)
    script = SessionScript(duration_seconds=1.0)
    script.add(Segment(entry_block=program.entry_block, n_blocks=n_blocks))
    selection = TraceSelectionConfig(threshold=threshold)
    return record_session(program, script, seed=11, selection=selection)


class TestTraceCreation:
    def test_hot_loop_becomes_a_trace(self):
        log = loop_session()
        creates = log.creates()
        assert len(creates) == 1
        assert creates[0].size > 0

    def test_threshold_delays_creation(self):
        """The trace must appear only after the head has run
        `threshold` times in the bb cache."""
        low = loop_session(threshold=5)
        high = loop_session(threshold=200)
        assert low.creates()[0].time < high.creates()[0].time

    def test_accesses_follow_creation(self):
        log = loop_session()
        create_time = log.creates()[0].time
        accesses = [r for r in log.records if isinstance(r, TraceAccess)]
        assert accesses, "the loop must re-enter its trace"
        assert all(a.time >= create_time for a in accesses)

    def test_log_validates_and_terminates(self):
        log = loop_session()
        log.validate()
        assert isinstance(log.records[-1], EndOfLog)

    def test_access_compression_produces_repeats(self):
        log = loop_session(n_blocks=5_000)
        accesses = [r for r in log.records if isinstance(r, TraceAccess)]
        # A tight loop re-enters its trace consecutively: compressed.
        assert max(a.repeat for a in accesses) > 10

    def test_deterministic_recording(self):
        assert loop_session().records == loop_session().records


class TestUnmapRecording:
    def build_dll_session(self):
        builder = ProgramBuilder("dlltest")
        main = builder.add_module("main.exe", ModuleKind.EXECUTABLE)
        dll = builder.add_module(
            "x.dll", ModuleKind.PLUGIN_DLL, unloadable=True, loaded=False
        )
        entry = builder.add_block(main)
        main_head, main_exit = builder.add_loop(
            main, body_blocks=2, iterations_mean=5000.0
        )
        builder.connect(entry, main_head, 1.0)
        dll_entry = builder.add_block(dll)
        dll_head, dll_exit = builder.add_loop(
            dll, body_blocks=2, iterations_mean=5000.0
        )
        builder.connect(dll_entry, dll_head, 1.0)
        builder.set_entry(entry)
        program = builder.finish()

        script = SessionScript(duration_seconds=1.0)
        script.add(Segment(entry_block=entry.block_id, n_blocks=500))
        script.add(LoadModule(module_id=dll.module_id))
        script.add(Segment(entry_block=dll_entry.block_id, n_blocks=500))
        script.add(UnloadModule(module_id=dll.module_id))
        script.add(Segment(entry_block=entry.block_id, n_blocks=500))
        return record_session(program, script, seed=5), dll.module_id

    def test_unmap_record_emitted(self):
        log, dll_id = self.build_dll_session()
        unmaps = [r for r in log.records if isinstance(r, ModuleUnmap)]
        assert [u.module_id for u in unmaps] == [dll_id]

    def test_dll_traces_created_before_unmap(self):
        log, dll_id = self.build_dll_session()
        unmap_time = next(
            r.time for r in log.records if isinstance(r, ModuleUnmap)
        )
        dll_creates = [c for c in log.creates() if c.module_id == dll_id]
        assert dll_creates
        assert all(c.time <= unmap_time for c in dll_creates)

    def test_no_dll_accesses_after_unmap(self):
        log, dll_id = self.build_dll_session()
        unmap_time = next(
            r.time for r in log.records if isinstance(r, ModuleUnmap)
        )
        dll_trace_ids = {c.trace_id for c in log.creates() if c.module_id == dll_id}
        late = [
            r for r in log.records
            if isinstance(r, TraceAccess)
            and r.trace_id in dll_trace_ids
            and r.time > unmap_time
        ]
        assert late == []

    def test_log_validates(self):
        log, _ = self.build_dll_session()
        log.validate()


class TestRuntimeInternals:
    def test_bb_cache_populated_before_trace(self):
        program = tiny_loop_program()
        runtime = DynOptRuntime(program, TraceSelectionConfig(threshold=10**9))
        from repro.sim.engine import ExecutionEngine
        from repro.sim.phases import Segment as Seg, SessionScript as Script

        script = Script()
        script.add(Seg(entry_block=program.entry_block, n_blocks=300))
        runtime.run(ExecutionEngine(program, script, seed=1))
        assert runtime.bbcache.n_blocks > 0
        assert runtime.traces == {}  # threshold unreachable

    def test_trace_head_marked_for_loop_target(self):
        program = tiny_loop_program()
        runtime = DynOptRuntime(program, TraceSelectionConfig(threshold=10**9))
        from repro.sim.engine import ExecutionEngine
        from repro.sim.phases import Segment as Seg, SessionScript as Script

        script = Script()
        script.add(Seg(entry_block=program.entry_block, n_blocks=300))
        runtime.run(ExecutionEngine(program, script, seed=1))
        backward_targets = {
            b.terminator.target_block
            for b in program.blocks.values()
            if b.ends_in_backward_branch and b.terminator is not None
        }
        for target in backward_targets:
            assert target in runtime.heads

    def test_footprint_matches_program(self):
        program = tiny_loop_program()
        runtime = DynOptRuntime(program)
        assert runtime.log.code_footprint == program.code_footprint
