"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import GenerationalConfig, PromotionMode
from repro.tracelog.records import (
    EndOfLog,
    ModuleUnmap,
    TraceAccess,
    TraceCreate,
    TraceLog,
)


@pytest.fixture
def small_log() -> TraceLog:
    """A tiny hand-written log: 6 traces, one unmap, mixed re-access."""
    log = TraceLog(benchmark="tiny", duration_seconds=1.0, code_footprint=2000)
    records = [
        TraceCreate(time=10, trace_id=0, size=100, module_id=0),
        TraceCreate(time=20, trace_id=1, size=150, module_id=0),
        TraceAccess(time=30, trace_id=0, repeat=3),
        TraceCreate(time=40, trace_id=2, size=120, module_id=1),
        TraceAccess(time=50, trace_id=2),
        TraceCreate(time=60, trace_id=3, size=200, module_id=0),
        TraceAccess(time=70, trace_id=1),
        ModuleUnmap(time=80, module_id=1),
        TraceCreate(time=90, trace_id=4, size=90, module_id=0),
        TraceAccess(time=100, trace_id=0, repeat=2),
        TraceCreate(time=110, trace_id=5, size=110, module_id=0),
        TraceAccess(time=120, trace_id=3),
        EndOfLog(time=200),
    ]
    for record in records:
        log.append(record)
    return log


@pytest.fixture
def default_config() -> GenerationalConfig:
    """The paper's best generational layout."""
    return GenerationalConfig()


@pytest.fixture
def on_eviction_config() -> GenerationalConfig:
    """A 34-33-33 on-eviction layout (Figure 9's first bar)."""
    return GenerationalConfig(
        nursery_fraction=0.34,
        probation_fraction=0.33,
        persistent_fraction=0.33,
        promotion_threshold=10,
        promotion_mode=PromotionMode.ON_EVICTION,
    )


def make_churn_log(
    n_traces: int = 60,
    size: int = 100,
    accesses_per_trace: int = 4,
    benchmark: str = "churn",
) -> TraceLog:
    """A log that creates traces continuously and re-accesses each a
    few times shortly after creation — enough churn to force evictions
    in any cache smaller than the total."""
    log = TraceLog(
        benchmark=benchmark,
        duration_seconds=1.0,
        code_footprint=n_traces * size,
    )
    time = 0
    for trace_id in range(n_traces):
        time += 10
        log.append(TraceCreate(time=time, trace_id=trace_id, size=size, module_id=0))
        for _ in range(accesses_per_trace):
            time += 5
            log.append(TraceAccess(time=time, trace_id=trace_id))
        # Re-touch an older trace to create conflict pressure.
        if trace_id >= 10:
            time += 5
            log.append(TraceAccess(time=time, trace_id=trace_id - 10))
    log.append(EndOfLog(time=time + 10))
    return log


@pytest.fixture
def churn_log() -> TraceLog:
    """Default churn log fixture."""
    return make_churn_log()
