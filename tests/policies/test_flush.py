"""Unit tests for the preemptive-flush (Dynamo-style) policy."""

from __future__ import annotations

import pytest

from repro.errors import CacheFullError, TraceTooLargeError
from repro.policies.flush import PreemptiveFlushCache


class TestPreemptiveFlush:
    def test_appends_until_full(self):
        cache = PreemptiveFlushCache(300)
        for trace_id in range(3):
            result = cache.insert(trace_id, 100, 0)
            assert result.evicted == []
            assert not result.flushed
        assert cache.n_flushes == 0

    def test_flushes_everything_when_full(self):
        cache = PreemptiveFlushCache(300)
        for trace_id in range(3):
            cache.insert(trace_id, 100, 0)
        result = cache.insert(3, 100, 0)
        assert result.flushed
        assert sorted(t.trace_id for t in result.evicted) == [0, 1, 2]
        assert cache.n_flushes == 1
        assert cache.arena.trace_ids() == [3]

    def test_pinned_traces_survive_flush(self):
        cache = PreemptiveFlushCache(300)
        for trace_id in range(3):
            cache.insert(trace_id, 100, 0)
        cache.pin(1)
        result = cache.insert(3, 100, 0)
        assert 1 in cache
        assert sorted(t.trace_id for t in result.evicted) == [0, 2]

    def test_insert_placed_around_pinned_survivor(self):
        cache = PreemptiveFlushCache(300)
        for trace_id in range(3):
            cache.insert(trace_id, 100, 0)
        cache.pin(0)  # occupies [0, 100)
        cache.insert(3, 100, 0)
        placement = cache.arena.placement_of(3)
        pinned = cache.arena.placement_of(0)
        assert placement.start >= pinned.end or placement.end <= pinned.start

    def test_pinned_blocking_everything_raises(self):
        cache = PreemptiveFlushCache(200)
        cache.insert(0, 100, 0)
        cache.insert(1, 100, 0)
        cache.pin(0)
        cache.pin(1)
        with pytest.raises(CacheFullError):
            cache.insert(2, 150, 0)

    def test_trace_too_large(self):
        cache = PreemptiveFlushCache(100)
        with pytest.raises(TraceTooLargeError):
            cache.insert(0, 101, 0)

    def test_uses_hole_from_forced_removal(self):
        cache = PreemptiveFlushCache(300)
        for trace_id in range(3):
            cache.insert(trace_id, 100, 0)
        cache.remove(1)
        result = cache.insert(3, 100, 0)
        assert not result.flushed
        assert cache.arena.placement_of(3).start == 100

    def test_flush_counter_accumulates(self):
        cache = PreemptiveFlushCache(200)
        for trace_id in range(9):
            cache.insert(trace_id, 100, 0)
        # Two inserts fit, then every other insert flushes.
        assert cache.n_flushes == 4
