"""Unit tests for the unbounded cache."""

from __future__ import annotations

from repro.policies.unbounded import UnboundedCache


class TestUnbounded:
    def test_never_evicts(self):
        cache = UnboundedCache()
        for trace_id in range(100):
            result = cache.insert(trace_id, 1000, 0)
            assert result.evicted == []
        assert cache.n_traces == 100

    def test_high_water_mark_tracks_total_created_bytes(self):
        cache = UnboundedCache()
        for trace_id in range(10):
            cache.insert(trace_id, 100, 0)
        assert cache.high_water_mark == 1000

    def test_forced_removal_does_not_lower_high_water(self):
        """maxCache is the peak: deleting unmapped traces leaves holes
        but the footprint already grew (Figure 1's definition)."""
        cache = UnboundedCache()
        for trace_id in range(10):
            cache.insert(trace_id, 100, module_id=trace_id % 2)
        cache.remove_module(1)
        assert cache.high_water_mark == 1000
        cache.insert(100, 100, 0)
        assert cache.high_water_mark == 1100

    def test_holes_are_not_reused(self):
        cache = UnboundedCache()
        cache.insert(0, 100, module_id=5)
        cache.insert(1, 100, module_id=0)
        cache.remove_module(5)
        cache.insert(2, 50, module_id=0)
        assert cache.arena.placement_of(2).start == 200
