"""Unit tests for the pseudo-circular local policy (Section 4.3)."""

from __future__ import annotations

import pytest

from repro.errors import CacheFullError, DuplicateTraceError, TraceTooLargeError
from repro.policies.pseudocircular import PseudoCircularCache


def fill_sequential(cache: PseudoCircularCache, n: int, size: int = 100):
    """Insert traces 0..n-1 of equal size."""
    for trace_id in range(n):
        cache.insert(trace_id, size, module_id=0, time=trace_id)


class TestBasicRotation:
    def test_fills_empty_cache_without_eviction(self):
        cache = PseudoCircularCache(1000)
        for trace_id in range(10):
            result = cache.insert(trace_id, 100, 0)
            assert result.evicted == []
        assert cache.used_bytes == 1000

    def test_pointer_advances_with_insertions(self):
        cache = PseudoCircularCache(1000)
        cache.insert(1, 100, 0)
        assert cache.pointer == 100
        cache.insert(2, 300, 0)
        assert cache.pointer == 400

    def test_wraps_and_evicts_oldest_first(self):
        cache = PseudoCircularCache(1000)
        fill_sequential(cache, 10)  # full
        result = cache.insert(10, 100, 0)
        assert [t.trace_id for t in result.evicted] == [0]
        assert 0 not in cache
        assert 10 in cache

    def test_fifo_order_over_many_insertions(self):
        cache = PseudoCircularCache(500)
        evicted_order = []
        for trace_id in range(20):
            result = cache.insert(trace_id, 100, 0)
            evicted_order.extend(t.trace_id for t in result.evicted)
        # Strict FIFO: evictions happen in insertion order.
        assert evicted_order == list(range(15))

    def test_pointer_wraps_to_zero_at_capacity(self):
        cache = PseudoCircularCache(300)
        fill_sequential(cache, 3)
        assert cache.pointer == 0

    def test_large_insert_evicts_multiple(self):
        cache = PseudoCircularCache(1000)
        fill_sequential(cache, 10)
        result = cache.insert(100, 250, 0)
        assert [t.trace_id for t in result.evicted] == [0, 1, 2]

    def test_hits_do_not_affect_eviction_order(self):
        cache = PseudoCircularCache(300)
        fill_sequential(cache, 3)
        cache.touch(0, time=100, count=50)  # FIFO ignores recency
        result = cache.insert(3, 100, 0)
        assert [t.trace_id for t in result.evicted] == [0]


class TestPinnedTraces:
    def test_pinned_trace_never_evicted(self):
        cache = PseudoCircularCache(300)
        fill_sequential(cache, 3)
        cache.pin(0)
        for trace_id in range(3, 9):
            cache.insert(trace_id, 100, 0)
            assert 0 in cache

    def test_pointer_resets_after_pinned_run(self):
        cache = PseudoCircularCache(300)
        fill_sequential(cache, 3)
        cache.pin(0)
        result = cache.insert(3, 100, 0)
        # Trace 0 occupies [0,100); the insert wraps, skips it and
        # evicts trace 1 at [100,200).
        assert [t.trace_id for t in result.evicted] == [1]
        assert cache.arena.placement_of(3).start == 100

    def test_unpinned_trace_becomes_evictable(self):
        cache = PseudoCircularCache(300)
        fill_sequential(cache, 3)
        cache.pin(0)
        cache.insert(3, 100, 0)  # evicts 1
        cache.unpin(0)
        evicted = []
        for trace_id in range(4, 7):
            evicted.extend(
                t.trace_id for t in cache.insert(trace_id, 100, 0).evicted
            )
        assert 0 in evicted

    def test_all_pinned_raises_cache_full(self):
        cache = PseudoCircularCache(300)
        fill_sequential(cache, 3)
        for trace_id in range(3):
            cache.pin(trace_id)
        with pytest.raises(CacheFullError):
            cache.insert(99, 100, 0)

    def test_insert_fits_between_pinned_traces(self):
        cache = PseudoCircularCache(300)
        fill_sequential(cache, 3)
        cache.pin(0)
        cache.pin(2)
        result = cache.insert(3, 100, 0)
        assert [t.trace_id for t in result.evicted] == [1]
        assert cache.arena.placement_of(3).start == 100


class TestForcedEvictionsAndHoles:
    def test_remove_leaves_hole_that_rotation_ignores(self):
        cache = PseudoCircularCache(400)
        fill_sequential(cache, 4)
        cache.remove(1)  # hole at [100,200)
        # Pointer is at 0 (wrapped); next insert goes at 0, not the hole.
        result = cache.insert(4, 100, 0)
        assert cache.arena.placement_of(4).start == 0
        assert [t.trace_id for t in result.evicted] == [0]

    def test_fill_holes_mode_uses_hole_first(self):
        cache = PseudoCircularCache(400, fill_holes=True)
        fill_sequential(cache, 4)
        cache.remove(1)
        result = cache.insert(4, 100, 0)
        assert cache.arena.placement_of(4).start == 100
        assert result.evicted == []

    def test_remove_module_removes_only_that_module(self):
        cache = PseudoCircularCache(400)
        cache.insert(0, 100, module_id=0)
        cache.insert(1, 100, module_id=7)
        cache.insert(2, 100, module_id=7)
        victims = cache.remove_module(7)
        assert sorted(t.trace_id for t in victims) == [1, 2]
        assert 0 in cache


class TestErrors:
    def test_trace_too_large(self):
        cache = PseudoCircularCache(100)
        with pytest.raises(TraceTooLargeError):
            cache.insert(1, 101, 0)

    def test_duplicate_insert(self):
        cache = PseudoCircularCache(300)
        cache.insert(1, 100, 0)
        with pytest.raises(DuplicateTraceError):
            cache.insert(1, 100, 0)

    def test_exact_capacity_trace_fits(self):
        cache = PseudoCircularCache(100)
        cache.insert(1, 100, 0)
        assert cache.used_bytes == 100


class TestInvariantsUnderChurn:
    def test_mixed_workload_stays_consistent(self):
        cache = PseudoCircularCache(1000)
        for trace_id in range(50):
            cache.insert(trace_id, 60 + (trace_id * 13) % 90, 0, time=trace_id)
            if trace_id % 7 == 0 and trace_id in cache:
                cache.pin(trace_id)
            if trace_id % 11 == 3:
                resident = cache.arena.trace_ids()
                victim = resident[len(resident) // 2]
                if not cache.get(victim).pinned:
                    cache.remove(victim)
            if trace_id % 13 == 5 and (trace_id - 5) in cache:
                cache.unpin(trace_id - 5)
            cache.check_invariants()
        assert cache.used_bytes <= cache.capacity
