"""Unit tests for the pure circular buffer reference policy."""

from __future__ import annotations

import pytest

from repro.errors import CacheFullError, TraceTooLargeError
from repro.policies.circular import CircularCache
from repro.policies.pseudocircular import PseudoCircularCache


class TestCircular:
    def test_basic_fifo(self):
        cache = CircularCache(300)
        for trace_id in range(3):
            cache.insert(trace_id, 100, 0)
        result = cache.insert(3, 100, 0)
        assert [t.trace_id for t in result.evicted] == [0]

    def test_rejects_pinned_eviction(self):
        cache = CircularCache(200)
        cache.insert(0, 100, 0)
        cache.insert(1, 100, 0)
        cache.pin(0)
        with pytest.raises(CacheFullError):
            cache.insert(2, 100, 0)

    def test_trace_too_large(self):
        cache = CircularCache(100)
        with pytest.raises(TraceTooLargeError):
            cache.insert(0, 200, 0)

    def test_matches_pseudocircular_when_nothing_pinned(self):
        """The pseudo-circular policy must behave exactly like the pure
        circular buffer whenever no trace is pinned (its design
        contract: 'from a distance, this policy behaves as a circular
        buffer')."""
        pure = CircularCache(700)
        pseudo = PseudoCircularCache(700)
        sizes = [90, 130, 60, 210, 100, 80, 150, 70, 120, 200, 90, 60]
        for trace_id, size in enumerate(sizes):
            evicted_pure = [
                t.trace_id for t in pure.insert(trace_id, size, 0).evicted
            ]
            evicted_pseudo = [
                t.trace_id for t in pseudo.insert(trace_id, size, 0).evicted
            ]
            assert evicted_pure == evicted_pseudo
            assert pure.pointer == pseudo.pointer
            assert pure.arena.trace_ids() == pseudo.arena.trace_ids()
