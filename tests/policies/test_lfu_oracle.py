"""Unit tests for the LFU and oracle local policies."""

from __future__ import annotations

import pytest

from repro.errors import CacheFullError, TraceTooLargeError
from repro.policies.lfu import LFUCache
from repro.policies.oracle import NEVER, OracleCache, access_schedule
from repro.tracelog.records import EndOfLog, TraceAccess, TraceCreate, TraceLog


class TestLFU:
    def test_evicts_least_frequent(self):
        cache = LFUCache(300)
        for trace_id in range(3):
            cache.insert(trace_id, 100, 0)
        cache.touch(0, time=10, count=5)
        cache.touch(2, time=11, count=2)
        result = cache.insert(3, 100, 0)
        assert [t.trace_id for t in result.evicted] == [1]

    def test_frequency_ties_break_by_age(self):
        cache = LFUCache(300)
        for trace_id in range(3):
            cache.insert(trace_id, 100, 0, time=trace_id)
        result = cache.insert(3, 100, 0, time=10)
        assert [t.trace_id for t in result.evicted] == [0]

    def test_skips_pinned(self):
        cache = LFUCache(200)
        cache.insert(0, 100, 0)
        cache.insert(1, 100, 0)
        cache.pin(0)
        result = cache.insert(2, 100, 0)
        assert [t.trace_id for t in result.evicted] == [1]

    def test_all_pinned_raises(self):
        cache = LFUCache(100)
        cache.insert(0, 100, 0)
        cache.pin(0)
        with pytest.raises(CacheFullError):
            cache.insert(1, 50, 0)

    def test_too_large(self):
        with pytest.raises(TraceTooLargeError):
            LFUCache(100).insert(0, 200, 0)

    def test_invariants_under_churn(self):
        cache = LFUCache(1000)
        for trace_id in range(50):
            cache.insert(trace_id, 60 + (trace_id * 31) % 100, 0, time=trace_id)
            if trace_id % 4 == 0:
                cache.touch(cache.arena.trace_ids()[0], time=trace_id, count=3)
            cache.check_invariants()


class TestOracleSchedule:
    def make_log(self):
        log = TraceLog(benchmark="x", duration_seconds=1.0, code_footprint=100)
        log.append(TraceCreate(time=1, trace_id=0, size=10, module_id=0))
        log.append(TraceCreate(time=2, trace_id=1, size=10, module_id=0))
        log.append(TraceAccess(time=5, trace_id=0))
        log.append(TraceAccess(time=7, trace_id=1))
        log.append(TraceAccess(time=9, trace_id=0))
        log.append(EndOfLog(time=20))
        return log

    def test_access_schedule_extraction(self):
        schedule = access_schedule(self.make_log())
        assert schedule == {0: [5, 9], 1: [7]}

    def test_next_use_respects_now(self):
        cache = OracleCache(100)
        cache.load_schedule({0: [5, 9]})
        assert cache.next_use(0) == 5.0
        cache.observe_time(5)
        assert cache.next_use(0) == 9.0
        cache.observe_time(9)
        assert cache.next_use(0) == NEVER

    def test_unknown_trace_is_never_used(self):
        cache = OracleCache(100)
        assert cache.next_use(99) == NEVER


class TestOracleEviction:
    def test_evicts_farthest_next_use(self):
        cache = OracleCache(300)
        cache.load_schedule({0: [100], 1: [50], 2: [10]})
        for trace_id in range(3):
            cache.insert(trace_id, 100, 0, time=trace_id)
        result = cache.insert(3, 100, 0, time=5)
        assert [t.trace_id for t in result.evicted] == [0]

    def test_never_used_evicted_first(self):
        cache = OracleCache(300)
        cache.load_schedule({0: [100], 2: [10]})  # trace 1 never used
        for trace_id in range(3):
            cache.insert(trace_id, 100, 0, time=trace_id)
        result = cache.insert(3, 100, 0, time=5)
        assert [t.trace_id for t in result.evicted] == [1]

    def test_oracle_beats_fifo_on_adversarial_log(self):
        """A log built to defeat FIFO: the hot trace is re-accessed
        just after FIFO's pointer would have cycled past it."""
        from repro.cachesim.simulator import simulate_log
        from repro.core.unified import UnifiedCacheManager
        from repro.experiments.headroom import oracle_manager

        log = TraceLog(benchmark="adv", duration_seconds=1.0, code_footprint=1000)
        time = 0
        log.append(TraceCreate(time=time, trace_id=0, size=100, module_id=0))
        next_id = 1
        for _ in range(30):
            time += 1
            log.append(TraceCreate(time=time, trace_id=next_id, size=100, module_id=0))
            next_id += 1
            time += 1
            log.append(TraceAccess(time=time, trace_id=0))
        log.append(EndOfLog(time=time + 1))

        capacity = 250  # two traces + change
        fifo = simulate_log(log, UnifiedCacheManager(capacity))
        oracle = simulate_log(log, oracle_manager(log, capacity))
        assert oracle.stats.misses < fifo.stats.misses
        assert oracle.stats.misses == 0  # it always keeps trace 0
