"""Unit tests for the LRU local policy."""

from __future__ import annotations

import pytest

from repro.errors import CacheFullError, TraceTooLargeError
from repro.policies.lru import LRUCache


class TestLRUEviction:
    def test_evicts_least_recently_used(self):
        cache = LRUCache(300)
        for trace_id in range(3):
            cache.insert(trace_id, 100, 0)
        cache.touch(0, time=100)  # 0 becomes MRU; 1 is now LRU
        result = cache.insert(3, 100, 0)
        assert [t.trace_id for t in result.evicted] == [1]
        assert 0 in cache

    def test_untouched_eviction_is_insertion_order(self):
        cache = LRUCache(300)
        for trace_id in range(3):
            cache.insert(trace_id, 100, 0)
        result = cache.insert(3, 100, 0)
        assert [t.trace_id for t in result.evicted] == [0]

    def test_evicts_multiple_until_contiguous_fit(self):
        cache = LRUCache(300)
        for trace_id in range(3):
            cache.insert(trace_id, 100, 0)
        result = cache.insert(3, 250, 0)
        # Needs a 250-byte contiguous hole: evicting 0 and 1 frees
        # [0, 200); still not enough; evicting 2 frees [0, 300).
        assert [t.trace_id for t in result.evicted] == [0, 1, 2]

    def test_skips_pinned(self):
        cache = LRUCache(300)
        for trace_id in range(3):
            cache.insert(trace_id, 100, 0)
        cache.pin(0)
        result = cache.insert(3, 100, 0)
        assert [t.trace_id for t in result.evicted] == [1]
        assert 0 in cache

    def test_all_pinned_raises(self):
        cache = LRUCache(200)
        cache.insert(0, 100, 0)
        cache.insert(1, 100, 0)
        cache.pin(0)
        cache.pin(1)
        with pytest.raises(CacheFullError):
            cache.insert(2, 100, 0)

    def test_trace_too_large(self):
        cache = LRUCache(100)
        with pytest.raises(TraceTooLargeError):
            cache.insert(0, 150, 0)

    def test_uses_existing_hole_without_eviction(self):
        cache = LRUCache(300)
        for trace_id in range(3):
            cache.insert(trace_id, 100, 0)
        cache.remove(1)
        result = cache.insert(3, 80, 0)
        assert result.evicted == []
        assert cache.arena.placement_of(3).start == 100

    def test_merges_adjacent_freed_ranges(self):
        cache = LRUCache(300)
        cache.insert(0, 100, 0)
        cache.insert(1, 100, 0)
        cache.insert(2, 100, 0)
        # 0 and 1 are adjacent LRU victims; merged they fit 200 bytes.
        result = cache.insert(3, 200, 0)
        assert [t.trace_id for t in result.evicted] == [0, 1]

    def test_remove_clears_recency_state(self):
        cache = LRUCache(300)
        cache.insert(0, 100, 0)
        cache.remove(0)
        cache.insert(0, 100, 0)  # re-insert must not raise
        assert 0 in cache

    def test_invariants_under_churn(self):
        cache = LRUCache(1000)
        for trace_id in range(60):
            cache.insert(trace_id, 50 + (trace_id * 37) % 120, 0, time=trace_id)
            if trace_id % 3 == 0:
                resident = cache.arena.trace_ids()
                cache.touch(resident[0], time=trace_id)
            cache.check_invariants()
