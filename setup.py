"""Setuptools shim.

The canonical metadata lives in pyproject.toml; this file exists so the
package can be installed editable (``pip install -e .``) on
environments whose setuptools/pip stack predates full PEP 660 support
(no ``wheel`` package available).
"""

from setuptools import setup

setup()
