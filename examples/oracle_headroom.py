#!/usr/bin/env python3
"""How close do generational caches get to clairvoyance?

Two extension studies beyond the paper:

1. **Capacity sensitivity** — sweep the total cache budget from 12.5%
   to 100% of the unbounded footprint.  Management matters most in the
   middle: at tiny budgets everything thrashes, at full budget nothing
   does ("it is these very benchmarks for which cache management is
   least critical").
2. **Oracle headroom** — compare the unified FIFO baseline and the
   generational hierarchy against a Belady-style oracle that evicts
   the trace with the farthest next use.  The oracle needs the future,
   so it is a bound, not a design; the interesting number is how much
   of the FIFO-to-oracle gap the (implementable!) generational design
   recovers.

Run:
    python examples/oracle_headroom.py [benchmark]
"""

import sys

from repro.experiments.base import render_table
from repro.experiments.capacity import run as run_capacity
from repro.experiments.headroom import run as run_headroom


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "word"
    scale = 8.0
    print(render_table(run_capacity(benchmark=benchmark, scale_multiplier=scale)))
    print()
    subset = list(dict.fromkeys([benchmark, "gzip", "art"]))
    print(render_table(run_headroom(subset=subset, scale_multiplier=scale)))
    print()
    print("reading: GapClosedPct = (unified - generational) / (unified - oracle);")
    print("100% would mean the generational hierarchy matched clairvoyance.")


if __name__ == "__main__":
    main()
