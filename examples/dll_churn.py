#!/usr/bin/env python3
"""Unmapped memory and undeletable traces: the hard cases of Section 3.4/4.2.

Builds a small hand-crafted log that exhibits the two complications the
pseudo-circular policy was designed around:

* program-forced evictions — a DLL unmaps mid-run, punching holes into
  the cache that the policy deliberately does not chase;
* undeletable traces — an exception pins a trace, and the eviction
  pointer must skip over it.

The example prints the cache layout evolving over time, so you can see
the rotation, the holes, and the pinned trace surviving churn.

Run:
    python examples/dll_churn.py
"""

from repro import PseudoCircularCache
from repro.core.unified import UnifiedCacheManager
from repro.cachesim.simulator import simulate_log
from repro.tracelog.records import (
    EndOfLog,
    ModuleUnmap,
    TraceAccess,
    TraceCreate,
    TraceLog,
    TracePin,
    TraceUnpin,
)


def show(cache: PseudoCircularCache, title: str) -> None:
    """Render the arena as a 64-column strip."""
    columns = 64
    scale = cache.capacity / columns
    strip = ["."] * columns
    for trace in cache.traces():
        placement = cache.arena.placement_of(trace.trace_id)
        lo = int(placement.start / scale)
        hi = max(lo + 1, int(placement.end / scale))
        symbol = "#" if trace.pinned else str(trace.trace_id % 10)
        for i in range(lo, min(hi, columns)):
            strip[i] = symbol
    pointer = int(cache.pointer / scale)
    gauge = [" "] * columns
    gauge[min(pointer, columns - 1)] = "^"
    print(f"{title:<28s} |{''.join(strip)}|")
    print(f"{'':<28s}  {''.join(gauge)} ")


def main() -> None:
    cache = PseudoCircularCache(1600, name="demo")

    print("1. fill the cache with eight 200-byte traces")
    for trace_id in range(8):
        cache.insert(trace_id, 200, module_id=trace_id % 2, time=trace_id)
    show(cache, "full cache")

    print("\n2. a DLL (module 1) unmaps: its traces must go NOW")
    for trace in cache.traces_of_module(1):
        cache.remove(trace.trace_id)
    show(cache, "holes from forced eviction")
    print(f"   fragmentation: {cache.fragmentation():.2f}")

    print("\n3. an exception pins trace 2 (undeletable, Section 4.2)")
    cache.pin(2)
    show(cache, "trace 2 pinned (#)")

    print("\n4. new traces rotate in; the pointer skips the pinned run")
    for trace_id in range(8, 16):
        cache.insert(trace_id, 200, module_id=0, time=trace_id)
        assert 2 in cache, "pinned trace must survive"
    show(cache, "after churn (2 survived)")

    print("\n5. the exception returns; trace 2 unpins and is evictable")
    cache.unpin(2)
    for trace_id in range(16, 22):
        cache.insert(trace_id, 200, module_id=0, time=trace_id)
    show(cache, "after unpin + churn")
    print(f"   trace 2 resident: {2 in cache}")

    print("\n6. the same story, replayed from a verbose log")
    log = TraceLog(benchmark="demo", duration_seconds=1.0, code_footprint=1000)
    time = 0
    for trace_id in range(8):
        time += 1
        log.append(TraceCreate(time=time, trace_id=trace_id, size=200,
                               module_id=trace_id % 2))
    log.append(TracePin(time=time + 1, trace_id=2))
    log.append(ModuleUnmap(time=time + 2, module_id=1))
    time += 3
    for trace_id in range(8, 16):
        time += 1
        log.append(TraceCreate(time=time, trace_id=trace_id, size=200, module_id=0))
    log.append(TraceAccess(time=time + 1, trace_id=2, repeat=3))
    log.append(TraceUnpin(time=time + 2, trace_id=2))
    log.append(EndOfLog(time=time + 3))

    result = simulate_log(log, UnifiedCacheManager(1600))
    print(f"   replay: {result.stats.unmap_evictions} unmap deletions, "
          f"{result.stats.evictions} capacity evictions, "
          f"{result.stats.hits} hits, {result.stats.misses} misses")
    print("   (the pinned trace's accesses all hit: it was undeletable)")


if __name__ == "__main__":
    main()
