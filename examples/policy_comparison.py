#!/usr/bin/env python3
"""Compare local cache-management policies under one workload.

Section 4 of the paper surveys local (single-cache) policies: the
pseudo-circular buffer it adopts, LRU, and Dynamo's preemptive flush.
This example replays one recorded log against each of them — plus the
unbounded cache as the no-management reference — and reports miss
rates, fragmentation, and flush counts.

Run:
    python examples/policy_comparison.py [benchmark]
"""

import sys

from repro import UnifiedCacheManager, get_profile, simulate_log, synthesize_log
from repro.errors import CacheFullError
from repro.tracelog.stats import summarize_log
from repro.units import format_bytes, format_percent

POLICIES = ("pseudo-circular", "circular", "lru", "lfu", "preemptive-flush")


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "acroread"
    profile = get_profile(name)
    log = synthesize_log(profile, seed=7)
    stats = summarize_log(log)
    capacity = max(4096, stats.total_trace_bytes // 2)
    print(f"workload {name}: {stats.n_traces} traces, "
          f"{format_bytes(stats.total_trace_bytes)}; "
          f"cache {format_bytes(capacity)}\n")
    print(f"{'policy':>18s} {'miss rate':>10s} {'misses':>8s} "
          f"{'evictions':>10s} {'frag':>6s}")
    for policy in POLICIES:
        manager = UnifiedCacheManager(capacity, policy)
        try:
            result = simulate_log(log, manager)
        except CacheFullError as error:
            # The pure circular buffer cannot tolerate undeletable
            # traces — Section 4.2's argument for the pseudo-circular
            # variant, demonstrated live.
            print(f"{policy:>18s} {'FAILED':>10s}  ({error})")
            continue
        fragmentation = result.final_fragmentation["unified"]
        extra = ""
        if policy == "preemptive-flush":
            evictions = result.stats.flush_evictions
            extra = f"  ({manager.cache.n_flushes} flushes)"  # type: ignore[attr-defined]
        else:
            evictions = result.stats.evictions
        print(
            f"{policy:>18s} {format_percent(result.miss_rate):>10s} "
            f"{result.stats.misses:>8d} {evictions:>10d} "
            f"{fragmentation:6.2f}{extra}"
        )

    unbounded = UnifiedCacheManager(1 << 40, "unbounded")
    result = simulate_log(log, unbounded)
    print(
        f"{'unbounded':>18s} {format_percent(result.miss_rate):>10s} "
        f"{result.stats.misses:>8d} {'-':>10s} {'-':>6s}"
        f"  (high water {format_bytes(unbounded.cache.high_water_mark)})"  # type: ignore[attr-defined]
    )


if __name__ == "__main__":
    main()
