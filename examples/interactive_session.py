#!/usr/bin/env python3
"""Drive the full dynamic-optimizer pipeline on an interactive app.

Unlike the quickstart (which uses the calibrated log synthesizer), this
example runs the complete substrate the way DynamoRIO runs a process:

  synthetic program --(execution engine)--> block events
                --(DynOptRuntime)--> basic-block cache, trace heads,
                                     NET superblocks, verbose trace log

The program models a document-tool session: a startup phase, a
persistent core the UI keeps re-entering, and per-phase plugin DLLs
that load, run and unload — each unload forcing immediate deletion of
its traces from the code cache (Section 3.4).

Run:
    python examples/interactive_session.py
"""

from repro import (
    BEST_CONFIG,
    GenerationalCacheManager,
    UnifiedCacheManager,
    get_profile,
    simulate_log,
)
from repro.metrics.lifetimes import BUCKET_LABELS, lifetime_histogram
from repro.tracelog.stats import summarize_log
from repro.units import format_bytes, format_percent
from repro.workloads.generator import build_program
from repro.runtime.system import record_session


def main() -> None:
    profile = get_profile("winzip")
    program, script = build_program(profile, seed=2024)
    print(f"program: {len(program.blocks)} basic blocks across "
          f"{len(program.modules)} modules "
          f"({sum(1 for m in program.modules.values() if m.unloadable)} "
          "unloadable DLLs)")

    log = record_session(program, script, seed=2024)
    stats = summarize_log(log)
    print(f"recorded log: {stats.n_traces} traces, "
          f"{format_bytes(stats.total_trace_bytes)}, "
          f"{stats.n_accesses} trace entries, {stats.n_unmaps} DLL unmaps")
    print(f"unmapped code: {format_percent(stats.unmapped_fraction)} "
          "of generated trace bytes (Figure 4's metric)")

    histogram = lifetime_histogram(log)
    print("\ntrace lifetimes (Figure 6's buckets):")
    for label, value in zip(BUCKET_LABELS, histogram.fractions):
        bar = "#" * int(value / 2)
        print(f"  {label:>8s}  {value:5.1f}%  {bar}")
    print(f"  U-shaped: {histogram.is_u_shaped}")

    capacity = max(4096, stats.total_trace_bytes // 2)
    unified = simulate_log(log, UnifiedCacheManager(capacity))
    generational = simulate_log(
        log, GenerationalCacheManager(capacity, BEST_CONFIG)
    )
    print(f"\nreplay at {format_bytes(capacity)} total cache:")
    print(f"  unified      miss rate {format_percent(unified.miss_rate)}")
    print(f"  generational miss rate {format_percent(generational.miss_rate)} "
          f"(hits by cache: {generational.stats.hits_by_cache})")


if __name__ == "__main__":
    main()
