#!/usr/bin/env python3
"""Explore the generational configuration space (Section 6.1).

Sweeps nursery/probation/persistent proportions and promotion
thresholds for one benchmark, then isolates the paper's second
observation — the link between probation size and promotion threshold:
as the probation cache shrinks, the threshold that performs best
shrinks with it (with a too-high threshold, long-lived traces are
evicted from probation before they qualify for promotion).

Run:
    python examples/config_sweep.py [benchmark]
"""

import sys

from repro.experiments.base import render_table
from repro.experiments.sweep import probation_threshold_link, run


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "excel"
    scale = 4.0  # keep the sweep snappy
    print(render_table(run(benchmark=benchmark, scale_multiplier=scale)))
    print()
    print(render_table(
        probation_threshold_link(benchmark=benchmark, scale_multiplier=scale)
    ))


if __name__ == "__main__":
    main()
