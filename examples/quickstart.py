#!/usr/bin/env python3
"""Quickstart: unified vs generational code-cache management.

Synthesizes the trace log of the paper's flagship workload (Microsoft
Word under manual interaction, Table 1), sizes a unified baseline cache
at half the unbounded footprint (the paper's Section 6 rule), and
compares it against the paper's best generational layout: a
45%-10%-45% nursery/probation/persistent split with single-hit
promotion.

Run:
    python examples/quickstart.py
"""

from repro import (
    BEST_CONFIG,
    GenerationalCacheManager,
    TABLE2_COSTS,
    UnifiedCacheManager,
    get_profile,
    simulate_log,
    synthesize_log,
)
from repro.units import format_bytes, format_percent


def main() -> None:
    # 1. Record one verbose trace log (reused for every configuration,
    #    exactly like the paper's methodology).
    profile = get_profile("word")
    log = synthesize_log(profile, seed=42)
    print(f"workload: {profile.name} ({profile.description})")
    print(
        f"  {log.n_traces} traces, {log.n_accesses} trace entries, "
        f"{format_bytes(log.total_trace_bytes)} of trace code"
    )

    # 2. Size the caches: unified baseline = 0.5 * maxCache.
    capacity = log.total_trace_bytes // 2
    print(f"  cache budget: {format_bytes(capacity)} (half the unbounded size)")

    # 3. Replay against both managers with the Table 2 cost model.
    unified = simulate_log(log, UnifiedCacheManager(capacity), TABLE2_COSTS)
    generational = simulate_log(
        log, GenerationalCacheManager(capacity, BEST_CONFIG), TABLE2_COSTS
    )

    # 4. Report the paper's three headline metrics.
    reduction = (unified.miss_rate - generational.miss_rate) / unified.miss_rate
    ratio = generational.overhead_instructions / unified.overhead_instructions
    print()
    print(f"unified      miss rate: {format_percent(unified.miss_rate)} "
          f"({unified.stats.misses} misses)")
    print(f"generational miss rate: {format_percent(generational.miss_rate)} "
          f"({generational.stats.misses} misses)")
    print(f"miss-rate reduction:    {format_percent(reduction)}  (Figure 9)")
    print(f"misses eliminated:      "
          f"{unified.stats.misses - generational.stats.misses}  (Figure 10)")
    print(f"overhead ratio:         {format_percent(ratio)}  (Figure 11; <100% is a win)")
    print()
    print("hits by cache:", generational.stats.hits_by_cache)
    print("promotions:", generational.stats.promotions,
          "| unmap deletions:", generational.stats.unmap_evictions)


if __name__ == "__main__":
    main()
