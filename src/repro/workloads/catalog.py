"""Unified lookup over both benchmark suites and registered scenarios.

Besides the two static suites (SPEC2000 and interactive), the catalog
holds a third, *dynamic* population: scenario profiles.  These are
workloads institutionalized by the adversarial search in
:mod:`repro.scenarios` — surviving counterexamples whose artifacts are
registered here so every consumer (experiments, CLI, service jobs) can
look them up by name exactly like a paper benchmark.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads.interactive import INTERACTIVE_PROFILES
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.spec2000 import SPEC2000_PROFILES

#: Dynamically registered profiles (suite ``"scenario"``), by name.
_EXTRA_PROFILES: dict[str, WorkloadProfile] = {}


def _ensure_scenarios() -> None:
    """Load the built-in scenario registry exactly once.

    Imported lazily: :mod:`repro.scenarios.registry` registers its
    profiles *through* this module, so a top-level import would cycle.
    """
    from repro.scenarios import registry

    registry.ensure_builtin()


def register_profile(profile: WorkloadProfile, replace: bool = False) -> None:
    """Add *profile* to the dynamic catalog population.

    Raises:
        WorkloadError: when the name collides with a static benchmark,
            or with an already-registered profile (unless *replace*).
    """
    static_names = {p.name for p in SPEC2000_PROFILES + INTERACTIVE_PROFILES}
    if profile.name in static_names:
        raise WorkloadError(
            f"profile name {profile.name!r} collides with a static benchmark"
        )
    if profile.name in _EXTRA_PROFILES and not replace:
        existing = _EXTRA_PROFILES[profile.name]
        if existing != profile:
            raise WorkloadError(
                f"profile {profile.name!r} already registered with "
                "different contents; pass replace=True to overwrite"
            )
        return
    _EXTRA_PROFILES[profile.name] = profile


def registered_profiles() -> tuple[WorkloadProfile, ...]:
    """Every dynamically registered profile, sorted by name (the
    built-in scenario counterexamples load on first use)."""
    _ensure_scenarios()
    return tuple(
        _EXTRA_PROFILES[name] for name in sorted(_EXTRA_PROFILES)
    )


def all_profiles(include_scenarios: bool = False) -> tuple[WorkloadProfile, ...]:
    """Every benchmark in paper order: SPEC2000 then interactive.

    With *include_scenarios* the registered scenario profiles follow,
    sorted by name.
    """
    static = SPEC2000_PROFILES + INTERACTIVE_PROFILES
    if include_scenarios:
        return static + registered_profiles()
    return static


def profiles_for_suite(suite: str) -> tuple[WorkloadProfile, ...]:
    """All profiles of one suite (``"spec"``, ``"interactive"`` or
    ``"scenario"``)."""
    if suite == "spec":
        return SPEC2000_PROFILES
    if suite == "interactive":
        return INTERACTIVE_PROFILES
    if suite == "scenario":
        return registered_profiles()
    raise WorkloadError(
        f"unknown suite {suite!r}; use 'spec', 'interactive' or 'scenario'"
    )


def get_profile(name: str) -> WorkloadProfile:
    """Look up any benchmark by name across suites and scenarios."""
    for profile in all_profiles():
        if profile.name == name:
            return profile
    _ensure_scenarios()
    if name in _EXTRA_PROFILES:
        return _EXTRA_PROFILES[name]
    names = sorted(
        [p.name for p in all_profiles()] + list(_EXTRA_PROFILES)
    )
    raise WorkloadError(f"unknown benchmark {name!r}; choose from {names}")
