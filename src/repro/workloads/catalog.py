"""Unified lookup over both benchmark suites."""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads.interactive import INTERACTIVE_PROFILES
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.spec2000 import SPEC2000_PROFILES


def all_profiles() -> tuple[WorkloadProfile, ...]:
    """Every benchmark in paper order: SPEC2000 then interactive."""
    return SPEC2000_PROFILES + INTERACTIVE_PROFILES


def profiles_for_suite(suite: str) -> tuple[WorkloadProfile, ...]:
    """All profiles of one suite (``"spec"`` or ``"interactive"``)."""
    if suite == "spec":
        return SPEC2000_PROFILES
    if suite == "interactive":
        return INTERACTIVE_PROFILES
    raise WorkloadError(f"unknown suite {suite!r}; use 'spec' or 'interactive'")


def get_profile(name: str) -> WorkloadProfile:
    """Look up any benchmark by name across both suites."""
    for profile in all_profiles():
        if profile.name == name:
            return profile
    names = sorted(p.name for p in all_profiles())
    raise WorkloadError(f"unknown benchmark {name!r}; choose from {names}")
