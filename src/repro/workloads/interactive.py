"""Calibrated interactive-Windows-application profiles (Table 1).

The 12 applications, with the paper's Table 1 names, descriptions and
durations.  Sizes are calibrated so the suite matches Figure 1b
(average unbounded cache of ~16.1 MB, word topping out at 34.2 MB —
a twenty-fold increase over SPEC); insertion rates follow Figure 3b
(everything above 5 KB/s except solitaire); unmap fractions follow
Figure 4 (~15% of trace bytes deleted due to unloaded DLLs on
average); lifetimes follow Figure 6b (U-shaped, biased short — GUI
event handlers come and go, render/idle loops persist).
"""

from __future__ import annotations

from repro.units import KB, MB
from repro.workloads.profiles import LifetimeMix, WorkloadProfile

#: GUI-app mix: event-handler churn with a persistent core.
_GUI = LifetimeMix(short=0.48, medium=0.12, long=0.40)
#: Document-viewer mix: per-page traces churn hard.
_VIEWER = LifetimeMix(short=0.53, medium=0.11, long=0.36)
#: Render-loop mix: games/media spin in persistent loops.
_RENDER = LifetimeMix(short=0.46, medium=0.12, long=0.42)


def _app(
    name: str,
    description: str,
    mb: float,
    seconds: float,
    unmap: float,
    mix: LifetimeMix,
    expansion: float = 5.0,
    reaccess_short: float = 8.0,
    reaccess_long: float = 30.0,
) -> WorkloadProfile:
    return WorkloadProfile(
        name=name,
        suite="interactive",
        description=description,
        total_trace_kb=mb * MB / KB,
        duration_seconds=seconds,
        code_expansion=expansion,
        unmap_fraction=unmap,
        lifetime_mix=mix,
        n_phases=max(6, int(seconds / 10)),
        reaccess_short=reaccess_short,
        reaccess_long=reaccess_long,
        default_scale=max(1.0, mb * MB / KB / 1100.0),
    )


INTERACTIVE_PROFILES: tuple[WorkloadProfile, ...] = (
    _app("access", "Database App", 19.0, 202, 0.12, _GUI, expansion=5.2),
    _app("acroread", "PDF Viewer", 25.0, 376, 0.20, _VIEWER, expansion=5.6),
    _app("defrag", "System Util", 4.0, 46, 0.06, _RENDER, expansion=4.1),
    _app("excel", "Spreadsheet App", 22.0, 208, 0.17, _GUI, expansion=5.4),
    _app("iexplore", "Web Browser", 21.0, 247, 0.27, _VIEWER, expansion=5.9),
    _app("mpeg", "Media Player", 10.0, 257, 0.08, _RENDER, expansion=4.3),
    _app("outlook", "E-Mail App", 17.0, 196, 0.18, _GUI, expansion=5.1),
    _app("pinball", "3D Game Demo", 16.0, 372, 0.10, _RENDER, expansion=4.6),
    _app("powerpoint", "Presentation", 17.8, 173, 0.14, _GUI, expansion=5.3),
    _app("solitaire", "Game", 1.5, 335, 0.03, _RENDER, expansion=3.7),
    _app("winzip", "Compression", 6.0, 92, 0.22, _GUI, expansion=4.5),
    _app("word", "Word Processor", 34.2, 212, 0.22, _GUI, expansion=5.8),
)

_BY_NAME = {profile.name: profile for profile in INTERACTIVE_PROFILES}


def interactive_profile(name: str) -> WorkloadProfile:
    """Look up one interactive-application profile by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown interactive benchmark {name!r}; "
            f"choose from {sorted(_BY_NAME)}"
        ) from None
