"""Calibrated SPEC2000-like workload profiles.

The 26 benchmarks of the SPEC2000 suite, executed to completion on
Linux with reference inputs in the paper.  Per-benchmark values are
calibrated to the aggregates the paper reports:

* Figure 1a — unbounded cache sizes averaging ~736 KB, with gcc at
  4.3 MB and vortex at 1.6 MB as the two outliers;
* Figure 3a — insertion rates mostly below 5 KB/s, except gcc
  (232 KB/s) and perlbmk (89 KB/s);
* Figure 4 — essentially no unmapped code (SPEC loads no transient
  DLLs);
* Figure 6a — U-shaped lifetimes, biased long (loop-dominated codes);
* Figure 2a — code expansion around 500% with a larger spread than
  the interactive suite (111% std dev).

Durations are derived as size/rate so Figures 1 and 3 stay mutually
consistent.  Behavioural knobs encode the evaluation's per-benchmark
texture: ``art`` is the tiny loop-bound outlier that generational
caching hurts; ``eon``, ``vpr`` and ``applu`` are medium-lifetime-heavy
codes whose promotion traffic outweighs their miss savings (Figure 11);
``gzip`` and ``crafty`` are the big winners.
"""

from __future__ import annotations

from repro.workloads.profiles import LifetimeMix, WorkloadProfile


def _spec(
    name: str,
    description: str,
    kb: float,
    rate_kb_s: float,
    mix: LifetimeMix,
    expansion: float = 5.0,
    n_phases: int = 4,
    reaccess_short: float = 8.0,
    reaccess_long: float = 30.0,
    default_scale: float = 1.0,
    **extra: float,
) -> WorkloadProfile:
    return WorkloadProfile(
        name=name,
        suite="spec",
        description=description,
        total_trace_kb=kb,
        duration_seconds=kb / rate_kb_s,
        code_expansion=expansion,
        unmap_fraction=0.0,
        lifetime_mix=mix,
        n_phases=n_phases,
        reaccess_short=reaccess_short,
        reaccess_long=reaccess_long,
        default_scale=default_scale,
        **extra,
    )


#: Loop-heavy default mix for SPEC codes (Figure 6a's shape).
_LOOPY = LifetimeMix(short=0.39, medium=0.19, long=0.42)
#: Phase-heavy mix (compiler-like codes with many transient regions).
_PHASED = LifetimeMix(short=0.47, medium=0.13, long=0.40)
#: Medium-heavy mix: traces that live long enough to get promoted but
#: die before the promotion pays for itself (the eon/vpr/applu shape).
_MEDIUM_HEAVY = LifetimeMix(short=0.36, medium=0.34, long=0.30)
#: Tight-loop mix: nearly everything lives forever (the art shape,
#: whose working set overflows every cache sized below its footprint).
_TIGHT_LOOP = LifetimeMix(short=0.08, medium=0.07, long=0.85)
#: Kernel-loop mix for the small FP stencil codes: long-lived biased,
#: but less pathologically than art.
_KERNEL_LOOP = LifetimeMix(short=0.40, medium=0.20, long=0.40)

SPEC2000_PROFILES: tuple[WorkloadProfile, ...] = (
    # ----- CINT2000 -------------------------------------------------
    _spec("gzip", "Compression", 180, 1.5, _PHASED,
          expansion=4.2, n_phases=6, reaccess_short=10.0),
    _spec("vpr", "FPGA placement/routing", 350, 2.8, _MEDIUM_HEAVY,
          expansion=5.1, n_phases=3),
    _spec("gcc", "C compiler", 4300, 232.0, _PHASED,
          expansion=7.4, n_phases=8, reaccess_short=6.0, default_scale=4.0),
    _spec("mcf", "Combinatorial optimization", 150, 0.8, _LOOPY,
          expansion=3.6, n_phases=2),
    _spec("crafty", "Chess", 800, 3.2, _PHASED,
          expansion=5.6, n_phases=7, reaccess_short=12.0),
    _spec("parser", "Word processing", 550, 1.9, _PHASED,
          expansion=4.9, n_phases=5),
    _spec("eon", "Ray tracing", 1150, 4.1, _MEDIUM_HEAVY,
          expansion=6.2, n_phases=3),
    _spec("perlbmk", "Perl interpreter", 1350, 89.0, _PHASED,
          expansion=6.8, n_phases=7, reaccess_short=7.0),
    _spec("gap", "Group theory", 750, 3.5, _LOOPY,
          expansion=5.2, n_phases=4),
    _spec("vortex", "Object-oriented database", 1600, 4.8, _PHASED,
          expansion=6.1, n_phases=6, default_scale=2.0),
    _spec("bzip2", "Compression", 210, 1.2, _LOOPY,
          expansion=3.9, n_phases=3),
    _spec("twolf", "Place and route", 560, 1.6, _LOOPY,
          expansion=4.7, n_phases=3),
    # ----- CFP2000 --------------------------------------------------
    _spec("wupwise", "Quantum chromodynamics", 260, 1.1, _LOOPY,
          expansion=4.1, n_phases=2),
    _spec("swim", "Shallow water modeling", 130, 0.6, _KERNEL_LOOP,
          expansion=3.2, n_phases=2),
    _spec("mgrid", "Multi-grid solver", 140, 0.5, _KERNEL_LOOP,
          expansion=3.4, n_phases=2),
    _spec("applu", "Parabolic/elliptic PDEs", 310, 1.0, _MEDIUM_HEAVY,
          expansion=4.4, n_phases=3),
    _spec("mesa", "3D graphics library", 1100, 3.9, _PHASED,
          expansion=6.3, n_phases=5),
    _spec("galgel", "Computational fluid dynamics", 660, 2.1, _LOOPY,
          expansion=5.0, n_phases=3),
    # art stays inside its few loop traces for ages between dispatcher
    # entries: few re-entry records with huge repeats.  Its hot set
    # also overflows every sub-footprint cache — the paper's negative
    # outlier for which "cache management is least critical".
    _spec("art", "Neural network simulation", 64, 0.4, _TIGHT_LOOP,
          expansion=2.8, n_phases=2, reaccess_long=200.0, hot_records=16),
    _spec("equake", "Seismic wave propagation", 190, 0.9, _LOOPY,
          expansion=3.8, n_phases=2),
    _spec("facerec", "Face recognition", 500, 1.3, _LOOPY,
          expansion=4.6, n_phases=3),
    _spec("ammp", "Computational chemistry", 560, 1.5, _LOOPY,
          expansion=4.8, n_phases=3),
    _spec("lucas", "Number theory", 170, 0.7, _KERNEL_LOOP,
          expansion=3.3, n_phases=2),
    _spec("fma3d", "Finite-element crash simulation", 1250, 3.6, _PHASED,
          expansion=6.5, n_phases=4),
    _spec("sixtrack", "Particle accelerator model", 1100, 2.9, _LOOPY,
          expansion=5.8, n_phases=3),
    _spec("apsi", "Meteorology", 700, 2.2, _LOOPY,
          expansion=5.1, n_phases=3),
)

_BY_NAME = {profile.name: profile for profile in SPEC2000_PROFILES}


def spec2000_profile(name: str) -> WorkloadProfile:
    """Look up one SPEC2000 profile by benchmark name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown SPEC2000 benchmark {name!r}; "
            f"choose from {sorted(_BY_NAME)}"
        ) from None
