"""Full-pipeline workload generation.

Builds an actual :class:`~repro.isa.program.SyntheticProgram` and
:class:`~repro.sim.phases.SessionScript` from a profile, so the
complete stack — engine walk, bb cache, trace-head counters, NET trace
construction — produces the log, instead of synthesizing it directly.
This path is slower but exercises the entire dynamic-optimizer front
end; it backs the examples and the pipeline integration tests, while
the evaluation harness uses :mod:`repro.workloads.synthesis` for the
calibrated 38-benchmark catalog.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.isa.modules import Module, ModuleKind
from repro.isa.program import ProgramBuilder, SyntheticProgram
from repro.rand import RandomStreams
from repro.runtime.system import record_session
from repro.sim.phases import LoadModule, Segment, SessionScript, UnloadModule
from repro.tracelog.records import TraceLog
from repro.workloads.profiles import WorkloadProfile


def build_program(
    profile: WorkloadProfile,
    seed: int = 0,
    loops_per_phase: int = 6,
    loop_blocks: int = 3,
) -> tuple[SyntheticProgram, SessionScript]:
    """Construct a program + session script shaped like *profile*.

    The program gets one startup region, a persistent hot-loop region
    (the long-lived core), and per-phase regions of transient loops;
    interactive profiles place each phase's region in an unloadable DLL
    that the script unmaps at phase end.  Loop trip counts exceed the
    trace-creation threshold so every loop head becomes a trace.

    Returns:
        ``(program, script)`` ready for
        :func:`~repro.runtime.system.record_session`.
    """
    if loops_per_phase < 1 or loop_blocks < 1:
        raise WorkloadError("loops_per_phase and loop_blocks must be >= 1")
    rng = RandomStreams(seed).fork(profile.name).get("program")
    builder = ProgramBuilder(profile.name)
    main = builder.add_module(f"{profile.name}.exe", ModuleKind.EXECUTABLE)

    # Startup region: a chain of run-once loops (short-lived traces).
    entry = builder.add_block(main, body_length=4)
    builder.set_entry(entry)
    cursor = entry
    for _ in range(loops_per_phase):
        head, cursor = _attach_loop(builder, main, cursor, rng, iterations=80)

    # Persistent core: hot loops revisited by every phase segment.
    core_heads = []
    for _ in range(loops_per_phase):
        head, cursor = _attach_loop(builder, main, cursor, rng, iterations=400)
        core_heads.append(head)

    script = SessionScript(duration_seconds=profile.duration_seconds)
    script.add(Segment(entry_block=entry.block_id, n_blocks=8_000))

    # Phase regions: transient loops, optionally in unloadable DLLs.
    interactive = profile.suite == "interactive"
    n_phases = min(profile.n_phases, 12)  # keep the pipeline tractable
    for phase in range(n_phases):
        if interactive:
            dll: Module | None = builder.add_module(
                f"{profile.name}-phase{phase}.dll",
                ModuleKind.PLUGIN_DLL,
                unloadable=True,
                loaded=False,
            )
            script.add(LoadModule(module_id=dll.module_id))
            region_module = dll
        else:
            region_module = main
        region_entry = builder.add_block(region_module, body_length=4)
        region_cursor = region_entry
        for _ in range(loops_per_phase):
            _, region_cursor = _attach_loop(
                builder, region_module, region_cursor, rng, iterations=120,
                loop_blocks=loop_blocks,
            )
        script.add(Segment(entry_block=region_entry.block_id, n_blocks=6_000))
        # Revisit the persistent core between phases.
        core = rng.choice(core_heads)
        script.add(Segment(entry_block=core.block_id, n_blocks=3_000))
        if interactive:
            script.add(UnloadModule(module_id=region_module.module_id))

    return builder.finish(), script


def _attach_loop(builder, module, cursor, rng, iterations, loop_blocks=3):
    """Add a loop reachable from *cursor*; returns (head, new cursor)."""
    head, exit_block = builder.add_loop(
        module,
        body_blocks=loop_blocks,
        iterations_mean=float(iterations + rng.randint(-10, 10)),
    )
    builder.connect(cursor, head, 1.0)
    return head, exit_block


def build_session(profile: WorkloadProfile, seed: int = 0) -> TraceLog:
    """Build the program and record the full-pipeline log in one go."""
    program, script = build_program(profile, seed=seed)
    return record_session(program, script, seed=seed)
