"""WorkloadProfile: the calibrated knobs of one synthetic benchmark.

A profile pins the aggregates the paper reports per benchmark
(Figures 1-4, Table 1) and the behavioural parameters that give the
recorded log the right cache-management difficulty (phase structure,
re-access factors, lifetime mix).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.units import KB


@dataclass(frozen=True)
class LifetimeMix:
    """Fractions of traces (by count) per lifetime class.

    The paper's Figure 6 shows a U shape: most traces live either
    < 20% or > 80% of the run.

    Attributes:
        short: Fraction of short-lived traces (lifetime < 20%).
        medium: Fraction of medium-lived traces.
        long: Fraction of long-lived traces (lifetime > 80%).
    """

    short: float
    medium: float
    long: float

    def __post_init__(self) -> None:
        total = self.short + self.medium + self.long
        if abs(total - 1.0) > 1e-9:
            raise WorkloadError(f"lifetime mix sums to {total}, expected 1.0")
        for name, value in (
            ("short", self.short),
            ("medium", self.medium),
            ("long", self.long),
        ):
            if not 0.0 <= value <= 1.0:
                raise WorkloadError(f"lifetime mix {name}={value} outside [0, 1]")


@dataclass(frozen=True)
class WorkloadProfile:
    """Everything needed to synthesize one benchmark's trace log.

    Attributes:
        name: Benchmark name (e.g. ``"gcc"``, ``"word"``).
        suite: ``"spec"`` or ``"interactive"``.
        description: Table 1-style description.
        total_trace_kb: KB of traces generated over the whole run at
            scale 1 — the unbounded code cache size (Figure 1).
        duration_seconds: Run duration (Table 1 / derived for SPEC).
        code_expansion: Equation 1 value used to derive the static
            footprint (Figure 2; ~5.0 on average for both suites).
        unmap_fraction: Target fraction of trace bytes deleted due to
            unmapped memory (Figure 4; ~0 for SPEC).
        lifetime_mix: Count fractions per lifetime class (Figure 6).
        median_trace_bytes: Median trace size (paper median: 242 B).
        n_phases: Program phases; interactive apps have many (user
            events), SPEC few.
        reaccess_short: Mean accesses per short-lived trace within its
            window (drives conflict pressure).
        reaccess_long: Mean accesses per long-lived trace *per phase*.
        burst_repeat: Mean consecutive-entry repeat per access record
            (loop re-entry bursts).
        hot_records: Target number of re-entry records per hot
            long-lived trace over the whole run.  High values model
            code re-dispatched constantly (GUI/render loops); low
            values model tight loops that stay inside one trace for
            a long time between dispatcher entries (the art shape).
        pin_fraction: Fraction of traces that get pinned (undeletable)
            for a stretch of the run.
        default_scale: Divisor applied to trace counts for tractable
            simulation; experiments report the scale they ran at.
    """

    name: str
    suite: str
    description: str
    total_trace_kb: float
    duration_seconds: float
    code_expansion: float = 5.0
    unmap_fraction: float = 0.0
    lifetime_mix: LifetimeMix = field(
        default_factory=lambda: LifetimeMix(short=0.45, medium=0.15, long=0.40)
    )
    median_trace_bytes: int = 242
    n_phases: int = 4
    reaccess_short: float = 8.0
    reaccess_long: float = 40.0
    burst_repeat: float = 4.0
    hot_records: int = 240
    pin_fraction: float = 0.002
    default_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.suite not in ("spec", "interactive", "scenario"):
            raise WorkloadError(f"unknown suite {self.suite!r}")
        if not self.name:
            raise WorkloadError("profile name must be non-empty")
        if self.total_trace_kb <= 0:
            raise WorkloadError("total_trace_kb must be positive")
        if self.duration_seconds <= 0:
            raise WorkloadError("duration_seconds must be positive")
        if self.code_expansion <= 0:
            raise WorkloadError("code_expansion must be positive")
        if not 0.0 <= self.unmap_fraction < 1.0:
            raise WorkloadError("unmap_fraction must be in [0, 1)")
        if self.n_phases < 1:
            raise WorkloadError("n_phases must be >= 1")
        if self.median_trace_bytes < 16:
            raise WorkloadError("median_trace_bytes unrealistically small")
        # Behavioural-rate bounds.  Calibration and fuzzing construct
        # profiles from searched parameter vectors; a candidate outside
        # these ranges must be rejected here, at construction, with a
        # structured ConfigError (WorkloadError subclasses it) rather
        # than failing deep inside synthesis with a division or range
        # error.
        for rate_name, value in (
            ("reaccess_short", self.reaccess_short),
            ("reaccess_long", self.reaccess_long),
        ):
            if value <= 0:
                raise WorkloadError(f"{rate_name} must be positive, got {value}")
        if self.burst_repeat < 1.0:
            raise WorkloadError(
                f"burst_repeat must be >= 1 (one entry per record), got "
                f"{self.burst_repeat}"
            )
        if self.hot_records < 0:
            raise WorkloadError(
                f"hot_records must be non-negative, got {self.hot_records}"
            )
        if not 0.0 <= self.pin_fraction < 1.0:
            raise WorkloadError(
                f"pin_fraction must be in [0, 1), got {self.pin_fraction}"
            )
        if self.default_scale <= 0:
            raise WorkloadError(
                f"default_scale must be positive, got {self.default_scale}"
            )

    @property
    def total_trace_bytes(self) -> int:
        """Unbounded cache size in bytes at scale 1."""
        return int(self.total_trace_kb * KB)

    @property
    def code_footprint_bytes(self) -> int:
        """Static application footprint implied by Equation 1."""
        return max(1, int(self.total_trace_bytes / self.code_expansion))

    @property
    def insertion_rate_kb_per_s(self) -> float:
        """Figure 3's metric implied by size and duration."""
        return self.total_trace_kb / self.duration_seconds

    def scaled_trace_bytes(self, scale: float | None = None) -> int:
        """Total trace bytes after applying *scale* (default: the
        profile's own)."""
        factor = self.default_scale if scale is None else scale
        if factor <= 0:
            raise WorkloadError(f"scale must be positive, got {factor}")
        return max(1, int(self.total_trace_bytes / factor))
