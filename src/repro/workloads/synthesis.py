"""Direct trace-log synthesis from a workload profile.

This is the fast path used by the evaluation harness: instead of
walking a synthetic CFG block by block (see
:mod:`repro.workloads.generator` for that full pipeline), it plans the
trace population and its access timeline analytically and emits the
verbose log directly.  The resulting log matches the profile's
calibrated aggregates:

* total trace bytes == the profile's (scaled) unbounded cache size;
* insertion rate == size / duration by construction;
* unmapped byte fraction ~= the profile's target (short-lived traces
  are assigned to per-phase DLL modules that unmap at phase end);
* lifetimes fall in the profile's mix of Figure 6 buckets.

The *behavioural* structure mirrors how the paper describes its
applications: a persistent hot core created at startup and re-entered
throughout (hot long-lived traces), rarely-touched long-lived code
(cool long-lived traces whose lifetime is long but whose re-access
gaps defeat any bounded cache), phase-local handler code (short-lived
bursts per user event / program phase), and medium-lived traces that
span a few phases — the population whose promotion traffic can outweigh
its miss savings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.rand import Random, RandomStreams
from repro.tracelog.records import (
    EndOfLog,
    LogRecord,
    ModuleUnmap,
    TraceAccess,
    TraceCreate,
    TraceLog,
    TracePin,
    TraceUnpin,
)
from repro.workloads.profiles import WorkloadProfile

#: Virtual instructions per second of recorded wall-clock time.
INSTRUCTIONS_PER_SECOND = 1_000_000

#: Main executable module id; per-phase DLLs are numbered from here.
MAIN_MODULE = 0
DLL_MODULE_BASE = 100

#: Fraction of long-lived traces that form the *hot* persistent core
#: (re-entered every phase); the rest are cool: long lifetime, long
#: re-access gaps.  Sized so a typical mix's hot-core bytes fit inside
#: a 45% persistent cache of a half-footprint budget.
HOT_LONG_FRACTION = 0.5

#: Sort ranks making same-timestamp records unambiguous.
_RANK_CREATE = 0
_RANK_PIN = 1
_RANK_ACCESS = 2
_RANK_UNPIN = 3
_RANK_UNMAP = 4


@dataclass
class _Planned:
    """One trace's planned existence."""

    trace_id: int
    size: int
    module_id: int
    category: str
    t_create: int
    accesses: list[tuple[int, int]] = field(default_factory=list)  # (time, repeat)


def _draw_sizes(rng: Random, count: int, median: int, total: int) -> list[int]:
    """Draw *count* lognormal sizes around *median* and rescale so they
    sum to *total* bytes."""
    if count <= 0:
        return []
    raw = [median * math.exp(rng.gauss(0.0, 0.55)) for _ in range(count)]
    raw = [min(max(s, 48.0), 2048.0) for s in raw]
    factor = total / sum(raw)
    sizes = [max(32, int(s * factor)) for s in raw]
    # Push the rounding drift onto the largest trace so totals match.
    drift = total - sum(sizes)
    sizes[sizes.index(max(sizes))] += drift
    return [max(32, s) for s in sizes]


def _geometric(rng: Random, mean: float) -> int:
    """Draw a positive integer with the given mean (geometric)."""
    if mean <= 1.0:
        return 1
    p = 1.0 / mean
    count = 1
    while rng.random() > p and count < 64 * mean:
        count += 1
    return count


def _spread(rng: Random, n: int, lo: int, hi: int) -> list[int]:
    """n sorted random times in [lo, hi] (inclusive-ish)."""
    if hi <= lo:
        return [lo] * n
    return sorted(rng.randint(lo, hi) for _ in range(n))


class _LogPlan:
    """Accumulates planned traces and non-trace records, then renders
    the final, time-sorted log."""

    def __init__(self, profile: WorkloadProfile, total_bytes: int) -> None:
        self.profile = profile
        self.total_bytes = total_bytes
        self.end_time = int(profile.duration_seconds * INSTRUCTIONS_PER_SECOND)
        self.phase_len = max(1, self.end_time // profile.n_phases)
        self.traces: list[_Planned] = []
        self.unmaps: list[tuple[int, int]] = []  # (time, module_id)
        self.pins: list[tuple[int, int, int]] = []  # (t_pin, t_unpin, trace)

    def phase_bounds(self, phase: int) -> tuple[int, int]:
        start = phase * self.phase_len
        end = min(self.end_time, start + self.phase_len)
        return start, max(start + 1, end)

    def render(self) -> TraceLog:
        entries: list[tuple[int, int, int, LogRecord]] = []
        serial = 0

        def push(time: int, rank: int, record: LogRecord) -> None:
            nonlocal serial
            entries.append((time, rank, serial, record))
            serial += 1

        for planned in self.traces:
            push(
                planned.t_create,
                _RANK_CREATE,
                TraceCreate(
                    time=planned.t_create,
                    trace_id=planned.trace_id,
                    size=planned.size,
                    module_id=planned.module_id,
                ),
            )
            for time, repeat in planned.accesses:
                push(
                    time,
                    _RANK_ACCESS,
                    TraceAccess(time=time, trace_id=planned.trace_id, repeat=repeat),
                )
        for time, module_id in self.unmaps:
            push(time, _RANK_UNMAP, ModuleUnmap(time=time, module_id=module_id))
        for t_pin, t_unpin, trace_id in self.pins:
            push(t_pin, _RANK_PIN, TracePin(time=t_pin, trace_id=trace_id))
            push(t_unpin, _RANK_UNPIN, TraceUnpin(time=t_unpin, trace_id=trace_id))

        entries.sort(key=lambda item: (item[0], item[1], item[2]))
        # The footprint scales with the trace bytes so Equation 1 stays
        # invariant under simulation scaling.
        footprint = max(1, int(self.total_bytes / self.profile.code_expansion))
        log = TraceLog(
            benchmark=self.profile.name,
            duration_seconds=self.profile.duration_seconds,
            code_footprint=footprint,
        )
        log.records = [record for _, _, _, record in entries]
        log.records.append(EndOfLog(time=self.end_time))
        return log


def plan_workload(
    profile: WorkloadProfile,
    seed: int = 0,
    scale: float | None = None,
) -> _LogPlan:
    """Plan (but do not render) one benchmark's trace population.

    Exposed so tests and diagnostics can inspect per-trace categories
    and timings; normal callers use :func:`synthesize_log`.
    """
    streams = RandomStreams(seed).fork(profile.name)
    total_bytes = profile.scaled_trace_bytes(scale)
    plan = _LogPlan(profile, total_bytes)

    mix = profile.lifetime_mix
    n_total = max(8, total_bytes // profile.median_trace_bytes)
    n_long = max(1, round(n_total * mix.long)) if mix.long > 0 else 0
    n_medium = max(0, round(n_total * mix.medium))
    n_short = max(0, n_total - n_long - n_medium)
    if n_short == 0 and mix.short > 0:
        n_short = 1

    size_rng = streams.get("sizes")
    sizes = _draw_sizes(
        size_rng, n_long + n_medium + n_short, profile.median_trace_bytes, total_bytes
    )
    next_id = 0

    def take_trace(size: int, module: int, category: str, t_create: int) -> _Planned:
        nonlocal next_id
        planned = _Planned(
            trace_id=next_id,
            size=size,
            module_id=module,
            category=category,
            t_create=t_create,
        )
        next_id += 1
        plan.traces.append(planned)
        return planned

    _plan_long_traces(plan, streams, sizes[:n_long], take_trace)
    _plan_medium_traces(
        plan, streams, sizes[n_long : n_long + n_medium], take_trace
    )
    _plan_short_traces(plan, streams, sizes[n_long + n_medium :], take_trace)
    _plan_pins(plan, streams)
    return plan


def synthesize_log(
    profile: WorkloadProfile,
    seed: int = 0,
    scale: float | None = None,
) -> TraceLog:
    """Synthesize the verbose trace log for one benchmark.

    Args:
        profile: The calibrated benchmark profile.
        seed: Master seed; the log is deterministic given (profile,
            seed, scale).
        scale: Trace-count divisor; defaults to the profile's
            ``default_scale``.

    Returns:
        A validated, time-ordered :class:`TraceLog`.
    """
    plan = plan_workload(profile, seed=seed, scale=scale)
    log = plan.render()
    log.validate()
    return log


# ----------------------------------------------------------------------
# Per-category planners
# ----------------------------------------------------------------------


def _plan_long_traces(plan: _LogPlan, streams, sizes: list[int], take) -> None:
    """Long-lived traces: lifetime > 80% of the run.

    The *hot* subset is the persistent core — re-entered a couple of
    times every phase, exactly the population the persistent cache is
    meant to shelter from nursery churn.  The *cool* subset is touched
    in only a few scattered phases (plus once near the end), giving it
    a long lifetime but re-access gaps no bounded cache of half the
    footprint can cover.
    """
    rng = streams.get("long")
    profile = plan.profile
    n_hot = round(len(sizes) * HOT_LONG_FRACTION)
    # A hot loop is re-entered constantly; what matters to the cache
    # simulation is that its re-entry gap stays well inside even a
    # small probation cache's residency window.  Density is graded
    # (lognormal around the profile's target) the way real hot sets
    # are: the hottest traces re-enter an order of magnitude more
    # often than the coolest members of the core.
    total_records = max(2 * profile.n_phases, profile.hot_records)
    for index, size in enumerate(sizes):
        t_create = rng.randint(0, max(1, plan.end_time // 50))
        planned = take(size, MAIN_MODULE, "long", t_create)
        hot = index < n_hot
        if hot:
            n_records = max(6, int(total_records * math.exp(rng.gauss(0.0, 0.5))))
            per_entry = max(
                1.0, profile.reaccess_long * profile.n_phases / n_records
            )
            for time in _spread(
                rng, n_records, t_create + 1, max(t_create + 2, plan.end_time - 2)
            ):
                planned.accesses.append((time, _geometric(rng, per_entry)))
            # Pin the lifetime above 80%: one entry just before the end.
            tail = rng.randint(int(plan.end_time * 0.96), plan.end_time - 1)
            planned.accesses.append(
                (max(tail, t_create + 1), _geometric(rng, per_entry))
            )
        else:
            # Cool: scattered touches plus one near the end to pin the
            # lifetime above 80%.  The gaps between touches exceed any
            # bounded cache's residency, so every touch is a conflict
            # miss everywhere — this regeneration traffic is what keeps
            # the FIFO pointer sweeping (and blindly evicting the hot
            # core) in the unified cache.
            n_touch = rng.randint(4, 6)
            for time in _spread(
                rng, n_touch, t_create + 1, max(t_create + 2, plan.end_time - 2)
            ):
                planned.accesses.append((time, _geometric(rng, profile.burst_repeat)))
            tail = rng.randint(
                int(plan.end_time * 0.92), max(1, plan.end_time - 1)
            )
            planned.accesses.append(
                (max(tail, t_create + 1), _geometric(rng, profile.burst_repeat))
            )
        planned.accesses.sort()


def _plan_medium_traces(plan: _LogPlan, streams, sizes: list[int], take) -> None:
    """Medium-lived traces: windows of 25-70% of the run, re-entered
    steadily — they live long enough to win promotion but die before
    it amortizes (the eon/vpr/applu failure mode)."""
    rng = streams.get("medium")
    profile = plan.profile
    for size in sizes:
        window = int(plan.end_time * rng.uniform(0.25, 0.70))
        t_create = rng.randint(0, max(1, plan.end_time - window - 1))
        planned = take(size, MAIN_MODULE, "medium", t_create)
        n_records = max(3, int(profile.reaccess_short * 0.3))
        for time in _spread(
            rng, n_records, t_create + 1, t_create + window
        ):
            planned.accesses.append((time, _geometric(rng, profile.burst_repeat)))
        planned.accesses.sort()


def _plan_short_traces(plan: _LogPlan, streams, sizes: list[int], take) -> None:
    """Short-lived traces: phase-local handler code, lifetime < 20%.

    Interactive suites spread them across phases (every user event
    spawns handlers) and assign a calibrated fraction to per-phase DLL
    modules that unmap at phase end; SPEC concentrates them toward
    startup (initialization code) and never unmaps.
    """
    rng = streams.get("short")
    profile = plan.profile
    n_phases = profile.n_phases
    interactive = profile.suite == "interactive"

    if interactive:
        phase_weights = [1.0] * n_phases
    else:
        phase_weights = [1.0 / (p + 1.0) for p in range(n_phases)]
    total_weight = sum(phase_weights)
    short_bytes = sum(sizes)
    dll_probability = 0.0
    if interactive and short_bytes > 0 and profile.unmap_fraction > 0:
        dll_probability = min(
            0.95, profile.unmap_fraction * plan.total_bytes / short_bytes
        )

    dll_used: set[int] = set()
    # Short-lived handler code dies fast — well within its phase.  The
    # window must be clearly shorter than the nursery residency so a
    # dead short trace earns no probation hit (the property that makes
    # single-hit promotion a good filter, Section 6.1).
    max_window = int(plan.end_time * 0.15)
    for size in sizes:
        pick = rng.random() * total_weight
        phase = 0
        acc = 0.0
        for index, weight in enumerate(phase_weights):
            acc += weight
            if pick < acc:
                phase = index
                break
        start, end = plan.phase_bounds(phase)
        t_create = rng.randint(start, max(start, end - 2))
        in_dll = rng.random() < dll_probability
        module = DLL_MODULE_BASE + phase if in_dll else MAIN_MODULE
        # Interactive handlers are often reused across a couple of user
        # actions before being abandoned, so their windows can span
        # phase boundaries; SPEC transients die within their phase.
        if interactive:
            window = int(rng.uniform(0.3, 1.0) * plan.phase_len)
        else:
            window = int(rng.uniform(0.15, 0.7) * plan.phase_len)
        window = min(window, max_window)
        if in_dll:
            dll_used.add(phase)
            # Must die before the phase-end unmap.
            window_end = min(end - 1, t_create + max(1, window))
        else:
            window_end = min(plan.end_time - 1, t_create + max(1, window))
        window_end = max(window_end, t_create + 1)
        planned = take(size, module, "short", t_create)
        n_records = _geometric(rng, profile.reaccess_short / 2.0)
        for time in _spread(rng, n_records, t_create + 1, window_end):
            planned.accesses.append((time, _geometric(rng, profile.burst_repeat)))
        planned.accesses.sort()

    for phase in sorted(dll_used):
        _, end = plan.phase_bounds(phase)
        plan.unmaps.append((end, DLL_MODULE_BASE + phase))


def _plan_pins(plan: _LogPlan, streams) -> None:
    """Pick a few traces to pin (exceptions in flight, Section 4.2)."""
    rng = streams.get("pins")
    profile = plan.profile
    candidates = [p for p in plan.traces if p.accesses and p.category == "long"]
    n_pins = int(len(plan.traces) * profile.pin_fraction)
    if not candidates or n_pins == 0:
        return
    hold = max(1, int(plan.end_time * 0.02))
    for planned in rng.sample(candidates, min(n_pins, len(candidates))):
        time, _ = rng.choice(planned.accesses)
        t_unpin = min(plan.end_time - 1, time + hold)
        if t_unpin > time:
            plan.pins.append((time, t_unpin, planned.trace_id))
