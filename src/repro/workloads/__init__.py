"""Workload catalog and generators.

The paper evaluates 26 SPEC2000 benchmarks (Linux, reference inputs)
and 12 interactive Windows applications (Table 1).  Neither substrate
is available here, so each benchmark is replaced by a calibrated
synthetic profile whose recorded trace log matches the aggregates the
paper reports for it (unbounded cache size, code expansion, insertion
rate, unmap fraction, lifetime U-shape).  See DESIGN.md for the
substitution argument.
"""

from repro.workloads.profiles import LifetimeMix, WorkloadProfile
from repro.workloads.spec2000 import SPEC2000_PROFILES, spec2000_profile
from repro.workloads.interactive import INTERACTIVE_PROFILES, interactive_profile
from repro.workloads.catalog import (
    all_profiles,
    get_profile,
    profiles_for_suite,
)
from repro.workloads.synthesis import synthesize_log
from repro.workloads.generator import build_program, build_session

__all__ = [
    "INTERACTIVE_PROFILES",
    "LifetimeMix",
    "SPEC2000_PROFILES",
    "WorkloadProfile",
    "all_profiles",
    "build_program",
    "build_session",
    "get_profile",
    "interactive_profile",
    "profiles_for_suite",
    "spec2000_profile",
    "synthesize_log",
]
