"""Synthetic instruction-set substrate.

The paper's dynamic optimizer (DynamoRIO) operates on IA-32 binaries.
This subpackage provides the equivalent raw material for our
reproduction: a small synthetic ISA, basic blocks built from it,
modules (the executable and its DLLs) that own address ranges, and a
weighted control-flow graph that the execution engine walks.
"""

from repro.isa.instructions import (
    BranchKind,
    Instruction,
    Opcode,
    encode_size,
)
from repro.isa.blocks import BasicBlock
from repro.isa.modules import AddressSpace, Module, ModuleKind
from repro.isa.cfg import ControlFlowGraph, Edge
from repro.isa.program import SyntheticProgram

__all__ = [
    "AddressSpace",
    "BasicBlock",
    "BranchKind",
    "ControlFlowGraph",
    "Edge",
    "Instruction",
    "Module",
    "ModuleKind",
    "Opcode",
    "SyntheticProgram",
    "encode_size",
]
