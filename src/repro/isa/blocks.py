"""Basic blocks: single-entry single-exit instruction sequences.

The dynamic optimizer copies basic blocks into its basic-block cache
and stitches them into traces (superblocks), so blocks carry the two
things those steps need — a byte size and a terminating control
transfer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import BranchKind, Instruction


@dataclass
class BasicBlock:
    """A single-entry single-exit sequence of instructions.

    Attributes:
        block_id: Globally unique id within a program.
        module_id: Owning module (executable or DLL).
        address: Start address inside the program's address space.
        instructions: The body; only the last may transfer control.
    """

    block_id: int
    module_id: int
    address: int
    instructions: list[Instruction] = field(default_factory=list)

    def __post_init__(self) -> None:
        for insn in self.instructions[:-1]:
            if insn.is_control_transfer:
                raise ValueError(
                    f"block {self.block_id}: control transfer before final instruction"
                )

    @property
    def size(self) -> int:
        """Encoded size of the block in bytes."""
        return sum(insn.size for insn in self.instructions)

    @property
    def terminator(self) -> Instruction | None:
        """The final instruction if it transfers control, else ``None``
        (a fall-through block)."""
        if self.instructions and self.instructions[-1].is_control_transfer:
            return self.instructions[-1]
        return None

    @property
    def ends_in_backward_branch(self) -> bool:
        """True if the block ends with a backward direct transfer —
        the signal DynamoRIO uses to mark the *target* a trace head."""
        term = self.terminator
        return term is not None and term.backward

    @property
    def ends_in_indirect(self) -> bool:
        """True if the block ends with an indirect transfer (forces a
        return to the dispatcher)."""
        term = self.terminator
        return term is not None and term.branch_kind is BranchKind.INDIRECT

    @property
    def end_address(self) -> int:
        """One past the last byte of the block."""
        return self.address + self.size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BasicBlock(id={self.block_id}, module={self.module_id}, "
            f"addr={self.address:#x}, size={self.size})"
        )
