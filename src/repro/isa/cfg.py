"""Weighted control-flow graph over basic blocks.

The execution engine walks this graph stochastically: each block's
outgoing edges carry probabilities that the engine samples to pick a
successor.  Loops are expressed as backward edges, which is also what
makes their targets trace heads in the optimizer front end.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError


@dataclass(frozen=True)
class Edge:
    """A weighted control-flow edge.

    Attributes:
        src: Source block id.
        dst: Destination block id.
        probability: Chance the walker follows this edge from ``src``.
    """

    src: int
    dst: int
    probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise WorkloadError(
                f"edge {self.src}->{self.dst}: probability {self.probability} "
                "outside [0, 1]"
            )


class ControlFlowGraph:
    """Adjacency structure with per-edge probabilities.

    Successor probabilities of a block must sum to 1 (within a small
    tolerance) unless the block is terminal (no successors), in which
    case the walker treats reaching it as the end of a path.
    """

    _TOLERANCE = 1e-6

    def __init__(self) -> None:
        self._succ: dict[int, list[Edge]] = {}
        self._pred: dict[int, list[Edge]] = {}
        self._blocks: set[int] = set()

    def add_block(self, block_id: int) -> None:
        """Register a block id as a graph node."""
        self._blocks.add(block_id)

    def add_edge(self, src: int, dst: int, probability: float) -> None:
        """Add a weighted edge; both endpoints are registered."""
        edge = Edge(src, dst, probability)
        self._blocks.add(src)
        self._blocks.add(dst)
        self._succ.setdefault(src, []).append(edge)
        self._pred.setdefault(dst, []).append(edge)

    @property
    def blocks(self) -> set[int]:
        """All registered block ids."""
        return set(self._blocks)

    def successors(self, block_id: int) -> list[Edge]:
        """Outgoing edges of *block_id* (empty list if terminal)."""
        return list(self._succ.get(block_id, []))

    def predecessors(self, block_id: int) -> list[Edge]:
        """Incoming edges of *block_id*."""
        return list(self._pred.get(block_id, []))

    def is_terminal(self, block_id: int) -> bool:
        """True if *block_id* has no successors."""
        return not self._succ.get(block_id)

    def validate(self) -> None:
        """Check that every non-terminal block's probabilities sum to 1.

        Raises:
            WorkloadError: on the first malformed block found.
        """
        for block_id, edges in self._succ.items():
            total = sum(edge.probability for edge in edges)
            if abs(total - 1.0) > self._TOLERANCE:
                raise WorkloadError(
                    f"block {block_id}: successor probabilities sum to "
                    f"{total:.6f}, expected 1.0"
                )

    def sample_successor(self, block_id: int, uniform: float) -> int | None:
        """Pick a successor of *block_id* using a pre-drawn uniform
        value in [0, 1).  Returns ``None`` for terminal blocks.

        Taking the uniform as an argument (instead of an RNG) keeps the
        graph free of random state and trivially testable.
        """
        edges = self._succ.get(block_id)
        if not edges:
            return None
        cumulative = 0.0
        for edge in edges:
            cumulative += edge.probability
            if uniform < cumulative:
                return edge.dst
        # Guard against floating-point shortfall: fall back to the
        # final edge, which is where a sum of exactly 1.0 would land.
        return edges[-1].dst

    def remove_block(self, block_id: int) -> None:
        """Remove a block and all incident edges (used when a module is
        unloaded for good)."""
        self._blocks.discard(block_id)
        for edge in self._succ.pop(block_id, []):
            self._pred[edge.dst] = [
                e for e in self._pred.get(edge.dst, []) if e.src != block_id
            ]
        for edge in self._pred.pop(block_id, []):
            self._succ[edge.src] = [
                e for e in self._succ.get(edge.src, []) if e.dst != block_id
            ]

    def __len__(self) -> int:
        return len(self._blocks)
