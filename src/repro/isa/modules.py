"""Modules and the program address space.

Windows applications load and unload DLLs at run time; whenever a
region of memory containing code is unmapped, every trace built from it
must be deleted from the code cache (paper, Section 3.4).  Modules are
the unit of that mapping: each owns a contiguous address range and a
set of basic blocks, and can be unloaded and (at a fresh address)
reloaded.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import RuntimeStateError


class ModuleKind(enum.Enum):
    """What kind of code a module holds."""

    EXECUTABLE = "executable"
    SYSTEM_LIBRARY = "system_library"
    PLUGIN_DLL = "plugin_dll"


@dataclass
class Module:
    """A loadable unit of code (the executable or one DLL).

    Attributes:
        module_id: Unique id within the program.
        name: Human-readable name (e.g. ``"word.exe"``, ``"mso.dll"``).
        kind: Executable / system library / unloadable plugin DLL.
        base_address: Load address; ``None`` while unloaded.
        code_size: Static code footprint in bytes.
        block_ids: Basic blocks belonging to this module.
        unloadable: Whether the workload may unmap this module.
    """

    module_id: int
    name: str
    kind: ModuleKind
    code_size: int
    base_address: int | None = None
    block_ids: list[int] = field(default_factory=list)
    unloadable: bool = False

    @property
    def loaded(self) -> bool:
        """True while the module is mapped."""
        return self.base_address is not None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = f"@{self.base_address:#x}" if self.loaded else "unloaded"
        return f"Module({self.name}, id={self.module_id}, {state})"


class AddressSpace:
    """A simple bump allocator of module load addresses.

    Real loaders reuse address ranges — that reuse is exactly why
    unmapped code must be purged from the code cache (a different DLL
    could occupy the same addresses).  We model reuse explicitly:
    unloading releases the range, and a later load may receive a
    previously released base address.
    """

    def __init__(self, base: int = 0x0040_0000, alignment: int = 0x1000) -> None:
        if alignment <= 0 or alignment & (alignment - 1):
            raise ValueError("alignment must be a positive power of two")
        self._next = base
        self._alignment = alignment
        self._free_ranges: list[tuple[int, int]] = []  # (base, size), reusable
        self._live: dict[int, tuple[int, int]] = {}  # module_id -> (base, size)

    def _align(self, value: int) -> int:
        mask = self._alignment - 1
        return (value + mask) & ~mask

    def map(self, module: Module) -> int:
        """Assign *module* a base address and mark it loaded.

        Prefers reusing a released range that is large enough (first
        fit), mirroring OS loader behaviour that makes stale code-cache
        entries dangerous.
        """
        if module.loaded:
            raise RuntimeStateError(f"module {module.name} is already loaded")
        size = self._align(module.code_size)
        for index, (base, free_size) in enumerate(self._free_ranges):
            if free_size >= size:
                if free_size == size:
                    del self._free_ranges[index]
                else:
                    self._free_ranges[index] = (base + size, free_size - size)
                module.base_address = base
                self._live[module.module_id] = (base, size)
                return base
        base = self._next
        self._next = base + size
        module.base_address = base
        self._live[module.module_id] = (base, size)
        return base

    def unmap(self, module: Module) -> None:
        """Release *module*'s address range for reuse."""
        if not module.loaded:
            raise RuntimeStateError(f"module {module.name} is not loaded")
        base, size = self._live.pop(module.module_id)
        self._free_ranges.append((base, size))
        module.base_address = None

    @property
    def live_modules(self) -> list[int]:
        """Ids of currently mapped modules."""
        return sorted(self._live)

    def range_of(self, module_id: int) -> tuple[int, int]:
        """Return (base, aligned size) of a mapped module."""
        if module_id not in self._live:
            raise RuntimeStateError(f"module {module_id} is not mapped")
        return self._live[module_id]
