"""SyntheticProgram: modules + blocks + CFG, built programmatically.

A :class:`SyntheticProgram` is the unit the execution engine runs and
the dynamic-optimizer runtime instruments.  Workload generators build
programs with the loop structure, module layout and phase behaviour of
the benchmark they model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RuntimeStateError, WorkloadError
from repro.isa.blocks import BasicBlock
from repro.isa.cfg import ControlFlowGraph
from repro.isa.instructions import (
    Instruction,
    Opcode,
    conditional_branch,
    straightline,
)
from repro.isa.modules import AddressSpace, Module, ModuleKind


@dataclass
class SyntheticProgram:
    """A complete synthetic program.

    Attributes:
        name: Benchmark name (e.g. ``"gzip"`` or ``"word"``).
        modules: All modules keyed by id (loaded or not).
        blocks: All basic blocks keyed by id.
        cfg: The weighted control-flow graph.
        entry_block: Block id where execution starts.
    """

    name: str
    modules: dict[int, Module] = field(default_factory=dict)
    blocks: dict[int, BasicBlock] = field(default_factory=dict)
    cfg: ControlFlowGraph = field(default_factory=ControlFlowGraph)
    entry_block: int = 0
    address_space: AddressSpace = field(default_factory=AddressSpace)

    @property
    def code_footprint(self) -> int:
        """Static code footprint in bytes: the size of all code the
        program can execute, including libraries (Equation 1's
        denominator)."""
        return sum(module.code_size for module in self.modules.values())

    def module_of_block(self, block_id: int) -> Module:
        """Return the module owning *block_id*."""
        block = self.blocks.get(block_id)
        if block is None:
            raise RuntimeStateError(f"unknown block {block_id}")
        return self.modules[block.module_id]

    def load_module(self, module_id: int) -> None:
        """Map a module into the address space."""
        self.address_space.map(self.modules[module_id])

    def unload_module(self, module_id: int) -> None:
        """Unmap a module; its blocks become non-executable until it is
        loaded again."""
        self.address_space.unmap(self.modules[module_id])

    def validate(self) -> None:
        """Cross-check blocks, modules and CFG consistency."""
        self.cfg.validate()
        for block in self.blocks.values():
            if block.module_id not in self.modules:
                raise WorkloadError(
                    f"block {block.block_id} references unknown module "
                    f"{block.module_id}"
                )
        if self.entry_block not in self.blocks:
            raise WorkloadError(f"entry block {self.entry_block} does not exist")


class ProgramBuilder:
    """Incremental builder for :class:`SyntheticProgram`.

    The builder hands out block ids, keeps module membership straight,
    and provides the common structural idioms (straight-line runs,
    loops) that workload generators compose.
    """

    def __init__(self, name: str) -> None:
        self._program = SyntheticProgram(name=name)
        self._next_block = 0
        self._next_module = 0

    def add_module(
        self,
        name: str,
        kind: ModuleKind,
        code_size: int = 0,
        unloadable: bool = False,
        loaded: bool = True,
    ) -> Module:
        """Create a module; ``code_size`` may be grown implicitly as
        blocks are added."""
        module = Module(
            module_id=self._next_module,
            name=name,
            kind=kind,
            code_size=code_size,
            unloadable=unloadable,
        )
        self._next_module += 1
        self._program.modules[module.module_id] = module
        if loaded:
            self._program.address_space.map(module)
        return module

    def add_block(
        self,
        module: Module,
        instructions: list[Instruction] | None = None,
        body_length: int = 5,
        terminator: Instruction | None = None,
    ) -> BasicBlock:
        """Create a basic block inside *module*.

        Either pass explicit *instructions*, or a *body_length* of
        straight-line filler plus an optional *terminator*.
        """
        if instructions is None:
            instructions = [straightline(Opcode.ALU) for _ in range(body_length)]
            if terminator is not None:
                instructions.append(terminator)
        base = module.base_address if module.base_address is not None else 0
        offset = sum(
            self._program.blocks[b].size for b in module.block_ids
        )
        block = BasicBlock(
            block_id=self._next_block,
            module_id=module.module_id,
            address=base + offset,
            instructions=instructions,
        )
        self._next_block += 1
        self._program.blocks[block.block_id] = block
        module.block_ids.append(block.block_id)
        module.code_size += block.size
        self._program.cfg.add_block(block.block_id)
        return block

    def chain(self, blocks: list[BasicBlock]) -> None:
        """Connect *blocks* in sequence with probability-1 fallthrough
        edges."""
        for src, dst in zip(blocks, blocks[1:]):
            self._program.cfg.add_edge(src.block_id, dst.block_id, 1.0)

    def add_loop(
        self,
        module: Module,
        body_blocks: int,
        iterations_mean: float,
        block_body_length: int = 5,
    ) -> tuple[BasicBlock, BasicBlock]:
        """Build a natural loop of *body_blocks* blocks.

        The final block conditionally branches back to the head with
        probability ``p = 1 - 1/iterations_mean`` (geometric iteration
        count with the requested mean) and falls through otherwise.

        Returns (head, exit) blocks; the caller wires the exit onward.
        """
        if iterations_mean < 1.0:
            raise WorkloadError("loop must iterate at least once on average")
        body = [
            self.add_block(module, body_length=block_body_length)
            for _ in range(max(0, body_blocks - 1))
        ]
        head = body[0] if body else None
        # The tail carries a backward conditional branch to the head, the
        # signal that makes the head a trace-head candidate in the runtime.
        head_id = head.block_id if head is not None else self._next_block
        tail = self.add_block(
            module,
            body_length=block_body_length,
            terminator=conditional_branch(head_id, backward=True),
        )
        if head is None:
            head = tail
        blocks = body + [tail]
        self.chain(blocks)
        back_probability = max(0.0, 1.0 - 1.0 / iterations_mean)
        exit_block = self.add_block(module, body_length=block_body_length)
        self._program.cfg.add_edge(tail.block_id, head.block_id, back_probability)
        self._program.cfg.add_edge(
            tail.block_id, exit_block.block_id, 1.0 - back_probability
        )
        return head, exit_block

    def connect(self, src: BasicBlock, dst: BasicBlock, probability: float) -> None:
        """Add an explicit weighted edge."""
        self._program.cfg.add_edge(src.block_id, dst.block_id, probability)

    def set_entry(self, block: BasicBlock) -> None:
        """Mark the program entry point."""
        self._program.entry_block = block.block_id

    def finish(self) -> SyntheticProgram:
        """Validate and return the built program."""
        self._program.validate()
        return self._program


def tiny_loop_program(name: str = "tiny", iterations_mean: float = 100.0) -> SyntheticProgram:
    """A minimal single-loop program used by tests and the quickstart
    example: entry -> loop(head..tail) -> exit (terminal)."""
    builder = ProgramBuilder(name)
    main = builder.add_module("main.exe", ModuleKind.EXECUTABLE)
    entry = builder.add_block(main, body_length=3)
    head, exit_block = builder.add_loop(
        main, body_blocks=2, iterations_mean=iterations_mean
    )
    builder.connect(entry, head, 1.0)
    builder.set_entry(entry)
    return builder.finish()
