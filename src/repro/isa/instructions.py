"""A small synthetic instruction set.

We do not need real semantics — only the properties that matter to a
dynamic optimizer's front end:

* instructions have sizes (so blocks and traces have byte sizes, which
  drive cache placement and the Table 2 cost formulas);
* the final instruction of a basic block is a control transfer with a
  direction (a *backward* branch signals a loop and makes its target a
  trace head);
* branches can be direct (patchable during relocation) or indirect
  (must return to the dispatcher).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Opcode(enum.Enum):
    """Opcode classes, deliberately coarse.

    ``ALU``/``LOAD``/``STORE`` are straight-line filler; the remaining
    opcodes terminate basic blocks.
    """

    ALU = "alu"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    CALL = "call"
    RETURN = "return"

    @property
    def is_control_transfer(self) -> bool:
        """True if this opcode ends a basic block."""
        return self in (Opcode.BRANCH, Opcode.JUMP, Opcode.CALL, Opcode.RETURN)


class BranchKind(enum.Enum):
    """How a control transfer selects its target."""

    #: No transfer at all (straight-line instruction).
    NONE = "none"
    #: Conditional direct branch: taken target + fall-through.
    CONDITIONAL = "conditional"
    #: Unconditional direct jump.
    DIRECT = "direct"
    #: Indirect jump/call/return: target known only at run time.
    INDIRECT = "indirect"


#: Byte sizes per opcode class, loosely modelled on average IA-32
#: encodings.  They only need to be plausible and stable.
_OPCODE_SIZES = {
    Opcode.ALU: 3,
    Opcode.LOAD: 4,
    Opcode.STORE: 4,
    Opcode.BRANCH: 2,
    Opcode.JUMP: 5,
    Opcode.CALL: 5,
    Opcode.RETURN: 1,
}


def encode_size(opcode: Opcode) -> int:
    """Return the encoded byte size of an instruction of *opcode*."""
    return _OPCODE_SIZES[opcode]


@dataclass(frozen=True)
class Instruction:
    """One synthetic instruction.

    Attributes:
        opcode: Coarse opcode class.
        branch_kind: How (if at all) control transfers.
        target_block: For direct transfers, the id of the target basic
            block (``None`` for fall-through-only or indirect).
        backward: True if the transfer goes to a lower address —
            DynamoRIO treats the target of a backward branch as a
            potential trace head.
    """

    opcode: Opcode
    branch_kind: BranchKind = BranchKind.NONE
    target_block: int | None = None
    backward: bool = False

    def __post_init__(self) -> None:
        if self.branch_kind is BranchKind.NONE and self.opcode.is_control_transfer:
            raise ValueError(f"{self.opcode} must carry a branch kind")
        if self.branch_kind is not BranchKind.NONE and not self.opcode.is_control_transfer:
            raise ValueError(f"{self.opcode} cannot carry branch kind {self.branch_kind}")
        if self.branch_kind is BranchKind.INDIRECT and self.target_block is not None:
            raise ValueError("indirect transfers have no static target")

    @property
    def size(self) -> int:
        """Encoded size in bytes."""
        return encode_size(self.opcode)

    @property
    def is_control_transfer(self) -> bool:
        """True if this instruction ends a basic block."""
        return self.opcode.is_control_transfer


def straightline(opcode: Opcode = Opcode.ALU) -> Instruction:
    """Build a non-branching filler instruction."""
    return Instruction(opcode=opcode)


def conditional_branch(target_block: int, backward: bool) -> Instruction:
    """Build a conditional direct branch to *target_block*."""
    return Instruction(
        opcode=Opcode.BRANCH,
        branch_kind=BranchKind.CONDITIONAL,
        target_block=target_block,
        backward=backward,
    )


def direct_jump(target_block: int, backward: bool = False) -> Instruction:
    """Build an unconditional direct jump to *target_block*."""
    return Instruction(
        opcode=Opcode.JUMP,
        branch_kind=BranchKind.DIRECT,
        target_block=target_block,
        backward=backward,
    )


def indirect_jump() -> Instruction:
    """Build an indirect jump (target resolved at run time)."""
    return Instruction(opcode=Opcode.JUMP, branch_kind=BranchKind.INDIRECT)


def call(target_block: int) -> Instruction:
    """Build a direct call to *target_block*."""
    return Instruction(
        opcode=Opcode.CALL,
        branch_kind=BranchKind.DIRECT,
        target_block=target_block,
    )


def ret() -> Instruction:
    """Build a return (an indirect transfer)."""
    return Instruction(opcode=Opcode.RETURN, branch_kind=BranchKind.INDIRECT)
