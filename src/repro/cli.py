"""Command-line interface.

Examples::

    repro-gencache list                      # show the benchmark catalog
    repro-gencache run figure-9 --quick      # regenerate one figure
    repro-gencache run all --quick --jobs 4  # same, over a worker pool
    repro-gencache sweep word --jobs 8       # Section 6.1 sweep, parallel
    repro-gencache record gzip out.log       # synthesize + save a log
    repro-gencache profile figure-9 --quick  # cProfile + phase-timing JSON

    repro-gencache serve --port 8350         # start the simulation service
    repro-gencache cluster-serve --shards 3  # sharded cluster + streaming
    repro-gencache loadgen --quick           # benchmark it -> BENCH_service
    repro-gencache submit figure-9 --quick   # run a job over HTTP
    repro-gencache status <job-id>           # poll one job
    repro-gencache fetch <job-id>            # print a finished table

    repro-gencache calibrate word --from-profile gzip   # inverse synthesis
    repro-gencache fuzz --victim generational --reference unified
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.analysis.sanitizer import DEFAULT_STRIDE, TOTALS, enable_sanitizer
from repro.errors import ConfigError, ServiceError
from repro.experiments.base import render_table
from repro.experiments.dataset import quick_subset
from repro.experiments.runner import (
    ALL_EXPERIMENT_IDS,
    EXTENSION_EXPERIMENT_IDS,
    experiment_specs,
    render_all,
    run_all,
)
from repro.experiments import sweep as sweep_module
from repro.service.client import ServiceClient
from repro.service.jobs import spec_from_dict
from repro.service.http import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    make_server,
    serve_until_signal,
)
from repro.service.scheduler import (
    DEFAULT_RETRIES,
    DEFAULT_TIMEOUT,
    TERMINAL_STATES,
    Scheduler,
)
from repro.service.store import ResultStore
from repro.service.workers import result_from_dict
from repro.tracelog.binary import write_binary_log
from repro.tracelog.writer import write_log
from repro.units import format_bytes
from repro.workloads.catalog import all_profiles, get_profile
from repro.workloads.synthesis import synthesize_log

#: Fallback server URL for the client verbs (overridden by --server or
#: the REPRO_SERVER environment variable).
DEFAULT_SERVER = f"http://{DEFAULT_HOST}:{DEFAULT_PORT}"

#: Default on-disk result store for ``serve``.
DEFAULT_STORE = os.path.join("~", ".cache", "repro-gencache", "results")


def _cmd_list(_args: argparse.Namespace) -> int:
    print(f"{'name':12s} {'suite':12s} {'size':>10s} {'secs':>7s} {'unmap%':>7s}  description")
    for profile in all_profiles(include_scenarios=True):
        print(
            f"{profile.name:12s} {profile.suite:12s} "
            f"{format_bytes(profile.total_trace_bytes):>10s} "
            f"{profile.duration_seconds:7.0f} "
            f"{profile.unmap_fraction * 100:7.1f}  {profile.description}"
        )
    return 0


# ----------------------------------------------------------------------
# Argument validation (structured ConfigError -> exit code 2)
# ----------------------------------------------------------------------

KNOWN_EXPERIMENT_IDS = ALL_EXPERIMENT_IDS + EXTENSION_EXPERIMENT_IDS


def _validate_experiment_ids(ids: tuple[str, ...]) -> None:
    unknown = [i for i in ids if i not in KNOWN_EXPERIMENT_IDS]
    if unknown:
        raise ConfigError(
            f"unknown experiment(s) {unknown}; choose from "
            f"{', '.join(KNOWN_EXPERIMENT_IDS)} or 'all'"
        )


def _validate_scale(args: argparse.Namespace, allow_zero: bool = False) -> None:
    scale = getattr(args, "scale", 1.0)
    if scale < 0 or (scale == 0 and not allow_zero):
        raise ConfigError(
            f"--scale must be a positive divisor, got {scale:g}"
        )
    if getattr(args, "quick", False) and 0 < scale < 1.0:
        raise ConfigError(
            f"conflicting flags: --quick exists to shrink a run, but "
            f"--scale {scale:g} < 1 would inflate the workload; drop one"
        )


def _validate_dispatch(args: argparse.Namespace) -> None:
    jobs = getattr(args, "jobs", 1)
    if jobs < 1:
        raise ConfigError(f"--jobs must be >= 1, got {jobs}")
    if getattr(args, "server", None) and jobs > 1:
        raise ConfigError(
            "conflicting flags: --server delegates scheduling to the "
            "remote service; --jobs only applies to local pools"
        )


# ----------------------------------------------------------------------
# Sanitizer plumbing
# ----------------------------------------------------------------------


def _apply_sanitize(args: argparse.Namespace) -> None:
    """Turn on the process-wide replay sanitizer when requested."""
    if getattr(args, "sanitize", False):
        enable_sanitizer(stride=args.sanitize_stride)


def _print_sanitize_summary(
    args: argparse.Namespace, worker_jobs: int = 0
) -> None:
    if not getattr(args, "sanitize", False):
        return
    if worker_jobs:
        # The checks ran inside worker processes (a violation would
        # have failed the job), so the local TOTALS stay zero.
        print(
            f"sanitizer: invariant sweeps ran inside {worker_jobs} "
            "worker job(s); no violations"
        )
    else:
        print(
            f"sanitizer: {TOTALS.checks} invariant sweep(s) over "
            f"{TOTALS.events} event(s) across {TOTALS.simulations} "
            "simulation(s); no violations"
        )


# ----------------------------------------------------------------------
# One-shot commands
# ----------------------------------------------------------------------


def _cmd_run(args: argparse.Namespace) -> int:
    ids = ALL_EXPERIMENT_IDS if args.experiment == "all" else (args.experiment,)
    _validate_experiment_ids(ids)
    _validate_scale(args)
    _validate_dispatch(args)
    subset = quick_subset() if args.quick else None
    if args.server:
        return _run_via_server(args, ids, subset)
    _apply_sanitize(args)
    store = ResultStore(os.path.expanduser(args.store)) if args.store else None
    results = run_all(
        seed=args.seed,
        scale_multiplier=args.scale,
        subset=subset,
        experiment_ids=tuple(ids),
        jobs=args.jobs,
        store=store,
        sanitize=args.sanitize,
        sanitize_stride=args.sanitize_stride,
    )
    print(render_all(results))
    _print_sanitize_summary(args, worker_jobs=len(ids) if args.jobs > 1 else 0)
    return 0


def _run_via_server(
    args: argparse.Namespace, ids: tuple[str, ...], subset: list[str] | None
) -> int:
    client = ServiceClient(args.server)
    specs = experiment_specs(
        tuple(ids),
        seed=args.seed,
        scale_multiplier=args.scale,
        subset=subset,
        sanitize=args.sanitize,
        sanitize_stride=args.sanitize_stride,
    )
    statuses = [client.submit(spec) for spec in specs]
    results = []
    cached = 0
    for status in statuses:
        if status.get("state") not in TERMINAL_STATES:
            status = client.wait(status["job_id"], timeout=args.timeout)
        if status.get("state") != "done":
            raise ServiceError(
                f"job {status.get('job_id')} failed: {status.get('error')}"
            )
        cached += bool(status.get("cached"))
        payload = client.result(status["job_id"])
        results.append(result_from_dict(payload["result"]))
    print(render_all(results))
    if cached:
        print(f"{cached}/{len(statuses)} job(s) served from the result store")
    _print_sanitize_summary(args, worker_jobs=len(ids))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    _validate_scale(args)
    _validate_dispatch(args)
    _apply_sanitize(args)
    store = ResultStore(os.path.expanduser(args.store)) if args.store else None
    result = sweep_module.run(
        benchmark=args.benchmark,
        seed=args.seed,
        scale_multiplier=args.scale,
        jobs=args.jobs,
        store=store,
    )
    print(render_table(result))
    print()
    link = sweep_module.probation_threshold_link(
        benchmark=args.benchmark,
        seed=args.seed,
        scale_multiplier=args.scale,
        jobs=args.jobs,
        store=store,
    )
    print(render_table(link))
    _print_sanitize_summary(args)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    _validate_experiment_ids((args.experiment,))
    _validate_scale(args)
    # Imported lazily: cProfile/pstats stay out of ordinary runs.
    from repro.fastpath.profiling import profile_experiment

    subset = quick_subset() if args.quick else None
    out_dir = os.path.expanduser(args.out)
    os.makedirs(out_dir, exist_ok=True)
    profile_path = os.path.join(out_dir, f"profile_{args.experiment}.prof")
    report = profile_experiment(
        args.experiment,
        seed=args.seed,
        scale_multiplier=args.scale,
        subset=subset,
        sweep_benchmark=args.sweep_benchmark,
        top=args.top,
        profile_path=profile_path,
    )
    timing_path = os.path.join(out_dir, f"profile_{args.experiment}.json")
    rendered = json.dumps(report, indent=2, sort_keys=True)
    with open(timing_path, "w", encoding="utf-8") as stream:
        stream.write(rendered + "\n")
    print(rendered)
    print(
        f"profile: {profile_path} (pstats), {timing_path} (timing JSON)",
        file=sys.stderr,
    )
    return 0


def _cmd_record(args: argparse.Namespace) -> int:
    _validate_scale(args, allow_zero=True)
    profile = get_profile(args.benchmark)
    log = synthesize_log(profile, seed=args.seed, scale=args.scale or None)
    if args.binary:
        write_binary_log(log, args.output)
    else:
        write_log(log, args.output)
    print(
        f"recorded {log.n_traces} traces / {log.n_accesses} accesses "
        f"({format_bytes(log.total_trace_bytes)}) to {args.output}"
        f"{' [binary]' if args.binary else ''}"
    )
    return 0


# ----------------------------------------------------------------------
# Scenario search commands
# ----------------------------------------------------------------------

#: --quick calibration: evaluation budget and the core parameter
#: subset the quick search is restricted to.
QUICK_CALIBRATE_BUDGET = 24
QUICK_CALIBRATE_PARAMETERS = (
    "total_trace_kb",
    "duration_seconds",
    "unmap_fraction",
    "lifetime_short",
    "lifetime_long",
)


def _load_target(args: argparse.Namespace):
    """The :class:`ScenarioTarget` a ``calibrate`` invocation fits."""
    from repro.scenarios.targets import ScenarioTarget, target_from_profile

    if (args.target is None) == (args.from_profile is None):
        raise ConfigError(
            "calibrate needs exactly one of --target FILE or "
            "--from-profile NAME"
        )
    if args.target is not None:
        try:
            with open(args.target, "r", encoding="utf-8") as stream:
                data = json.load(stream)
        except OSError as exc:
            raise ConfigError(f"cannot read target {args.target}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ConfigError(
                f"target {args.target} is not valid JSON: {exc}"
            ) from exc
        return ScenarioTarget.from_dict(data)
    return target_from_profile(
        get_profile(args.from_profile), args.seed, args.scale
    )


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.scenarios.artifact import from_calibration
    from repro.scenarios.calibrate import calibrate

    if args.scale <= 0:
        raise ConfigError(f"--scale must be positive, got {args.scale:g}")
    base = get_profile(args.benchmark)
    if args.emit_target:
        from repro.scenarios.targets import target_from_profile

        target = target_from_profile(base, args.seed, args.scale)
        rendered = json.dumps(target.to_dict(), indent=2, sort_keys=True)
        with open(args.emit_target, "w", encoding="utf-8") as stream:
            stream.write(rendered + "\n")
        print(f"target for {base.name} written to {args.emit_target}")
        return 0
    target = _load_target(args)
    budget = args.budget
    parameters = (
        tuple(args.parameters.split(",")) if args.parameters else None
    )
    if args.quick:
        budget = min(budget, QUICK_CALIBRATE_BUDGET)
        if parameters is None:
            parameters = QUICK_CALIBRATE_PARAMETERS
    result = calibrate(
        target,
        base,
        seed=args.seed,
        scale=args.scale,
        budget=budget,
        tolerance=args.tolerance,
        parameters=parameters,
    )
    artifact = from_calibration(result, target.name)
    print(
        f"calibrated {base.name} -> {target.name}: objective "
        f"{result.best_objective:.4f} "
        f"({'converged' if result.converged else 'budget exhausted'} "
        f"after {result.evaluations} evaluations)"
    )
    for key, value in sorted(result.components.items()):
        print(f"  {key:15s} {value:.4f}")
    if args.out:
        path = artifact.save(os.path.expanduser(args.out))
        print(f"artifact {artifact.scenario_id} written to {path}")
    else:
        print(artifact.to_json(), end="")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.scenarios.artifact import from_counterexample
    from repro.scenarios.fuzz import fuzz

    result = fuzz(
        victim=args.victim,
        reference=args.reference,
        seed=args.seed,
        scale=args.scale,
        rounds=args.rounds,
        bases=tuple(args.base.split(",")),
        min_regret=args.min_regret,
    )
    print(
        f"fuzzed {result.victim} vs {result.reference}: "
        f"{len(result.counterexamples)} counterexample(s) from "
        f"{result.candidates} candidate(s) over {result.rounds} round(s); "
        f"best regret {result.best_regret * 100:.2f}%"
    )
    for cx in result.counterexamples:
        artifact = from_counterexample(cx)
        print(
            f"  {artifact.name}: regret "
            f"{artifact.expected_regret * 100:.2f}% at fraction "
            f"{cx.capacity_fraction:g} "
            f"(mutators: {', '.join(cx.mutators)}; "
            f"{cx.shrink_steps} shrink step(s))"
        )
        if args.out:
            path = artifact.save(os.path.expanduser(args.out))
            print(f"    written to {path}")
    if not result.counterexamples:
        print(
            "  no candidate cleared the regret threshold "
            f"({args.min_regret * 100:.2f}%); try more --rounds or "
            "another --reference"
        )
    return 0


# ----------------------------------------------------------------------
# Service commands
# ----------------------------------------------------------------------


def _cmd_serve(args: argparse.Namespace) -> int:
    store = None
    if args.store:
        store = ResultStore(os.path.expanduser(args.store))
    scheduler = Scheduler(
        workers=args.jobs,
        store=store,
        timeout=args.timeout,
        max_retries=args.retries,
    )
    server = make_server(scheduler, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    with scheduler:
        print(
            f"repro-gencache service listening on http://{host}:{port} "
            f"({args.jobs} worker(s)"
            + (f", store {args.store})" if args.store else ", no store)"),
            flush=True,
        )
        signum = serve_until_signal(server, grace=args.grace)
        print(
            f"signal {signum}: drained in-flight jobs, shutting down",
            file=sys.stderr,
        )
    return 0


def _cmd_cluster_serve(args: argparse.Namespace) -> int:
    # Imported lazily: the cluster layer (and asyncio) stays out of
    # every other verb.
    from repro.cluster import (
        AdmissionController,
        ClusterScheduler,
        EventBus,
        TieredResultStore,
    )
    from repro.cluster.http import ClusterServer
    from repro.cluster.http import serve_until_signal as cluster_serve_until

    disk = ResultStore(os.path.expanduser(args.store)) if args.store else None
    retention_kwargs = (
        {"completed_retention": args.retention}
        if args.retention is not None
        else {}
    )
    cluster = ClusterScheduler(
        shards=args.shards,
        workers_per_shard=args.workers_per_shard,
        store=TieredResultStore(disk),
        admission=AdmissionController(watermark=args.watermark, rate=args.rate),
        bus=EventBus(),
        timeout=args.timeout,
        max_retries=args.retries,
        **retention_kwargs,
    )
    cluster.start()
    server = ClusterServer(cluster, host=args.host, port=args.port)
    host, port = server.start()
    print(
        f"repro-gencache cluster listening on http://{host}:{port} "
        f"({args.shards} shard(s) x {args.workers_per_shard} worker(s), "
        f"watermark {args.watermark}"
        + (f", store {args.store})" if args.store else ", memory store)"),
        flush=True,
    )
    signum = cluster_serve_until(server, grace=args.grace)
    print(
        f"signal {signum}: drained in-flight jobs, shutting down",
        file=sys.stderr,
    )
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.cluster import loadgen as loadgen_module

    clients = args.clients
    requests = args.requests
    population = args.population
    if args.quick:
        clients = min(clients, 16)
        requests = min(requests, 6)
        population = min(population, 16)
    if args.server:
        document = loadgen_module.run_load(
            args.server,
            clients=clients,
            requests=requests,
            population=loadgen_module.build_population(
                population, seed=args.seed, scale=args.scale
            ),
            tenants=args.tenants,
            seed=args.seed,
            rounds=args.rounds,
        )
    else:
        document = loadgen_module.run_inprocess(
            shards=args.shards,
            workers_per_shard=args.workers_per_shard,
            store_dir=(
                os.path.expanduser(args.store) if args.store else None
            ),
            watermark=args.watermark,
            rate=args.rate,
            retention=args.retention,
            clients=clients,
            requests=requests,
            population_size=population,
            tenants=args.tenants,
            seed=args.seed,
            scale=args.scale,
            rounds=args.rounds,
        )
    json_path, text_path = loadgen_module.write_bench(
        document, os.path.expanduser(args.out)
    )
    print(loadgen_module.render_bench(document), end="")
    print(f"reports: {json_path}, {text_path}", file=sys.stderr)
    return 0


def _submit_spec(args: argparse.Namespace):
    """The :class:`JobSpec` a ``submit`` invocation describes.

    Either a positional experiment id or a raw ``--spec`` JSON object
    (any job kind, e.g. a single sweep-point or shared-mix cell); both
    validate locally first, so a malformed spec is a ConfigError (exit
    2) before anything reaches the service.
    """
    if args.spec is not None:
        if args.experiment is not None:
            raise ConfigError(
                "pass either an experiment id or --spec, not both"
            )
        try:
            data = json.loads(args.spec)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"--spec is not valid JSON: {exc}") from exc
        return spec_from_dict(data)
    if args.experiment is None:
        raise ConfigError("submit needs an experiment id or --spec")
    if args.experiment == "all":
        raise ConfigError(
            "submit takes a single experiment id; use "
            "'run all --server URL' for the full set"
        )
    _validate_experiment_ids((args.experiment,))
    _validate_scale(args)
    subset = quick_subset() if args.quick else None
    return experiment_specs(
        (args.experiment,),
        seed=args.seed,
        scale_multiplier=args.scale,
        subset=subset,
        sanitize=args.sanitize,
        sanitize_stride=args.sanitize_stride,
    )[0]


def _cmd_submit(args: argparse.Namespace) -> int:
    spec = _submit_spec(args)
    client = ServiceClient(args.server)
    status = client.submit(spec)
    source = " (served from result store)" if status.get("cached") else ""
    print(f"job {status['job_id']}: {status['state']}{source}")
    if args.no_wait:
        return 0
    if status.get("state") not in TERMINAL_STATES:
        status = client.wait(status["job_id"], timeout=args.timeout)
    if status.get("state") != "done":
        raise ServiceError(
            f"job {status['job_id']} failed: {status.get('error')}"
        )
    payload = client.result(status["job_id"])
    if payload.get("kind") == "experiment":
        print(render_table(result_from_dict(payload["result"])))
    else:
        print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    status = ServiceClient(args.server).status(args.job_id)
    for key in ("job_id", "kind", "state", "cached", "attempts",
                "runtime_seconds", "error"):
        if status.get(key) is not None:
            print(f"{key}: {status[key]}")
    return 0 if status.get("state") != "failed" else 1


def _cmd_fetch(args: argparse.Namespace) -> int:
    payload = ServiceClient(args.server).result(args.job_id)
    if payload.get("kind") == "experiment":
        print(render_table(result_from_dict(payload["result"])))
    else:
        print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


def _add_sanitize_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sanitize", action="store_true",
        help="re-check cache/arena invariants during replay, raising "
        "InvariantViolation on the first corruption",
    )
    parser.add_argument(
        "--sanitize-stride", type=int, default=DEFAULT_STRIDE, metavar="N",
        help=f"events between invariant sweeps (default: {DEFAULT_STRIDE})",
    )


def _add_server_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--server", default=os.environ.get("REPRO_SERVER", DEFAULT_SERVER),
        metavar="URL",
        help="service base URL (default: $REPRO_SERVER or "
        f"{DEFAULT_SERVER})",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-gencache",
        description=(
            "Generational code-cache management for dynamic optimizers "
            "(Hazelwood & Smith, MICRO 2003 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show the benchmark catalog")

    run_parser = sub.add_parser("run", help="regenerate a table/figure")
    run_parser.add_argument("experiment", help="experiment id or 'all'")
    run_parser.add_argument("--seed", type=int, default=42)
    run_parser.add_argument(
        "--scale", type=float, default=1.0,
        help="extra scale divisor on top of profile defaults",
    )
    run_parser.add_argument(
        "--quick", action="store_true",
        help="use the 8-benchmark representative subset",
    )
    run_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan experiments out over N local worker processes",
    )
    run_parser.add_argument(
        "--server", default=None, metavar="URL",
        help="dispatch through a running repro-gencache service instead",
    )
    run_parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="memoize job results in DIR (with --jobs)",
    )
    run_parser.add_argument(
        "--timeout", type=float, default=1800.0, metavar="SECS",
        help="how long to wait for remote jobs (with --server)",
    )
    _add_sanitize_flags(run_parser)

    sweep_parser = sub.add_parser("sweep", help="Section 6.1 config sweep")
    sweep_parser.add_argument("benchmark", nargs="?", default="word")
    sweep_parser.add_argument("--seed", type=int, default=42)
    sweep_parser.add_argument("--scale", type=float, default=1.0)
    sweep_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan sweep grid cells out over N local worker processes",
    )
    sweep_parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="memoize sweep-point results in DIR (with --jobs)",
    )
    _add_sanitize_flags(sweep_parser)

    profile_parser = sub.add_parser(
        "profile",
        help="run one experiment under cProfile; emit phase-timing JSON",
    )
    profile_parser.add_argument("experiment", help="experiment id")
    profile_parser.add_argument("--seed", type=int, default=42)
    profile_parser.add_argument(
        "--scale", type=float, default=1.0,
        help="extra scale divisor on top of profile defaults",
    )
    profile_parser.add_argument(
        "--quick", action="store_true",
        help="use the 8-benchmark representative subset",
    )
    profile_parser.add_argument(
        "--sweep-benchmark", default="word", metavar="NAME",
        help="benchmark for the sweep/capacity experiments",
    )
    profile_parser.add_argument(
        "--top", type=int, default=15, metavar="N",
        help="functions to include in the timing JSON (default: 15)",
    )
    profile_parser.add_argument(
        "--out", default=".", metavar="DIR",
        help="directory for the .prof and .json outputs (default: .)",
    )

    record_parser = sub.add_parser("record", help="synthesize and save a log")
    record_parser.add_argument("benchmark")
    record_parser.add_argument("output")
    record_parser.add_argument("--seed", type=int, default=42)
    record_parser.add_argument("--scale", type=float, default=0.0)
    record_parser.add_argument(
        "--binary", action="store_true",
        help="write the compact varint binary format instead of text",
    )

    calibrate_parser = sub.add_parser(
        "calibrate",
        help="fit a profile's parameters to a target statistic "
        "(inverse workload synthesis)",
    )
    calibrate_parser.add_argument(
        "benchmark", help="base profile the search starts from"
    )
    calibrate_parser.add_argument(
        "--target", default=None, metavar="FILE",
        help="scenario-target JSON to fit (see 'calibrate --emit-target')",
    )
    calibrate_parser.add_argument(
        "--from-profile", default=None, metavar="NAME",
        help="fingerprint NAME and use it as the target (round-trip mode)",
    )
    calibrate_parser.add_argument(
        "--emit-target", default=None, metavar="FILE",
        help="fingerprint the base benchmark, write the target JSON to "
        "FILE, and exit without searching",
    )
    calibrate_parser.add_argument("--seed", type=int, default=42)
    calibrate_parser.add_argument(
        "--scale", type=float, default=256.0,
        help="synthesis scale divisor for candidate evaluation "
        "(default: 256)",
    )
    calibrate_parser.add_argument(
        "--budget", type=int, default=96, metavar="N",
        help="candidate-evaluation budget (default: 96)",
    )
    calibrate_parser.add_argument(
        "--tolerance", type=float, default=0.05, metavar="X",
        help="objective value considered converged (default: 0.05)",
    )
    calibrate_parser.add_argument(
        "--parameters", default=None, metavar="A,B,...",
        help="restrict the search to these parameter names",
    )
    calibrate_parser.add_argument(
        "--quick", action="store_true",
        help=f"cap the budget at {QUICK_CALIBRATE_BUDGET} and search only "
        "the core parameters (smoke-test mode)",
    )
    calibrate_parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="save the fitted-profile artifact into DIR "
        "(default: print JSON to stdout)",
    )

    fuzz_parser = sub.add_parser(
        "fuzz",
        help="search for workloads where one policy loses to another",
    )
    fuzz_parser.add_argument(
        "--victim", default="generational", metavar="NAME",
        help="contender whose losses the search maximizes "
        "(default: generational)",
    )
    fuzz_parser.add_argument(
        "--reference", default="unified", metavar="NAME",
        help="contender it is compared against (default: unified)",
    )
    fuzz_parser.add_argument("--seed", type=int, default=42)
    fuzz_parser.add_argument(
        "--scale", type=float, default=128.0,
        help="synthesis scale divisor for candidate evaluation "
        "(default: 128)",
    )
    fuzz_parser.add_argument(
        "--rounds", type=int, default=24, metavar="N",
        help="mutation rounds (default: 24)",
    )
    fuzz_parser.add_argument(
        "--min-regret", type=float, default=0.01, metavar="X",
        help="miss-rate gap (0-1) a counterexample must reach "
        "(default: 0.01)",
    )
    fuzz_parser.add_argument(
        "--base", default="word,gcc", metavar="A,B,...",
        help="base profiles mutation starts from (default: word,gcc)",
    )
    fuzz_parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="save surviving counterexample artifacts into DIR "
        "(load them back via REPRO_SCENARIO_DIR)",
    )

    serve_parser = sub.add_parser(
        "serve", help="start the HTTP simulation service"
    )
    serve_parser.add_argument("--host", default=DEFAULT_HOST)
    serve_parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    serve_parser.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="worker process count (default: 2)",
    )
    serve_parser.add_argument(
        "--store", default=DEFAULT_STORE, metavar="DIR",
        help=f"result store directory (default: {DEFAULT_STORE}; "
        "pass '' to disable memoization)",
    )
    serve_parser.add_argument(
        "--timeout", type=float, default=DEFAULT_TIMEOUT, metavar="SECS",
        help="per-job wall-clock limit",
    )
    serve_parser.add_argument(
        "--retries", type=int, default=DEFAULT_RETRIES, metavar="N",
        help="extra attempts after a worker crash or timeout",
    )
    serve_parser.add_argument(
        "--grace", type=float, default=30.0, metavar="SECS",
        help="drain window after SIGTERM/SIGINT before hard shutdown "
        "(default: 30)",
    )

    cluster_parser = sub.add_parser(
        "cluster-serve",
        help="start the sharded cluster service (asyncio front end, "
        "admission control, tiered result store)",
    )
    cluster_parser.add_argument("--host", default=DEFAULT_HOST)
    cluster_parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    cluster_parser.add_argument(
        "--shards", type=int, default=3, metavar="N",
        help="shard scheduler count (default: 3)",
    )
    cluster_parser.add_argument(
        "--workers-per-shard", type=int, default=1, metavar="N",
        help="worker processes per shard (default: 1)",
    )
    cluster_parser.add_argument(
        "--store", default=DEFAULT_STORE, metavar="DIR",
        help=f"disk tier directory (default: {DEFAULT_STORE}; "
        "pass '' for a memory-only hot tier)",
    )
    cluster_parser.add_argument(
        "--watermark", type=int, default=256, metavar="N",
        help="cluster-wide queue-depth shed watermark (default: 256)",
    )
    cluster_parser.add_argument(
        "--rate", type=float, default=None, metavar="RPS",
        help="global token-bucket admit rate (default: unlimited)",
    )
    cluster_parser.add_argument(
        "--retention", type=int, default=None, metavar="N",
        help="terminal job records kept per shard; older completions "
        "are answered from the tiered store (default: 1024)",
    )
    cluster_parser.add_argument(
        "--timeout", type=float, default=DEFAULT_TIMEOUT, metavar="SECS",
        help="per-job wall-clock limit",
    )
    cluster_parser.add_argument(
        "--retries", type=int, default=DEFAULT_RETRIES, metavar="N",
        help="extra attempts after a worker crash or timeout",
    )
    cluster_parser.add_argument(
        "--grace", type=float, default=30.0, metavar="SECS",
        help="drain window after SIGTERM/SIGINT before hard shutdown "
        "(default: 30)",
    )

    loadgen_parser = sub.add_parser(
        "loadgen",
        help="drive concurrent synthetic clients at a cluster and emit "
        "BENCH_service.json",
    )
    loadgen_parser.add_argument(
        "--server", default=None, metavar="URL",
        help="drive an already-running service instead of an "
        "in-process cluster",
    )
    loadgen_parser.add_argument(
        "--clients", type=int, default=100, metavar="N",
        help="concurrent client threads (default: 100)",
    )
    loadgen_parser.add_argument(
        "--requests", type=int, default=20, metavar="N",
        help="submissions per client (default: 20)",
    )
    loadgen_parser.add_argument(
        "--population", type=int, default=64, metavar="N",
        help="distinct job specs in the Zipf population (default: 64)",
    )
    loadgen_parser.add_argument(
        "--tenants", type=int, default=4, metavar="N",
        help="tenant identities clients rotate through (default: 4)",
    )
    loadgen_parser.add_argument(
        "--shards", type=int, default=3, metavar="N",
        help="in-process shard count (default: 3)",
    )
    loadgen_parser.add_argument(
        "--workers-per-shard", type=int, default=1, metavar="N",
        help="worker processes per in-process shard (default: 1)",
    )
    loadgen_parser.add_argument(
        "--watermark", type=int, default=64, metavar="N",
        help="in-process shed watermark (default: 64)",
    )
    loadgen_parser.add_argument(
        "--rate", type=float, default=None, metavar="RPS",
        help="in-process token-bucket admit rate (default: unlimited)",
    )
    loadgen_parser.add_argument(
        "--rounds", type=int, default=2, metavar="N",
        help="identical load bursts separated by a drain; later rounds "
        "resubmit evicted jobs through the tiered store (default: 2)",
    )
    loadgen_parser.add_argument(
        "--retention", type=int, default=4, metavar="N",
        help="terminal job records each shard keeps in memory; small "
        "values force repeat hits through the tiered store (default: 4)",
    )
    loadgen_parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="disk tier directory for the in-process cluster "
        "(default: temp dir)",
    )
    loadgen_parser.add_argument("--seed", type=int, default=42)
    loadgen_parser.add_argument(
        "--scale", type=float, default=512.0,
        help="synthesis scale divisor for the job population "
        "(default: 512)",
    )
    loadgen_parser.add_argument(
        "--quick", action="store_true",
        help="cap clients/requests/population at 16/6/16 (CI smoke mode)",
    )
    loadgen_parser.add_argument(
        "--out", default=".", metavar="DIR",
        help="directory for BENCH_service.json/.txt (default: .)",
    )

    submit_parser = sub.add_parser(
        "submit", help="submit one experiment job over HTTP"
    )
    submit_parser.add_argument(
        "experiment", nargs="?", default=None, help="experiment id"
    )
    submit_parser.add_argument(
        "--spec", default=None, metavar="JSON",
        help="submit a raw job spec object instead of an experiment id "
        "(any kind: sweep-point, replay, shared-mix, fleet-cell, ...)",
    )
    submit_parser.add_argument("--seed", type=int, default=42)
    submit_parser.add_argument("--scale", type=float, default=1.0)
    submit_parser.add_argument(
        "--quick", action="store_true",
        help="use the 8-benchmark representative subset",
    )
    submit_parser.add_argument(
        "--no-wait", action="store_true",
        help="print the job id and return immediately",
    )
    submit_parser.add_argument(
        "--timeout", type=float, default=1800.0, metavar="SECS",
        help="how long to wait for completion",
    )
    _add_server_flag(submit_parser)
    _add_sanitize_flags(submit_parser)

    status_parser = sub.add_parser("status", help="show one job's state")
    status_parser.add_argument("job_id")
    _add_server_flag(status_parser)

    fetch_parser = sub.add_parser("fetch", help="print one finished result")
    fetch_parser.add_argument("job_id")
    _add_server_flag(fetch_parser)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point.

    Exit codes: 0 success, 1 service/runtime failure, 2 configuration
    error (bad flags, unknown ids, conflicting combinations).
    """
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "sweep": _cmd_sweep,
        "profile": _cmd_profile,
        "record": _cmd_record,
        "calibrate": _cmd_calibrate,
        "fuzz": _cmd_fuzz,
        "serve": _cmd_serve,
        "cluster-serve": _cmd_cluster_serve,
        "loadgen": _cmd_loadgen,
        "submit": _cmd_submit,
        "status": _cmd_status,
        "fetch": _cmd_fetch,
    }
    try:
        return handlers[args.command](args)
    except ConfigError as exc:
        print(f"repro-gencache: error: {exc}", file=sys.stderr)
        return 2
    except ServiceError as exc:
        print(f"repro-gencache: service error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
