"""Command-line interface.

Examples::

    repro-gencache list                      # show the benchmark catalog
    repro-gencache run figure-9 --quick      # regenerate one figure
    repro-gencache run all --scale 8         # everything, scaled down
    repro-gencache sweep word                # Section 6.1 sweep
    repro-gencache record gzip out.log       # synthesize + save a log
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.sanitizer import DEFAULT_STRIDE, TOTALS, enable_sanitizer
from repro.errors import ConfigError
from repro.experiments.base import render_table
from repro.experiments.dataset import quick_subset
from repro.experiments.runner import (
    ALL_EXPERIMENT_IDS,
    EXTENSION_EXPERIMENT_IDS,
    render_all,
    run_all,
)
from repro.experiments import sweep as sweep_module
from repro.tracelog.binary import write_binary_log
from repro.tracelog.writer import write_log
from repro.units import format_bytes
from repro.workloads.catalog import all_profiles, get_profile
from repro.workloads.synthesis import synthesize_log


def _cmd_list(_args: argparse.Namespace) -> int:
    print(f"{'name':12s} {'suite':12s} {'size':>10s} {'secs':>7s} {'unmap%':>7s}  description")
    for profile in all_profiles():
        print(
            f"{profile.name:12s} {profile.suite:12s} "
            f"{format_bytes(profile.total_trace_bytes):>10s} "
            f"{profile.duration_seconds:7.0f} "
            f"{profile.unmap_fraction * 100:7.1f}  {profile.description}"
        )
    return 0


def _apply_sanitize(args: argparse.Namespace) -> None:
    """Turn on the process-wide replay sanitizer when requested."""
    if getattr(args, "sanitize", False):
        try:
            enable_sanitizer(stride=args.sanitize_stride)
        except ConfigError as exc:
            print(f"repro-gencache: {exc}", file=sys.stderr)
            raise SystemExit(2) from exc


def _print_sanitize_summary(args: argparse.Namespace) -> None:
    if getattr(args, "sanitize", False):
        print(
            f"sanitizer: {TOTALS.checks} invariant sweep(s) over "
            f"{TOTALS.events} event(s) across {TOTALS.simulations} "
            "simulation(s); no violations"
        )


def _cmd_run(args: argparse.Namespace) -> int:
    known = ALL_EXPERIMENT_IDS + EXTENSION_EXPERIMENT_IDS
    ids = ALL_EXPERIMENT_IDS if args.experiment == "all" else (args.experiment,)
    unknown = [i for i in ids if i not in known]
    if unknown:
        print(
            f"unknown experiment(s) {unknown}; choose from "
            f"{', '.join(known)} or 'all'",
            file=sys.stderr,
        )
        return 2
    subset = quick_subset() if args.quick else None
    _apply_sanitize(args)
    results = run_all(
        seed=args.seed,
        scale_multiplier=args.scale,
        subset=subset,
        experiment_ids=tuple(ids),
    )
    print(render_all(results))
    _print_sanitize_summary(args)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    _apply_sanitize(args)
    result = sweep_module.run(
        benchmark=args.benchmark,
        seed=args.seed,
        scale_multiplier=args.scale,
    )
    print(render_table(result))
    print()
    link = sweep_module.probation_threshold_link(
        benchmark=args.benchmark,
        seed=args.seed,
        scale_multiplier=args.scale,
    )
    print(render_table(link))
    _print_sanitize_summary(args)
    return 0


def _cmd_record(args: argparse.Namespace) -> int:
    profile = get_profile(args.benchmark)
    log = synthesize_log(profile, seed=args.seed, scale=args.scale or None)
    if args.binary:
        write_binary_log(log, args.output)
    else:
        write_log(log, args.output)
    print(
        f"recorded {log.n_traces} traces / {log.n_accesses} accesses "
        f"({format_bytes(log.total_trace_bytes)}) to {args.output}"
        f"{' [binary]' if args.binary else ''}"
    )
    return 0


def _add_sanitize_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sanitize", action="store_true",
        help="re-check cache/arena invariants during replay, raising "
        "InvariantViolation on the first corruption",
    )
    parser.add_argument(
        "--sanitize-stride", type=int, default=DEFAULT_STRIDE, metavar="N",
        help=f"events between invariant sweeps (default: {DEFAULT_STRIDE})",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-gencache",
        description=(
            "Generational code-cache management for dynamic optimizers "
            "(Hazelwood & Smith, MICRO 2003 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show the benchmark catalog")

    run_parser = sub.add_parser("run", help="regenerate a table/figure")
    run_parser.add_argument("experiment", help="experiment id or 'all'")
    run_parser.add_argument("--seed", type=int, default=42)
    run_parser.add_argument(
        "--scale", type=float, default=1.0,
        help="extra scale divisor on top of profile defaults",
    )
    run_parser.add_argument(
        "--quick", action="store_true",
        help="use the 8-benchmark representative subset",
    )
    _add_sanitize_flags(run_parser)

    sweep_parser = sub.add_parser("sweep", help="Section 6.1 config sweep")
    sweep_parser.add_argument("benchmark", nargs="?", default="word")
    sweep_parser.add_argument("--seed", type=int, default=42)
    sweep_parser.add_argument("--scale", type=float, default=1.0)
    _add_sanitize_flags(sweep_parser)

    record_parser = sub.add_parser("record", help="synthesize and save a log")
    record_parser.add_argument("benchmark")
    record_parser.add_argument("output")
    record_parser.add_argument("--seed", type=int, default=42)
    record_parser.add_argument("--scale", type=float, default=0.0)
    record_parser.add_argument(
        "--binary", action="store_true",
        help="write the compact varint binary format instead of text",
    )

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "sweep": _cmd_sweep,
        "record": _cmd_record,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
