"""Sharded cluster serving layer.

Scales the single-node simulation service out to N independent
scheduler shards behind consistent-hash routing, with streaming
job-status subscriptions, bounded admission control, and a generational
in-memory hot tier over the disk result store — the paper's cache
hierarchy applied to the service's own result cache.

Layering (each module only reaches down):

* :mod:`repro.cluster.http` — asyncio front end (SSE streams, 429s)
* :mod:`repro.cluster.shards` — :class:`ClusterScheduler` facade
* :mod:`repro.cluster.ring`, :mod:`repro.cluster.admission`,
  :mod:`repro.cluster.events`, :mod:`repro.cluster.store_tier` —
  routing, load shedding, the thread→asyncio bridge, and the tiered
  store
* :mod:`repro.cluster.loadgen` — the synthetic benchmark driver

This package is the only place outside :mod:`repro.service` where
concurrency primitives (and the only place at all where ``asyncio``)
may appear; the ``no-raw-concurrency`` and ``cluster-api`` lint rules
enforce that boundary.
"""

from repro.cluster.admission import AdmissionController
from repro.cluster.events import EventBus
from repro.cluster.ring import ShardRing
from repro.cluster.shards import ClusterScheduler
from repro.cluster.store_tier import TieredResultStore

__all__ = [
    "AdmissionController",
    "ClusterScheduler",
    "EventBus",
    "ShardRing",
    "TieredResultStore",
]
