"""A generational in-memory hot tier over the disk result store.

The paper's cache hierarchy — a cheap nursery in front of a probation
generation in front of durable persistent storage — applied to our own
result cache (dogfooding the generational insight):

* **Nursery.**  Every payload that enters the hot tier (a fresh ``put``
  or a disk-read fill) starts in a small LRU nursery.  One-hit wonders
  die here cheaply: nursery eviction just drops the in-memory copy,
  because every payload is already written through to disk.
* **Probation.**  A nursery entry that proves itself — its *second* hit,
  the same promotion-threshold discipline as the simulator's
  generational manager — is promoted to the probation tier, which holds
  the cluster's working set.  Probation evicts LRU back to disk-only.
* **Persistent.**  The wrapped checksummed disk
  :class:`~repro.service.store.ResultStore` (optional; a pure-memory
  tiered store works too, it just loses durability).

All operations are thread-safe: shard collector threads ``put`` while
HTTP submissions ``get`` concurrently.  Per-tier hit/miss/promotion/
eviction counters feed the cluster's ``/metrics`` endpoint.
"""

from __future__ import annotations

import collections
import threading

from repro.errors import ConfigError
from repro.service.store import ResultStoreBase

#: Hits in the nursery (including the insertion "hit" of a put/fill)
#: needed before an entry is promoted to probation.
PROMOTION_THRESHOLD = 2

#: Default per-tier entry capacities.
DEFAULT_NURSERY = 128
DEFAULT_PROBATION = 512


class TieredResultStore(ResultStoreBase):
    """Nursery/probation hot tiers layered over a disk store.

    Args:
        disk: The durable tier; None for a memory-only store.
        nursery_capacity: Max nursery entries before LRU drop.
        probation_capacity: Max probation entries before LRU demotion
            to disk-only.
    """

    def __init__(
        self,
        disk: ResultStoreBase | None = None,
        nursery_capacity: int = DEFAULT_NURSERY,
        probation_capacity: int = DEFAULT_PROBATION,
    ) -> None:
        if nursery_capacity < 1:
            raise ConfigError(
                f"nursery capacity must be >= 1, got {nursery_capacity}"
            )
        if probation_capacity < 1:
            raise ConfigError(
                f"probation capacity must be >= 1, got {probation_capacity}"
            )
        self.disk = disk
        self.nursery_capacity = nursery_capacity
        self.probation_capacity = probation_capacity
        self._lock = threading.Lock()
        # job_id -> (payload, hits) in LRU order (MRU at the right).
        self._nursery: collections.OrderedDict[str, tuple[dict, int]] = (
            collections.OrderedDict()
        )
        self._probation: collections.OrderedDict[str, dict] = (
            collections.OrderedDict()
        )
        self._counters = {
            "nursery_hits": 0,
            "nursery_misses": 0,
            "nursery_insertions": 0,
            "nursery_evictions": 0,
            "probation_hits": 0,
            "probation_evictions": 0,
            "promotions": 0,
            "disk_hits": 0,
            "disk_misses": 0,
        }

    # ------------------------------------------------------------------
    # ResultStoreBase interface
    # ------------------------------------------------------------------

    def get(self, job_id: str) -> dict | None:
        """Probation, then nursery (promoting on the second hit), then
        disk (filling the nursery on a disk hit)."""
        with self._lock:
            payload = self._probation.get(job_id)
            if payload is not None:
                self._probation.move_to_end(job_id)
                self._counters["probation_hits"] += 1
                return payload
            entry = self._nursery.get(job_id)
            if entry is not None:
                payload, hits = entry
                hits += 1
                self._counters["nursery_hits"] += 1
                if hits >= PROMOTION_THRESHOLD:
                    del self._nursery[job_id]
                    self._promote(job_id, payload)
                else:
                    self._nursery[job_id] = (payload, hits)
                    self._nursery.move_to_end(job_id)
                return payload
            self._counters["nursery_misses"] += 1
        # Disk reads happen outside the lock (they hit the filesystem);
        # a racing fill of the same id is harmless last-writer-wins.
        if self.disk is None:
            return None
        payload = self.disk.get(job_id)
        with self._lock:
            if payload is None:
                self._counters["disk_misses"] += 1
                return None
            self._counters["disk_hits"] += 1
            if job_id not in self._probation:
                self._insert_nursery(job_id, payload)
            return payload

    def put(self, job_id: str, payload: dict) -> None:
        """Write through to disk, then seed the nursery.

        Durability first: the disk write happens before the hot-tier
        insert, so an entry is only ever evictable from memory when the
        persistent tier already has it.  Disk ``OSError`` propagates
        (the scheduler counts it) and skips the hot-tier insert.
        """
        if self.disk is not None:
            self.disk.put(job_id, payload)
        with self._lock:
            if job_id in self._probation:
                self._probation[job_id] = payload
                self._probation.move_to_end(job_id)
                return
            self._insert_nursery(job_id, payload)

    def discard(self, job_id: str) -> None:
        """Drop *job_id* from every tier."""
        with self._lock:
            self._nursery.pop(job_id, None)
            self._probation.pop(job_id, None)
        if self.disk is not None:
            self.disk.discard(job_id)

    # ------------------------------------------------------------------
    # Tier mechanics (caller holds the lock)
    # ------------------------------------------------------------------

    def _insert_nursery(self, job_id: str, payload: dict) -> None:
        if job_id in self._nursery:
            hits = self._nursery[job_id][1]
            self._nursery[job_id] = (payload, hits)
            self._nursery.move_to_end(job_id)
            return
        self._nursery[job_id] = (payload, 1)
        self._counters["nursery_insertions"] += 1
        while len(self._nursery) > self.nursery_capacity:
            self._nursery.popitem(last=False)
            self._counters["nursery_evictions"] += 1

    def _promote(self, job_id: str, payload: dict) -> None:
        self._probation[job_id] = payload
        self._counters["promotions"] += 1
        while len(self._probation) > self.probation_capacity:
            self._probation.popitem(last=False)
            self._counters["probation_evictions"] += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def counters(self) -> dict:
        """Per-tier counters plus current occupancy and hit rate (what
        the cluster ``/metrics`` ``store`` block exposes)."""
        with self._lock:
            hot_hits = (
                self._counters["nursery_hits"]
                + self._counters["probation_hits"]
            )
            lookups = hot_hits + self._counters["nursery_misses"]
            return {
                **self._counters,
                "nursery_size": len(self._nursery),
                "probation_size": len(self._probation),
                "hot_hits": hot_hits,
                "hot_hit_rate": hot_hits / lookups if lookups else 0.0,
            }
