"""The sharded cluster scheduler.

:class:`ClusterScheduler` runs N independent
:class:`~repro.service.scheduler.Scheduler` shards — each with its own
worker pool, bounded queue and retry machinery — behind one facade:

* **Routing.**  Every :class:`~repro.service.jobs.JobSpec` is addressed
  by its deterministic content hash and routed to exactly one shard by
  the rendezvous :class:`~repro.cluster.ring.ShardRing`.  Because job
  ids are content-addressed and placement is a pure function of
  ``(live shards, job id)``, a spec lands on the same shard on every
  host and every run — which is what makes 1-shard and N-shard runs
  byte-identical.
* **Admission.**  Submissions pass through the
  :class:`~repro.cluster.admission.AdmissionController` first; sheds
  raise :class:`~repro.errors.OverloadedError` before touching any
  shard.  In-flight accounting is released by the collector when the
  job reaches a terminal state, so fairness tracks real occupancy.
* **Event collection.**  Each shard gets a *cluster collector thread*:
  the shard scheduler's listener hook enqueues terminal transitions
  into a per-shard queue, and the collector drains it, releases the
  admission slots of every waiter of that job, and publishes the event
  to the :class:`~repro.cluster.events.EventBus` for streaming
  subscribers.
* **Shared store.**  Shards share one result store (typically a
  :class:`~repro.cluster.store_tier.TieredResultStore`), so a result
  computed on one shard is a cache hit on every shard.
"""

from __future__ import annotations

import collections
import queue as queue_module
import threading

from repro.cluster.admission import AdmissionController
from repro.cluster.events import EventBus
from repro.cluster.ring import ShardRing
from repro.errors import ConfigError, OverloadedError, ServiceError
from repro.service.jobs import JobSpec, job_id as compute_job_id
from repro.service.scheduler import (
    DONE,
    TERMINAL_STATES,
    JobRecord,
    Scheduler,
)
from repro.service.store import ResultStoreBase


#: Bound on the job-id -> owning-shard index (ids past it fall back
#: to ring placement, which is identical while membership is stable).
OWNER_INDEX_LIMIT = 8192

#: Default per-shard bound on retained terminal job records.  Cluster
#: shards are long-running, so the job table must not grow without
#: limit; evicted records resolve through the shared (tiered) store.
DEFAULT_RETENTION = 1024


def shard_names(count: int) -> list[str]:
    """Canonical shard names for a *count*-shard cluster."""
    if count < 1:
        raise ConfigError(f"shard count must be >= 1, got {count}")
    return [f"shard-{index}" for index in range(count)]


class ClusterScheduler:
    """N scheduler shards behind consistent-hash routing.

    Args:
        shards: Shard count, or explicit shard names.
        workers_per_shard: Worker processes per shard.
        store: Shared result store (all shards memoize through it).
        admission: Admission controller; None admits everything.
        bus: Event bus terminal transitions are published to.
        completed_retention: Per-shard bound on retained terminal job
            records (see :class:`~repro.service.scheduler.Scheduler`).
        scheduler_kwargs: Passed through to every shard
            :class:`~repro.service.scheduler.Scheduler`.
    """

    def __init__(
        self,
        shards: int | list[str] = 2,
        workers_per_shard: int = 1,
        store: ResultStoreBase | None = None,
        admission: AdmissionController | None = None,
        bus: EventBus | None = None,
        completed_retention: int | None = DEFAULT_RETENTION,
        **scheduler_kwargs,
    ) -> None:
        names = (
            shard_names(shards) if isinstance(shards, int) else list(shards)
        )
        self.ring = ShardRing(names)
        self.store = store
        self.admission = admission
        self.bus = bus
        self._shards: dict[str, Scheduler] = {
            name: Scheduler(
                workers=workers_per_shard,
                store=store,
                completed_retention=completed_retention,
                **scheduler_kwargs,
            )
            for name in names
        }
        self._lock = threading.Lock()
        # job_id -> tenants holding an admission slot for that job;
        # popped exactly once (collector or submit-side fast path).
        self._waiters: dict[str, list[str]] = {}
        # job_id -> owning shard at submission time, for status
        # routing; LRU-bounded like the shard job tables.
        self._owner: collections.OrderedDict[str, str] = (
            collections.OrderedDict()
        )
        self._queues: dict[str, queue_module.Queue] = {}
        self._threads: list[threading.Thread] = []
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ClusterScheduler":
        """Start every shard pool and its cluster collector thread."""
        if self._started:
            return self
        self._started = True
        for name, scheduler in self._shards.items():
            scheduler.start()
            events: queue_module.Queue = queue_module.Queue()
            self._queues[name] = events
            # The listener closure runs on the shard's bookkeeping
            # threads; it only enqueues, keeping shard dispatch fast.
            scheduler.add_listener(
                lambda job_id, state, cached, _q=events: _q.put(
                    (job_id, state, cached)
                )
            )
            thread = threading.Thread(
                target=self._collector_loop,
                args=(name, events),
                name=f"repro-cluster-collector-{name}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def shutdown(self, grace: float = 5.0) -> None:
        """Shut down every shard, stop collectors, close the bus."""
        if not self._started:
            return
        for scheduler in self._shards.values():
            scheduler.shutdown(grace=grace)
        for events in self._queues.values():
            events.put(None)
        for thread in self._threads:
            thread.join(timeout=grace)
        if self.bus is not None:
            self.bus.close()

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting on every shard and wait for in-flight jobs
        (graceful-shutdown half; the pools stay queryable)."""
        drained = True
        for scheduler in self._shards.values():
            scheduler.pause_admission()
        for scheduler in self._shards.values():
            drained = scheduler.drain(timeout=timeout) and drained
        return drained

    def __enter__(self) -> "ClusterScheduler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Shard health
    # ------------------------------------------------------------------

    def drain_shard(
        self, shard: str, timeout: float | None = None
    ) -> bool:
        """Take *shard* out of routing and wait out its in-flight jobs.

        Keys it owned re-route deterministically to the surviving live
        shards on their next submission; every other key's placement is
        untouched.
        """
        self.ring.drain(shard)
        return self._shards[shard].drain(timeout=timeout)

    def restore_shard(self, shard: str) -> None:
        """Return *shard* to routing and re-open its admission."""
        self.ring.restore(shard)
        self._shards[shard].resume_admission()

    # ------------------------------------------------------------------
    # Submission API
    # ------------------------------------------------------------------

    def submit(self, spec: JobSpec, tenant: str = "default") -> JobRecord:
        """Admit, route and submit one job.

        Raises:
            OverloadedError: shed by admission control (the caller maps
                this to HTTP 429 + Retry-After).
            ConfigError: invalid spec.
            ShardError: every shard is drained.
            JobQueueFullError / DrainingError: from the owning shard.
        """
        if not self._started:
            raise ServiceError("cluster scheduler is not started")
        spec.validate()
        jid = compute_job_id(spec)
        if self.admission is not None:
            decision = self.admission.admit(
                tenant, queue_depth=self.queue_depth()
            )
            if not decision.accepted:
                raise OverloadedError(
                    f"cluster overloaded ({decision.reason}); retry after "
                    f"{decision.retry_after:.3g}s",
                    retry_after=decision.retry_after,
                    reason=decision.reason,
                )
        # Register the admission waiter BEFORE the shard can fire the
        # terminal event, so the collector never races past it.
        if self.admission is not None:
            with self._lock:
                self._waiters.setdefault(jid, []).append(tenant)
        shard = self.ring.route(jid)
        try:
            record = self._shards[shard].submit(spec)
        except Exception:
            if self.admission is not None:
                if self._pop_waiter(jid, tenant):
                    self.admission.release(tenant)
            raise
        with self._lock:
            self._owner[jid] = shard
            self._owner.move_to_end(jid)
            while len(self._owner) > OWNER_INDEX_LIMIT:
                self._owner.popitem(last=False)
        # Snapshot under the owning shard's lock — its collector and
        # monitor threads mutate the record concurrently.
        state = self._shards[shard].record_dict(record)["state"]
        if state in TERMINAL_STATES and self.admission is not None:
            # Deduplicated onto an already-terminal record: no event is
            # coming.  Pop-and-release is atomic with the collector's
            # pop-all, so the slot is released exactly once even when a
            # late event for this id is still in a collector queue.
            if self._pop_waiter(jid, tenant):
                self.admission.release(tenant)
        return record

    def _pop_waiter(self, jid: str, tenant: str) -> bool:
        with self._lock:
            tenants = self._waiters.get(jid)
            if not tenants or tenant not in tenants:
                return False
            tenants.remove(tenant)
            if not tenants:
                del self._waiters[jid]
            return True

    def _pop_all_waiters(self, jid: str) -> list[str]:
        with self._lock:
            return self._waiters.pop(jid, [])

    # ------------------------------------------------------------------
    # Query API (routed to the owning shard)
    # ------------------------------------------------------------------

    def _owner_of(self, job_id: str) -> Scheduler:
        with self._lock:
            shard = self._owner.get(job_id)
        if shard is not None:
            return self._shards[shard]
        # Unknown to this facade: ask the ring's canonical owner so a
        # status probe for a never-submitted id still 404s in one place.
        return self._shards[self.ring.route(job_id)]

    def status_dict(self, job_id: str) -> dict:
        """JSON status from the owning shard (JobNotFoundError when the
        id was never submitted)."""
        return self._owner_of(job_id).status_dict(job_id)

    def record_status(self, record: JobRecord) -> dict:
        """JSON snapshot of a record :meth:`submit` just returned.

        Goes by the record itself, not its id, so the snapshot survives
        the record racing out of its shard's bounded terminal table.
        """
        return self._owner_of(record.job_id).record_dict(record)

    def result(self, job_id: str) -> dict:
        """Completed payload from the owning shard."""
        return self._owner_of(job_id).result(job_id)

    def wait(
        self, job_ids: list[str] | None = None, timeout: float | None = None
    ) -> bool:
        """Block until the listed jobs (default: everything on every
        shard) are terminal; False on timeout."""
        if job_ids is None:
            done = True
            for scheduler in self._shards.values():
                done = scheduler.wait(timeout=timeout) and done
            return done
        by_shard: dict[str, list[str]] = {}
        with self._lock:
            for jid in job_ids:
                shard = self._owner.get(jid)
                if shard is not None:
                    by_shard.setdefault(shard, []).append(jid)
        done = True
        for shard, ids in by_shard.items():
            done = self._shards[shard].wait(ids, timeout=timeout) and done
        return done

    def run(self, specs: list[JobSpec], tenant: str = "default") -> list[dict]:
        """Submit *specs*, wait, and return payloads in spec order.

        The synchronous convenience the equivalence tests and the CLI
        use; failures raise :class:`~repro.errors.ServiceError`.
        """
        records = [self.submit(spec, tenant=tenant) for spec in specs]
        self.wait([record.job_id for record in records])
        payloads = []
        failures = []
        for record in records:
            status = self.status_dict(record.job_id)
            if status["state"] == DONE:
                payloads.append(self.result(record.job_id))
            else:
                failures.append(f"{record.job_id}: {status['error']}")
        if failures:
            raise ServiceError(
                f"{len(failures)} job(s) failed: " + "; ".join(failures)
            )
        return payloads

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def queue_depth(self) -> int:
        """Cluster-wide admitted-but-not-running job count (what the
        admission watermark is compared against)."""
        return sum(
            scheduler.queue_depth() for scheduler in self._shards.values()
        )

    def metrics_dict(self) -> dict:
        """The cluster ``/metrics`` document: per-shard scheduler
        metrics (including each shard's queue depth and ring state),
        cluster totals, admission counters and tiered-store counters."""
        shards = {}
        totals = {
            "queue_depth": 0,
            "jobs_submitted": 0,
            "jobs_completed": 0,
            "jobs_failed": 0,
            "cache_hits": 0,
        }
        for name, scheduler in self._shards.items():
            metrics = scheduler.metrics_dict()
            metrics["ring_state"] = self.ring.state(name)
            shards[name] = metrics
            for key in totals:
                totals[key] += metrics[key]
        document = {
            "shards": shards,
            "cluster": {
                **totals,
                "shard_count": len(self._shards),
                "live_shards": list(self.ring.live_shards()),
            },
        }
        if self.admission is not None:
            document["admission"] = self.admission.counters()
        counters = getattr(self.store, "counters", None)
        if callable(counters):
            document["store"] = counters()
        return document

    # ------------------------------------------------------------------
    # Cluster collector threads
    # ------------------------------------------------------------------

    def _collector_loop(
        self, shard: str, events: queue_module.Queue
    ) -> None:
        """Drain one shard's terminal transitions: release the job's
        admission waiters, then publish to the event bus."""
        while True:
            item = events.get()
            if item is None:
                return
            job_id, state, cached = item
            if self.admission is not None:
                for tenant in self._pop_all_waiters(job_id):
                    self.admission.release(tenant)
            if self.bus is not None:
                self.bus.publish(job_id, state, cached)
