"""Thread→asyncio bridge for job lifecycle events.

Shard completions are discovered on plain threads (each shard's cluster
collector thread, fed by the shard scheduler's listener hook), while
streaming subscribers live on the asyncio event loop of the cluster
front end.  :class:`EventBus` is the one crossing point:

* **Publish side (threads).**  :meth:`EventBus.publish` is callable from
  any thread; it hops onto the loop with
  ``loop.call_soon_threadsafe`` and fans the event out to every
  subscriber queue.  Publishing before the loop is attached (or after
  close) buffers into a bounded replay deque instead of dropping.
* **Subscribe side (asyncio).**  :meth:`EventBus.subscribe` returns an
  unbounded per-subscriber :class:`asyncio.Queue` primed with the
  replayed tail for the watched job id, so a subscriber that connects
  just after its job finished still sees the terminal event — the race
  that makes naive pub/sub long-polls hang forever.

Events are plain dicts ``{"job_id", "state", "cached", "seq"}`` with a
bus-global monotonic sequence number, so subscribers can de-duplicate
replayed events against live ones.
"""

from __future__ import annotations

import asyncio
import collections
import threading

#: How many recent events the bus retains for late subscribers.
REPLAY_DEPTH = 4096

#: Sentinel pushed into subscriber queues when the bus closes.
CLOSED = {"event": "closed"}


class EventBus:
    """Fan-out of job events from worker threads to asyncio consumers.

    Args:
        replay_depth: How many recent events to retain for subscribers
            that attach after their event fired.
    """

    def __init__(self, replay_depth: int = REPLAY_DEPTH) -> None:
        self._loop: asyncio.AbstractEventLoop | None = None
        # Guards _replay/_seq/_closed, which the publish side touches
        # from arbitrary threads; _subscribers is loop-only.
        self._lock = threading.Lock()
        self._replay: collections.deque[dict] = collections.deque(
            maxlen=replay_depth
        )
        self._seq = 0
        self._closed = False
        # job_id -> list of subscriber queues; "" subscribes to all.
        self._subscribers: dict[str, list[asyncio.Queue]] = {}

    def attach(self, loop: asyncio.AbstractEventLoop) -> None:
        """Bind the bus to the consumer loop (done once at startup)."""
        with self._lock:
            self._loop = loop

    # ------------------------------------------------------------------
    # Publish side — any thread
    # ------------------------------------------------------------------

    def publish(self, job_id: str, state: str, cached: bool) -> None:
        """Record and fan out one job transition (thread-safe)."""
        with self._lock:
            if self._closed:
                return
            self._seq += 1
            event = {
                "job_id": job_id,
                "state": state,
                "cached": cached,
                "seq": self._seq,
            }
            self._replay.append(event)
            loop = self._loop
        if loop is not None:
            try:
                loop.call_soon_threadsafe(self._deliver, event)
            except RuntimeError:
                # Loop already closed mid-shutdown; the event is in the
                # replay buffer for any post-mortem inspection.
                return

    def close(self) -> None:
        """Stop accepting events and wake every subscriber with the
        CLOSED sentinel (thread-safe)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            loop = self._loop
        if loop is not None:
            try:
                loop.call_soon_threadsafe(self._deliver_closed)
            except RuntimeError:
                return

    # ------------------------------------------------------------------
    # Deliver side — loop thread only
    # ------------------------------------------------------------------

    def _deliver(self, event: dict) -> None:
        targets = self._subscribers.get(event["job_id"], [])
        broadcast = self._subscribers.get("", [])
        for queue in [*targets, *broadcast]:
            queue.put_nowait(event)

    def _deliver_closed(self) -> None:
        for queues in self._subscribers.values():
            for queue in queues:
                queue.put_nowait(CLOSED)

    # ------------------------------------------------------------------
    # Subscribe side — loop thread only
    # ------------------------------------------------------------------

    def subscribe(self, job_id: str = "") -> asyncio.Queue:
        """A queue of events for *job_id* ("" for every job), primed
        with the matching replay tail."""
        queue: asyncio.Queue = asyncio.Queue()
        with self._lock:
            replayed = [
                event
                for event in self._replay
                if not job_id or event["job_id"] == job_id
            ]
            closed = self._closed
        for event in replayed:
            queue.put_nowait(event)
        if closed:
            queue.put_nowait(CLOSED)
        self._subscribers.setdefault(job_id, []).append(queue)
        return queue

    def unsubscribe(self, job_id: str, queue: asyncio.Queue) -> None:
        """Detach *queue*; safe to call after close."""
        queues = self._subscribers.get(job_id)
        if queues is None:
            return
        try:
            queues.remove(queue)
        except ValueError:
            pass  # already removed — unsubscribing twice is fine
        if not queues:
            del self._subscribers[job_id]
