"""Synthetic service load generator (``repro-gencache loadgen``).

Drives a cluster (in-process or over the network) with many concurrent
synthetic clients issuing a *mixed, skewed* spec population — small
sweep-point jobs across the quick benchmark subset, both cache
managers, several layouts and seeds — and reports what a service
operator would ask of it:

* **throughput** — accepted submissions per second of wall clock;
* **latency** — p50/p95/p99/max of the submit round-trip (cache hits
  complete inline, so the hot tier shows up directly here);
* **shed rate** — fraction of submissions the admission layer turned
  into 429s, by reason;
* **hot-tier hit rate** — the generational store's nursery+probation
  hit fraction, straight from ``/metrics``.

The population is drawn with a Zipf-like skew (weight ``1/(rank+1)``)
from a deterministic seed, so repeated ranks exercise the nursery →
probation promotion path exactly the way repeated trace execution
exercises the paper's cache generations.  Every client thread owns its
own hardened :class:`~repro.service.client.ServiceClient` (connection
reuse; a client instance is not thread-safe) and its own derived RNG,
so a run is reproducible for a fixed (seed, clients, requests) triple
up to scheduling noise in the latency numbers.

Results land in ``BENCH_service.json`` plus a human-readable
``BENCH_service.txt`` table.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time

from repro.errors import ConfigError, OverloadedError, ServiceError
from repro.service.client import ServiceClient
from repro.service.jobs import JobSpec

#: Benchmarks the population mixes over (the --quick subset: cheap,
#: diverse, always present in the catalog).
POPULATION_BENCHMARKS = (
    "gzip",
    "crafty",
    "eon",
    "art",
    "mcf",
    "word",
    "iexplore",
    "solitaire",
)

#: Generational layouts the population cycles through.
POPULATION_LAYOUTS = (
    (0.1, 0.3, 0.6, 1),
    (0.1, 0.3, 0.6, 2),
    (0.2, 0.4, 0.4, 2),
    (0.3, 0.3, 0.4, 4),
)

#: Scale divisor making each job a few milliseconds of simulation.
DEFAULT_SCALE = 512.0

#: JSON/text report basenames.
BENCH_JSON = "BENCH_service.json"
BENCH_TEXT = "BENCH_service.txt"


def build_population(
    size: int, seed: int = 42, scale: float = DEFAULT_SCALE
) -> list[JobSpec]:
    """A deterministic mixed population of *size* cheap specs.

    Cycles benchmarks × (unified + generational layouts) × seeds, so
    any prefix is already benchmark- and manager-diverse.
    """
    if size < 1:
        raise ConfigError(f"population size must be >= 1, got {size}")
    specs: list[JobSpec] = []
    round_index = 0
    while len(specs) < size:
        for benchmark in POPULATION_BENCHMARKS:
            job_seed = seed + round_index
            specs.append(
                JobSpec(
                    kind="sweep-point",
                    benchmark=benchmark,
                    seed=job_seed,
                    scale_multiplier=scale,
                    manager="unified",
                )
            )
            for nursery, probation, persistent, threshold in POPULATION_LAYOUTS:
                specs.append(
                    JobSpec(
                        kind="sweep-point",
                        benchmark=benchmark,
                        seed=job_seed,
                        scale_multiplier=scale,
                        manager="generational",
                        nursery=nursery,
                        probation=probation,
                        persistent=persistent,
                        threshold=threshold,
                    )
                )
        round_index += 1
    return specs[:size]


class _ClientStats:
    """One synthetic client's tally."""

    __slots__ = ("latencies", "accepted", "shed", "errors", "error_samples")

    def __init__(self) -> None:
        self.latencies: list[float] = []
        self.accepted = 0
        self.shed = 0
        self.errors = 0
        self.error_samples: list[str] = []


def _client_loop(
    base_url: str,
    tenant: str,
    population: list[JobSpec],
    requests: int,
    rng: random.Random,
    stats: _ClientStats,
    start_gate: threading.Event,
) -> None:
    weights = [1.0 / (rank + 1) for rank in range(len(population))]
    with ServiceClient(base_url, tenant=tenant) as client:
        start_gate.wait()
        for _ in range(requests):
            spec = rng.choices(population, weights=weights, k=1)[0]
            began = time.perf_counter()
            try:
                client.submit(spec)
            except OverloadedError as exc:
                stats.shed += 1
                # Honor the hint, but never stall the generator: the
                # point of shedding is that the client comes back.
                time.sleep(min(exc.retry_after, 0.02))
            except ServiceError as exc:
                stats.errors += 1
                if len(stats.error_samples) < 3:
                    stats.error_samples.append(str(exc))
            else:
                stats.accepted += 1
                stats.latencies.append(time.perf_counter() - began)


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = round(q * (len(sorted_values) - 1))
    return sorted_values[int(rank)]


def run_load(
    base_url: str,
    clients: int = 100,
    requests: int = 20,
    population: list[JobSpec] | None = None,
    tenants: int = 4,
    seed: int = 42,
    wait_timeout: float = 120.0,
    rounds: int = 1,
) -> dict:
    """Run the load phase against a live server; returns the bench doc.

    Args:
        base_url: Server to drive (single-node or cluster front end).
        clients: Concurrent synthetic client threads.
        requests: Submissions per client.
        population: Spec population (default: :func:`build_population`
            of ``4 * clients`` capped at 64).
        tenants: Distinct ``X-Tenant`` names cycled across clients.
        seed: Master seed for population draw order.
        wait_timeout: How long to wait for accepted jobs to finish
            before snapshotting ``/metrics`` (and between rounds).
        rounds: Identical load bursts separated by a drain.  Each round
            replays the same per-client draw sequence, so round *n+1*
            resubmits exactly what round *n* completed — jobs evicted
            from shard tables in between must resolve through the
            tiered store, which is what moves the hot-tier counters.
    """
    if clients < 1:
        raise ConfigError(f"client count must be >= 1, got {clients}")
    if requests < 1:
        raise ConfigError(f"requests per client must be >= 1, got {requests}")
    if rounds < 1:
        raise ConfigError(f"round count must be >= 1, got {rounds}")
    if population is None:
        population = build_population(min(4 * clients, 64), seed=seed)
    probe = ServiceClient(base_url)
    stats = [_ClientStats() for _ in range(clients)]
    elapsed = 0.0
    for _round in range(rounds):
        start_gate = threading.Event()
        threads = [
            threading.Thread(
                target=_client_loop,
                args=(
                    base_url,
                    f"tenant-{index % tenants}",
                    population,
                    requests,
                    random.Random(seed * 1_000_003 + index),
                    stats[index],
                    start_gate,
                ),
                name=f"repro-loadgen-{index}",
                daemon=True,
            )
            for index in range(clients)
        ]
        for thread in threads:
            thread.start()
        began = time.perf_counter()
        start_gate.set()
        for thread in threads:
            thread.join()
        elapsed += time.perf_counter() - began
        _wait_for_drain(probe, timeout=wait_timeout)
    metrics = probe.metrics()
    probe.close()

    latencies = sorted(
        latency for stat in stats for latency in stat.latencies
    )
    accepted = sum(stat.accepted for stat in stats)
    shed = sum(stat.shed for stat in stats)
    errors = sum(stat.errors for stat in stats)
    total = accepted + shed + errors
    error_samples = [
        sample for stat in stats for sample in stat.error_samples
    ][:5]
    document = {
        "config": {
            "base_url": base_url,
            "clients": clients,
            "requests_per_client": requests,
            "population_size": len(population),
            "tenants": tenants,
            "seed": seed,
            "rounds": rounds,
        },
        "elapsed_seconds": round(elapsed, 3),
        "throughput_rps": round(accepted / elapsed, 2) if elapsed else 0.0,
        "requests": {
            "total": total,
            "accepted": accepted,
            "shed": shed,
            "errors": errors,
            "error_samples": error_samples,
        },
        "shed_rate": round(shed / total, 4) if total else 0.0,
        "latency_ms": {
            "p50": round(percentile(latencies, 0.50) * 1000, 3),
            "p95": round(percentile(latencies, 0.95) * 1000, 3),
            "p99": round(percentile(latencies, 0.99) * 1000, 3),
            "max": round(latencies[-1] * 1000, 3) if latencies else 0.0,
            "mean": round(
                sum(latencies) / len(latencies) * 1000, 3
            ) if latencies else 0.0,
        },
    }
    store = metrics.get("store")
    if store:
        document["hot_tier"] = {
            "hit_rate": round(store["hot_hit_rate"], 4),
            "hits": store["hot_hits"],
            "promotions": store["promotions"],
            "nursery_evictions": store["nursery_evictions"],
            "probation_evictions": store["probation_evictions"],
        }
    if "admission" in metrics:
        document["admission"] = metrics["admission"]
    if "cluster" in metrics:
        document["cluster"] = metrics["cluster"]
    return document


def _wait_for_drain(
    probe: ServiceClient, timeout: float, poll: float = 0.1
) -> None:
    """Wait until no shard has queued or running jobs (accepted work
    must finish before counters are snapshotted)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        metrics = probe.metrics()
        shards = metrics.get("shards")
        views = list(shards.values()) if shards else [metrics]
        if all(
            view["queue_depth"] == 0 and view["jobs_running"] == 0
            for view in views
        ):
            return
        time.sleep(poll)
    raise ServiceError(
        f"cluster did not drain within {timeout:g}s after the load phase "
        "(an accepted job was dropped or wedged)"
    )


def render_bench(document: dict) -> str:
    """The human-readable table for ``BENCH_service.txt``."""
    config = document["config"]
    requests = document["requests"]
    latency = document["latency_ms"]
    lines = [
        "service load benchmark",
        "======================",
        f"clients              {config['clients']}",
        f"requests/client      {config['requests_per_client']}",
        f"population           {config['population_size']} specs",
        f"elapsed              {document['elapsed_seconds']:.3f} s",
        f"throughput           {document['throughput_rps']:.2f} accepted/s",
        f"latency p50          {latency['p50']:.3f} ms",
        f"latency p95          {latency['p95']:.3f} ms",
        f"latency p99          {latency['p99']:.3f} ms",
        f"latency max          {latency['max']:.3f} ms",
        f"accepted             {requests['accepted']}",
        f"shed (429)           {requests['shed']}",
        f"errors               {requests['errors']}",
        f"shed rate            {document['shed_rate'] * 100:.2f}%",
    ]
    hot = document.get("hot_tier")
    if hot:
        lines += [
            f"hot-tier hit rate    {hot['hit_rate'] * 100:.2f}%",
            f"hot-tier promotions  {hot['promotions']}",
        ]
    return "\n".join(lines) + "\n"


def run_inprocess(
    shards: int = 3,
    workers_per_shard: int = 1,
    store_dir: str | None = None,
    watermark: int = 64,
    rate: float | None = None,
    retention: int = 4,
    clients: int = 100,
    requests: int = 20,
    population_size: int = 64,
    tenants: int = 4,
    seed: int = 42,
    scale: float = DEFAULT_SCALE,
    job_timeout: float = 120.0,
    rounds: int = 2,
) -> dict:
    """Spin up a full cluster in-process, load it, and tear it down.

    The small default *retention* deliberately forces shard job tables
    to forget old completions, so repeated population draws resolve
    through the tiered store and the hot-tier generational counters
    actually move (exactly the reuse pattern the paper's generations
    exploit).
    """
    # Imported here, not at module top: driving a *remote* server with
    # this module must not require the server-side machinery.
    from repro.cluster.admission import AdmissionController
    from repro.cluster.events import EventBus
    from repro.cluster.http import ClusterServer
    from repro.cluster.shards import ClusterScheduler
    from repro.cluster.store_tier import TieredResultStore
    from repro.service.store import ResultStore

    disk = ResultStore(store_dir) if store_dir else None
    store = TieredResultStore(disk)
    cluster = ClusterScheduler(
        shards=shards,
        workers_per_shard=workers_per_shard,
        store=store,
        admission=AdmissionController(watermark=watermark, rate=rate),
        bus=EventBus(),
        completed_retention=retention,
        timeout=job_timeout,
    )
    cluster.start()
    server = ClusterServer(cluster, port=0)
    host, port = server.start()
    try:
        document = run_load(
            f"http://{host}:{port}",
            clients=clients,
            requests=requests,
            population=build_population(population_size, seed=seed, scale=scale),
            tenants=tenants,
            seed=seed,
            rounds=rounds,
        )
        document["config"]["shards"] = shards
        document["config"]["workers_per_shard"] = workers_per_shard
        document["config"]["watermark"] = watermark
        document["config"]["retention"] = retention
        return document
    finally:
        server.stop()
        cluster.shutdown()


def write_bench(document: dict, out_dir: str) -> tuple[str, str]:
    """Write the JSON + text reports; returns their paths."""
    os.makedirs(out_dir, exist_ok=True)
    json_path = os.path.join(out_dir, BENCH_JSON)
    text_path = os.path.join(out_dir, BENCH_TEXT)
    with open(json_path, "w", encoding="utf-8") as stream:
        stream.write(json.dumps(document, indent=2, sort_keys=True) + "\n")
    with open(text_path, "w", encoding="utf-8") as stream:
        stream.write(render_bench(document))
    return json_path, text_path
