"""Asyncio HTTP front end for the sharded cluster.

One asyncio event loop (running on a dedicated background thread, so
the synchronous CLI and tests can start/stop the server) serves the
same JSON API as :mod:`repro.service.http` plus streaming job-status
subscriptions, against a :class:`~repro.cluster.shards.ClusterScheduler`:

Endpoints::

    POST /jobs              submit a JobSpec (X-Tenant header names the
                            admission tenant) -> job status
    GET  /jobs/<id>         job status
    GET  /jobs/<id>/events  server-sent-events stream of the job's
                            lifecycle; closes after the terminal event
    GET  /results/<id>      completed payload
    GET  /healthz           liveness + per-shard pool health
    GET  /metrics           per-shard queue depths, admission accept/
                            shed counters, tiered-store counters

Failure semantics extend the single-node service: invalid specs are
400, unknown ids 404, unfinished results 409, full shard queues 503 —
and admission sheds are **429 with a Retry-After header**, the
load-shedding contract the hardened client maps to
:class:`~repro.errors.OverloadedError`.

The event stream is the thread→asyncio seam: shard collector threads
publish terminal transitions to the :class:`~repro.cluster.events.EventBus`,
which hops onto this loop; subscribers here read per-job asyncio queues
primed with the bus's replay tail, so subscribing after the job
finished still yields the terminal event (no hung long-polls).
Blocking cluster calls (submission's store probe, result reads from
disk) run in the loop's default executor to keep the loop responsive
under hundreds of concurrent clients.
"""

from __future__ import annotations

import asyncio
import json
import math
import signal
import threading

from repro.cluster.events import CLOSED, EventBus
from repro.cluster.shards import ClusterScheduler
from repro.errors import (
    ConfigError,
    DrainingError,
    JobNotFoundError,
    JobQueueFullError,
    OverloadedError,
    ServiceError,
    ShardError,
)
from repro.service.jobs import spec_from_dict
from repro.service.scheduler import DONE, TERMINAL_STATES
from repro.units import KB, MB

#: Hard cap on request bodies, matching the single-node front end.
MAX_BODY_BYTES = 64 * MB
#: Request-line + header block cap for the stream reader.
MAX_HEADER_BYTES = 64 * KB

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8360

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _Request:
    """One parsed HTTP/1.1 request."""

    __slots__ = ("method", "path", "headers", "body")

    def __init__(
        self, method: str, path: str, headers: dict[str, str], body: bytes
    ) -> None:
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body

    @property
    def route(self) -> tuple[str, ...]:
        return tuple(
            part
            for part in self.path.split("?", 1)[0].split("/")
            if part
        )

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


class ClusterServer:
    """The asyncio front end; owns its loop on a background thread.

    Args:
        cluster: The started :class:`ClusterScheduler` to serve.
        host: Bind address.
        port: Bind port (0 picks a free one; see :attr:`address`).
        bus: Event bus for ``/jobs/<id>/events``; defaults to the
            cluster's own bus.
    """

    def __init__(
        self,
        cluster: ClusterScheduler,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        bus: EventBus | None = None,
    ) -> None:
        self.cluster = cluster
        self.bus = bus if bus is not None else cluster.bus
        self._host = host
        self._port = port
        self.address: tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # Lifecycle (called from synchronous code)
    # ------------------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Spin up the loop thread, bind, and return ``(host, port)``."""
        if self._loop is not None:
            raise ServiceError("cluster server is already started")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-cluster-http", daemon=True
        )
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(self._open(), self._loop)
        future.result(timeout=30)
        assert self.address is not None
        return self.address

    def _run_loop(self) -> None:
        assert self._loop is not None
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    async def _open(self) -> None:
        if self.bus is not None:
            self.bus.attach(asyncio.get_running_loop())
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._port,
            limit=MAX_HEADER_BYTES,
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])

    def stop(self, grace: float = 5.0) -> None:
        """Stop accepting, cancel open streams, tear the loop down."""
        loop = self._loop
        if loop is None:
            return
        future = asyncio.run_coroutine_threadsafe(self._close(), loop)
        try:
            future.result(timeout=grace)
        except TimeoutError:
            future.cancel()
        loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=grace)
        loop.close()
        self._loop = None
        self._thread = None
        self._server = None

    async def _close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._conn_tasks):
            task.cancel()

    # ------------------------------------------------------------------
    # Connection handling (loop thread)
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                keep = await self._dispatch(request, writer)
                if not keep:
                    break
        except (ConnectionError, asyncio.LimitOverrunError):
            return  # client went away or flooded headers; drop it
        except asyncio.CancelledError:
            raise
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> _Request | None:
        try:
            blob = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError:
            return None  # clean close between requests
        head, _, _ = blob.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            return None
        method, path = parts[0], parts[1]
        headers: dict[str, str] = {}
        for line in lines[1:]:
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length") or 0)
        if length > MAX_BODY_BYTES:
            return None
        body = await reader.readexactly(length) if length > 0 else b""
        return _Request(method, path, headers, body)

    async def _dispatch(
        self, request: _Request, writer: asyncio.StreamWriter
    ) -> bool:
        route = request.route
        if request.method == "POST" and route == ("jobs",):
            await self._submit(request, writer)
        elif request.method == "GET":
            if len(route) == 3 and route[0] == "jobs" and route[2] == "events":
                await self._stream_events(route[1], writer)
                return False  # the stream owns (and ends) the connection
            await self._get(route, writer)
        else:
            await self._send_json(writer, 404, {"error": "no such endpoint"})
        return request.keep_alive

    async def _submit(
        self, request: _Request, writer: asyncio.StreamWriter
    ) -> None:
        tenant = request.headers.get("x-tenant", "default")
        loop = asyncio.get_running_loop()
        try:
            if not request.body:
                raise ConfigError("request body is required")
            try:
                payload = json.loads(request.body.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as exc:
                raise ConfigError(
                    f"request body is not valid JSON: {exc}"
                ) from exc
            spec = spec_from_dict(payload)

            # submit probes the store (disk) on the calling thread;
            # keep that off the loop.  Snapshot from the returned
            # record, not its id — a fast job can already have been
            # evicted from its shard's bounded terminal table.
            def _do_submit() -> dict:
                record = self.cluster.submit(spec, tenant)
                return self.cluster.record_status(record)

            status = await loop.run_in_executor(None, _do_submit)
        except ConfigError as exc:
            await self._send_json(writer, 400, {"error": str(exc)})
        except OverloadedError as exc:
            await self._send_json(
                writer,
                429,
                {
                    "error": str(exc),
                    "reason": exc.reason,
                    "retry_after": exc.retry_after,
                },
                extra_headers={
                    "Retry-After": str(
                        max(1, math.ceil(exc.retry_after))
                    )
                },
            )
        except (JobQueueFullError, DrainingError, ShardError) as exc:
            await self._send_json(writer, 503, {"error": str(exc)})
        except JobNotFoundError as exc:
            await self._send_json(writer, 404, {"error": str(exc)})
        except ServiceError as exc:
            await self._send_json(writer, 500, {"error": str(exc)})
        else:
            await self._send_json(writer, 200, status)

    async def _get(
        self, route: tuple[str, ...], writer: asyncio.StreamWriter
    ) -> None:
        cluster = self.cluster
        loop = asyncio.get_running_loop()
        try:
            if route == ("healthz",):
                metrics = cluster.metrics_dict()
                healthy = all(
                    shard["workers_alive"] == shard["workers_total"]
                    for shard in metrics["shards"].values()
                )
                await self._send_json(
                    writer,
                    200 if healthy else 503,
                    {
                        "status": "ok" if healthy else "degraded",
                        "shards": {
                            name: {
                                "workers_alive": shard["workers_alive"],
                                "workers_total": shard["workers_total"],
                                "ring_state": shard["ring_state"],
                            }
                            for name, shard in metrics["shards"].items()
                        },
                    },
                )
            elif route == ("metrics",):
                await self._send_json(writer, 200, cluster.metrics_dict())
            elif len(route) == 2 and route[0] == "jobs":
                await self._send_json(
                    writer, 200, cluster.status_dict(route[1])
                )
            elif len(route) == 2 and route[0] == "results":
                status = cluster.status_dict(route[1])
                if status["state"] != DONE:
                    error = status["error"]
                    await self._send_json(
                        writer,
                        409,
                        {
                            "error": f"job is {status['state']}"
                            + (f": {error}" if error else ""),
                            "state": status["state"],
                        },
                    )
                else:
                    payload = await loop.run_in_executor(
                        None, cluster.result, route[1]
                    )
                    await self._send_json(writer, 200, payload)
            else:
                await self._send_json(
                    writer, 404, {"error": "no such endpoint"}
                )
        except JobNotFoundError as exc:
            await self._send_json(writer, 404, {"error": str(exc)})
        except ServiceError as exc:
            await self._send_json(writer, 500, {"error": str(exc)})

    # ------------------------------------------------------------------
    # SSE streaming
    # ------------------------------------------------------------------

    async def _stream_events(
        self, job_id: str, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status = self.cluster.status_dict(job_id)
        except JobNotFoundError as exc:
            await self._send_json(writer, 404, {"error": str(exc)})
            return
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        snapshot = {
            "job_id": job_id,
            "state": status["state"],
            "cached": status["cached"],
        }
        await self._send_event(writer, snapshot)
        if status["state"] in TERMINAL_STATES or self.bus is None:
            return
        queue = self.bus.subscribe(job_id)
        last_seq = 0
        try:
            while True:
                event = await queue.get()
                if event is CLOSED:
                    return
                # The replay tail and live delivery can overlap; the
                # bus-global sequence number makes dropping the overlap
                # trivial.
                if event["seq"] <= last_seq:
                    continue
                last_seq = event["seq"]
                await self._send_event(
                    writer,
                    {
                        "job_id": event["job_id"],
                        "state": event["state"],
                        "cached": event["cached"],
                    },
                )
                if event["state"] in TERMINAL_STATES:
                    return
        finally:
            self.bus.unsubscribe(job_id, queue)

    async def _send_event(
        self, writer: asyncio.StreamWriter, event: dict
    ) -> None:
        writer.write(b"data: " + json.dumps(event).encode("utf-8") + b"\n\n")
        await writer.drain()

    # ------------------------------------------------------------------
    # Plain JSON responses
    # ------------------------------------------------------------------

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: dict,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        data = json.dumps(body).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(data)}",
        ]
        for name, value in (extra_headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + data
        )
        await writer.drain()


def serve_until_signal(server: ClusterServer, grace: float = 30.0) -> int:
    """Serve until SIGTERM/SIGINT, then drain the cluster gracefully.

    Mirrors :func:`repro.service.http.serve_until_signal`: on the first
    signal every shard stops admitting (new submissions get 503) while
    the front end keeps answering status/result queries and event
    streams, so accepted jobs finish — up to *grace* seconds — before
    the listener closes and the shard pools shut down.

    Returns the signal number received.  Must run on the main thread.
    """
    stop = threading.Event()
    received = {"signum": 0}

    def _handle(signum, frame) -> None:
        received["signum"] = signum
        stop.set()

    previous = {
        signum: signal.signal(signum, _handle)
        for signum in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        stop.wait()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        server.cluster.drain(timeout=grace)
        server.stop(grace=grace)
        server.cluster.shutdown(grace=grace)
    return received["signum"]


def make_cluster_server(
    cluster: ClusterScheduler,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
) -> ClusterServer:
    """Bind-and-start convenience mirroring
    :func:`repro.service.http.make_server`; the server is live (and
    ``server.address`` resolved) when this returns."""
    server = ClusterServer(cluster, host=host, port=port)
    server.start()
    return server
