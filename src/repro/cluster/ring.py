"""Consistent-hash routing of job ids onto scheduler shards.

:class:`ShardRing` places each content-addressed job id on exactly one
*live* shard using rendezvous (highest-random-weight) hashing: every
``(shard, job_id)`` pair is scored with SHA-256 — the same salted-state
free hashing discipline as :func:`repro.service.jobs.job_id` itself, so
placement never depends on ``PYTHONHASHSEED`` or process state — and
the highest-scoring live shard wins.

Rendezvous hashing gives the two properties the cluster's correctness
bar rests on, without ketama's virtual-node bookkeeping:

* **Partition.** For a fixed live set, every job id maps to exactly one
  shard, deterministically, on every host.
* **Minimal disruption.** Draining a shard reassigns *only* the keys
  that lived on it (each surviving key keeps its own argmax); restoring
  the shard brings exactly its old keys back.

Shard health is tracked on the ring: shards are ``live`` or
``drained``, and routing only ever considers live shards.
"""

from __future__ import annotations

import hashlib

from repro.errors import ConfigError, ShardError

#: Shard health states.
LIVE = "live"
DRAINED = "drained"


def placement_score(shard: str, job_id: str) -> int:
    """The rendezvous score of *job_id* on *shard*.

    A 64-bit integer read from ``sha256("shard|job_id")``; independent
    draws per shard, so the argmax over shards is a uniform pick and
    removing one shard leaves every other pair's score untouched.
    """
    digest = hashlib.sha256(f"{shard}|{job_id}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ShardRing:
    """Rendezvous-hash router with shard health tracking.

    Args:
        shards: Shard names (unique, non-empty).  All start live.
    """

    def __init__(self, shards: list[str] | tuple[str, ...]) -> None:
        names = list(shards)
        if not names:
            raise ConfigError("a shard ring needs at least one shard")
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate shard names in {names}")
        if any(not name for name in names):
            raise ConfigError("shard names must be non-empty")
        self._states: dict[str, str] = {name: LIVE for name in names}

    # ------------------------------------------------------------------
    # Membership and health
    # ------------------------------------------------------------------

    def shards(self) -> tuple[str, ...]:
        """Every shard name, live or drained, in insertion order."""
        return tuple(self._states)

    def live_shards(self) -> tuple[str, ...]:
        """The shards routing currently considers, in insertion order."""
        return tuple(
            name for name, state in self._states.items() if state == LIVE
        )

    def state(self, shard: str) -> str:
        """``"live"`` or ``"drained"``.

        Raises:
            ShardError: for an unknown shard name.
        """
        self._check_known(shard)
        return self._states[shard]

    def drain(self, shard: str) -> None:
        """Take *shard* out of routing (idempotent).

        Only keys whose argmax was *shard* re-route; every other key's
        placement is untouched (the minimal-disruption bound the
        property tests pin down).

        Raises:
            ShardError: for an unknown shard name.
        """
        self._check_known(shard)
        self._states[shard] = DRAINED

    def restore(self, shard: str) -> None:
        """Return *shard* to routing (idempotent); exactly the keys it
        owned before the drain come back to it.

        Raises:
            ShardError: for an unknown shard name.
        """
        self._check_known(shard)
        self._states[shard] = LIVE

    def _check_known(self, shard: str) -> None:
        if shard not in self._states:
            raise ShardError(
                f"unknown shard {shard!r}; ring has {sorted(self._states)}"
            )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def route(self, job_id: str) -> str:
        """The live shard that owns *job_id*.

        Raises:
            ShardError: when every shard is drained.
        """
        best_shard = None
        best_score = -1
        for shard, state in self._states.items():
            if state != LIVE:
                continue
            score = placement_score(shard, job_id)
            # Ties are broken by the lexically smaller name so routing
            # stays a pure function of (live set, job id); with 64-bit
            # sha256 scores a tie is astronomically unlikely anyway.
            if score > best_score or (
                score == best_score and shard < best_shard
            ):
                best_shard, best_score = shard, score
        if best_shard is None:
            raise ShardError(
                "no live shard to route to (all drained or ring empty)"
            )
        return best_shard

    def placement(self, job_ids: list[str]) -> dict[str, str]:
        """Map each id in *job_ids* to its owning live shard."""
        return {job_id: self.route(job_id) for job_id in job_ids}
