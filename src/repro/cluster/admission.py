"""Bounded admission control for the cluster front end.

Three gates run, in order, on every submission; the first to fail sheds
the request with a structured :class:`~repro.errors.OverloadedError`
(HTTP 429 + ``Retry-After``) instead of letting queues grow without
limit:

1. **Queue watermark.**  Once the cluster-wide queue depth (summed over
   shards) crosses the high watermark, everything sheds until the
   backlog drains — the load-shedding backstop.
2. **Global token bucket.**  Sustained submission rate is capped at
   ``rate`` requests/second with bursts up to ``burst``; a shed here
   reports exactly how long until the next token as ``retry_after``.
3. **Weighted fair shares.**  Each tenant owns a weighted share of the
   in-flight budget (weight / sum of active tenants' weights, times the
   watermark).  The gate only bites under contention — while total
   in-flight admissions are below the contention threshold any tenant
   may borrow idle capacity — so a greedy tenant is shed back to its
   share while light tenants sail through: weighted max-min fairness
   over the shards' pending queues.

The controller is thread-safe (HTTP submissions and shard collector
completions race) and purely mechanical — no background threads; state
advances only inside :meth:`AdmissionController.admit` and
:meth:`AdmissionController.release` calls.
"""

from __future__ import annotations

import math
import threading
import time

from repro.errors import ConfigError

#: Queue-depth watermark above which everything sheds.
DEFAULT_WATERMARK = 256
#: Token-bucket defaults: None disables rate limiting.
DEFAULT_RATE = None
DEFAULT_BURST = 64
#: Fraction of the watermark at which fair-share enforcement starts.
CONTENTION_FRACTION = 0.5
#: Retry-After for queue and fair-share sheds (seconds).
DEFAULT_RETRY_AFTER = 1.0

#: Shed reasons (the ``reason`` field of OverloadedError and the
#: per-reason counters in /metrics).
SHED_QUEUE = "queue"
SHED_RATE = "rate"
SHED_FAIR_SHARE = "fair-share"


class TokenBucket:
    """A monotonic-clock token bucket.

    Args:
        rate: Sustained tokens/second.
        burst: Bucket capacity (initial and maximum tokens).
    """

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ConfigError(f"token rate must be > 0, got {rate}")
        if burst < 1:
            raise ConfigError(f"burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = burst
        self._tokens = float(burst)
        self._refilled_at: float | None = None

    def consume(self, now: float, cost: float = 1.0) -> tuple[bool, float]:
        """Try to take *cost* tokens at time *now*.

        Returns ``(True, 0.0)`` on success, else ``(False, wait)``
        where *wait* is the time until the deficit refills.
        """
        if self._refilled_at is not None and now > self._refilled_at:
            self._tokens = min(
                self.burst, self._tokens + (now - self._refilled_at) * self.rate
            )
        self._refilled_at = now
        if self._tokens >= cost:
            self._tokens -= cost
            return True, 0.0
        return False, (cost - self._tokens) / self.rate


class _Tenant:
    """Per-tenant admission accounting."""

    __slots__ = ("weight", "inflight", "accepted", "shed")

    def __init__(self, weight: float) -> None:
        self.weight = weight
        self.inflight = 0
        self.accepted = 0
        self.shed = 0


class AdmissionDecision:
    """The outcome of one :meth:`AdmissionController.admit` call.

    Attributes:
        accepted: Whether the submission may proceed.
        reason: Shed reason (None when accepted).
        retry_after: Seconds to wait before retrying (0 when accepted).
    """

    __slots__ = ("accepted", "reason", "retry_after")

    def __init__(
        self, accepted: bool, reason: str | None = None, retry_after: float = 0.0
    ) -> None:
        self.accepted = accepted
        self.reason = reason
        self.retry_after = retry_after


class AdmissionController:
    """Watermark + token-bucket + weighted-fair-share admission.

    Args:
        watermark: Cluster queue depth above which everything sheds.
        rate: Global sustained submissions/second (None: unlimited).
        burst: Token-bucket capacity when *rate* is set.
        weights: Per-tenant weights; unknown tenants get
            *default_weight*.
        default_weight: Weight for tenants not listed in *weights*.
        retry_after: Retry-After for queue/fair-share sheds.
    """

    def __init__(
        self,
        watermark: int = DEFAULT_WATERMARK,
        rate: float | None = DEFAULT_RATE,
        burst: float = DEFAULT_BURST,
        weights: dict[str, float] | None = None,
        default_weight: float = 1.0,
        retry_after: float = DEFAULT_RETRY_AFTER,
    ) -> None:
        if watermark < 1:
            raise ConfigError(f"watermark must be >= 1, got {watermark}")
        if default_weight <= 0:
            raise ConfigError(
                f"default tenant weight must be > 0, got {default_weight}"
            )
        for tenant, weight in (weights or {}).items():
            if weight <= 0:
                raise ConfigError(
                    f"tenant {tenant!r} weight must be > 0, got {weight}"
                )
        self.watermark = watermark
        self.default_weight = default_weight
        self.retry_after = retry_after
        self._weights = dict(weights or {})
        self._bucket = (
            TokenBucket(rate, burst) if rate is not None else None
        )
        self._lock = threading.Lock()
        self._tenants: dict[str, _Tenant] = {}
        self._accepted = 0
        self._shed = {SHED_QUEUE: 0, SHED_RATE: 0, SHED_FAIR_SHARE: 0}

    def _tenant(self, name: str) -> _Tenant:
        tenant = self._tenants.get(name)
        if tenant is None:
            tenant = _Tenant(self._weights.get(name, self.default_weight))
            self._tenants[name] = tenant
        return tenant

    # ------------------------------------------------------------------
    # The admission decision
    # ------------------------------------------------------------------

    def admit(
        self,
        tenant: str = "default",
        queue_depth: int = 0,
        now: float | None = None,
    ) -> AdmissionDecision:
        """Decide one submission for *tenant* given the current
        cluster-wide *queue_depth*.

        An accepted submission MUST be paired with exactly one
        :meth:`release` call when its job reaches a terminal state (or
        completes instantly from the store) — in-flight accounting is
        what the fairness gate runs on.
        """
        if now is None:
            now = time.monotonic()
        with self._lock:
            record = self._tenant(tenant)
            if queue_depth >= self.watermark:
                return self._shed_decision(record, SHED_QUEUE, self.retry_after)
            if self._bucket is not None:
                ok, wait = self._bucket.consume(now)
                if not ok:
                    return self._shed_decision(record, SHED_RATE, wait)
            decision = self._check_fair_share(record)
            if decision is not None:
                return decision
            record.inflight += 1
            record.accepted += 1
            self._accepted += 1
            return AdmissionDecision(True)

    def _check_fair_share(self, record: _Tenant) -> AdmissionDecision | None:
        total_inflight = sum(t.inflight for t in self._tenants.values())
        contention = math.ceil(self.watermark * CONTENTION_FRACTION)
        if total_inflight < contention:
            return None  # idle capacity: anyone may borrow
        active_weight = record.weight + sum(
            t.weight
            for t in self._tenants.values()
            if t.inflight > 0 and t is not record
        )
        share = math.ceil(self.watermark * record.weight / active_weight)
        if record.inflight + 1 > max(1, share):
            return self._shed_decision(
                record, SHED_FAIR_SHARE, self.retry_after
            )
        return None

    def _shed_decision(
        self, record: _Tenant, reason: str, retry_after: float
    ) -> AdmissionDecision:
        record.shed += 1
        self._shed[reason] += 1
        return AdmissionDecision(False, reason, max(retry_after, 0.001))

    def release(self, tenant: str = "default") -> None:
        """Mark one previously admitted submission finished."""
        with self._lock:
            record = self._tenant(tenant)
            if record.inflight > 0:
                record.inflight -= 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def counters(self) -> dict:
        """Accept/shed counters, total and per tenant (the
        ``admission`` block of the cluster ``/metrics``)."""
        with self._lock:
            shed_total = sum(self._shed.values())
            decided = self._accepted + shed_total
            return {
                "accepted": self._accepted,
                "shed": shed_total,
                "shed_rate": shed_total / decided if decided else 0.0,
                "shed_by_reason": dict(self._shed),
                "watermark": self.watermark,
                "tenants": {
                    name: {
                        "weight": t.weight,
                        "inflight": t.inflight,
                        "accepted": t.accepted,
                        "shed": t.shed,
                    }
                    for name, t in sorted(self._tenants.items())
                },
            }
