"""Execution substrate: stochastic walkers over synthetic programs.

The engine plays the role of the CPU running the original application:
it walks the program's weighted CFG, emitting block-execution and
module load/unload events with virtual timestamps.  The dynamic
optimizer runtime (:mod:`repro.runtime`) observes this event stream the
way DynamoRIO observes a real process.
"""

from repro.sim.events import (
    BlockExecuted,
    ModuleLoaded,
    ModuleUnloaded,
    ProgramEnd,
    SimEvent,
)
from repro.sim.phases import LoadModule, Segment, SessionScript, UnloadModule
from repro.sim.engine import ExecutionEngine

__all__ = [
    "BlockExecuted",
    "ExecutionEngine",
    "LoadModule",
    "ModuleLoaded",
    "ModuleUnloaded",
    "ProgramEnd",
    "Segment",
    "SessionScript",
    "SimEvent",
    "UnloadModule",
]
