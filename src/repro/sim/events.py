"""Events emitted by the execution engine.

Times are virtual instruction counts, monotonically non-decreasing
across the whole run.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BlockExecuted:
    """The program executed one basic block."""

    time: int
    block_id: int


@dataclass(frozen=True)
class ModuleLoaded:
    """A module was mapped into the address space."""

    time: int
    module_id: int


@dataclass(frozen=True)
class ModuleUnloaded:
    """A module was unmapped; its code addresses may be reused."""

    time: int
    module_id: int


@dataclass(frozen=True)
class ProgramEnd:
    """The program terminated; *time* is the total execution time."""

    time: int


SimEvent = BlockExecuted | ModuleLoaded | ModuleUnloaded | ProgramEnd
