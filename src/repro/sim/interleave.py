"""Deterministic multi-process trace-log interleaving.

The shared-cache experiments replay N per-process logs against one
cache group.  Real processes interleave nondeterministically; the
simulator needs the opposite — a *schedule* that is a pure function of
its inputs, so every table is byte-reproducible.  Two schedules:

* ``round-robin`` — each process runs a fixed quantum of records, in
  process order (the fair, maximally interleaved baseline).
* ``random`` — the next process is drawn from a
  :mod:`repro.rand` substream (seeded, hence still deterministic);
  models bursty, uneven scheduling.

Each scheduled record carries a *global virtual time*: the sum of
every process's consumed per-process time deltas, which gives the cache
group one monotone clock for recency and temperature decay even though
the per-process clocks run independently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import ConfigError
from repro.rand import substream
from repro.tracelog.records import LogRecord, TraceLog

#: Supported schedule names.
SCHEDULES = ("round-robin", "random")

#: Default records consumed per scheduling turn.
DEFAULT_QUANTUM = 32


@dataclass(frozen=True)
class ScheduledRecord:
    """One log record attributed to its process under a schedule.

    Attributes:
        process: Index of the process the record belongs to.
        record: The original log record (untouched).
        global_time: Monotone interleaved virtual time at which the
            record executes.
    """

    process: int
    record: LogRecord
    global_time: int


def interleave_logs(
    logs: Sequence[TraceLog],
    schedule: str = "round-robin",
    seed: int = 0,
    quantum: int = DEFAULT_QUANTUM,
) -> Iterator[ScheduledRecord]:
    """Merge N logs into one deterministic scheduled stream.

    Every record of every log appears exactly once, in per-process
    order; only the interleaving between processes varies with
    *schedule*.

    Args:
        logs: One log per process (index = process id).
        schedule: One of :data:`SCHEDULES`.
        seed: Substream seed for the ``random`` schedule.
        quantum: Records consumed per turn before rescheduling.

    Raises:
        ConfigError: for an unknown schedule, an empty log list, or a
            non-positive quantum.
    """
    if schedule not in SCHEDULES:
        raise ConfigError(
            f"unknown schedule {schedule!r}; choose from {', '.join(SCHEDULES)}"
        )
    if not logs:
        raise ConfigError("interleaving needs at least one log")
    if quantum < 1:
        raise ConfigError(f"quantum must be >= 1, got {quantum}")
    positions = [0] * len(logs)
    last_time = [0] * len(logs)
    global_time = 0
    remaining = [len(log.records) for log in logs]
    rng = substream(seed, "sim.interleave") if schedule == "random" else None

    # The alive list is maintained incrementally: a process is removed
    # the moment its log drains, so each scheduling turn costs O(1)
    # amortized instead of an O(P) rescan.  Removal keeps the list in
    # process order, which preserves the original schedule exactly
    # (round-robin indexes `alive[turn % len(alive)]`, and the random
    # draw consumes one rng value per turn either way).
    alive = [idx for idx, left in enumerate(remaining) if left > 0]
    turn = 0
    while alive:
        if rng is not None:
            slot = rng.randrange(len(alive))
        else:
            slot = turn % len(alive)
            turn += 1
        process = alive[slot]
        log = logs[process]
        for _ in range(min(quantum, remaining[process])):
            record = log.records[positions[process]]
            positions[process] += 1
            remaining[process] -= 1
            delta = max(0, record.time - last_time[process])
            last_time[process] = record.time
            global_time += delta
            yield ScheduledRecord(
                process=process, record=record, global_time=global_time
            )
        if not remaining[process]:
            del alive[slot]
