"""The stochastic execution engine.

Walks a :class:`~repro.isa.program.SyntheticProgram`'s CFG according to
a :class:`~repro.sim.phases.SessionScript`, emitting
:mod:`~repro.sim.events` with virtual-instruction timestamps.  The walk
is deterministic given the master seed.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import RuntimeStateError
from repro.isa.program import SyntheticProgram
from repro.rand import RandomStreams
from repro.sim.events import (
    BlockExecuted,
    ModuleLoaded,
    ModuleUnloaded,
    ProgramEnd,
    SimEvent,
)
from repro.sim.phases import LoadModule, Segment, SessionScript, UnloadModule
from repro.units import DEFAULT_INSTRUCTIONS_PER_BLOCK


class ExecutionEngine:
    """Drives one program through one session script."""

    def __init__(
        self,
        program: SyntheticProgram,
        script: SessionScript,
        seed: int = 0,
        instructions_per_block: int = DEFAULT_INSTRUCTIONS_PER_BLOCK,
    ) -> None:
        if instructions_per_block <= 0:
            raise ValueError("instructions_per_block must be positive")
        self.program = program
        self.script = script
        self._rng = RandomStreams(seed).get("engine")
        self._ipb = instructions_per_block
        self.time = 0

    def run(self) -> Iterator[SimEvent]:
        """Yield the full event stream for the session."""
        for step in self.script.steps:
            if isinstance(step, Segment):
                yield from self._run_segment(step)
            elif isinstance(step, LoadModule):
                self.program.load_module(step.module_id)
                yield ModuleLoaded(time=self.time, module_id=step.module_id)
            elif isinstance(step, UnloadModule):
                self.program.unload_module(step.module_id)
                yield ModuleUnloaded(time=self.time, module_id=step.module_id)
            else:  # pragma: no cover - exhaustive over ScriptStep
                raise RuntimeStateError(f"unknown script step {step!r}")
        yield ProgramEnd(time=self.time)

    def _run_segment(self, segment: Segment) -> Iterator[SimEvent]:
        block_id = segment.entry_block
        for _ in range(segment.n_blocks):
            module = self.program.module_of_block(block_id)
            if not module.loaded:
                raise RuntimeStateError(
                    f"segment entered block {block_id} of unloaded module "
                    f"{module.name!r}"
                )
            self.time += self._block_cost(block_id)
            yield BlockExecuted(time=self.time, block_id=block_id)
            successor = self.program.cfg.sample_successor(
                block_id, self._rng.random()
            )
            if successor is None:
                return  # terminal block ends the segment early
            block_id = successor

    def _block_cost(self, block_id: int) -> int:
        """Virtual instructions charged for executing *block_id*: one
        per instruction in the block, or a flat default for blocks with
        empty bodies."""
        block = self.program.blocks[block_id]
        return len(block.instructions) or self._ipb


def collect_events(engine: ExecutionEngine) -> list[SimEvent]:
    """Materialize an engine's full event stream (testing helper)."""
    return list(engine.run())
