"""Session scripts: the phase structure of a run.

A script is a sequence of steps.  :class:`Segment` steps execute the
program from an entry block for a bounded number of blocks (an
interactive app's "handle this click" or a SPEC program's "main loop
for a while"); :class:`LoadModule`/:class:`UnloadModule` steps model
DLL churn between phases.  The U-shaped lifetime distribution emerges
from scripts that run startup segments once, steady-state segments
throughout, and phase-local segments in bounded windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WorkloadError


@dataclass(frozen=True)
class Segment:
    """Execute from *entry_block* until *n_blocks* blocks have run (or
    a terminal block is reached)."""

    entry_block: int
    n_blocks: int

    def __post_init__(self) -> None:
        if self.n_blocks <= 0:
            raise WorkloadError(f"segment must execute >= 1 block, got {self.n_blocks}")


@dataclass(frozen=True)
class LoadModule:
    """Map a module before continuing."""

    module_id: int


@dataclass(frozen=True)
class UnloadModule:
    """Unmap a module before continuing (its traces must die)."""

    module_id: int


ScriptStep = Segment | LoadModule | UnloadModule


@dataclass
class SessionScript:
    """An ordered list of steps driving one run.

    Attributes:
        steps: Segments and module load/unload directives.
        duration_seconds: Wall-clock duration this script represents
            (copied into the recorded log for rate metrics).
    """

    steps: list[ScriptStep] = field(default_factory=list)
    duration_seconds: float = 1.0

    def add(self, step: ScriptStep) -> "SessionScript":
        """Append a step (chainable)."""
        self.steps.append(step)
        return self

    @property
    def total_blocks(self) -> int:
        """Upper bound on blocks the script executes."""
        return sum(s.n_blocks for s in self.steps if isinstance(s, Segment))
