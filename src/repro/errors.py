"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single type at the API boundary while the library
itself raises the most specific subclass available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class ArenaError(ReproError):
    """Base class for code-cache arena errors."""


class ArenaOverlapError(ArenaError):
    """A placement would overlap an already-placed trace."""


class ArenaBoundsError(ArenaError):
    """A placement would fall outside the arena's address range."""


class TraceTooLargeError(ArenaError):
    """A trace is larger than the cache that must hold it."""


class CacheFullError(ArenaError):
    """No eviction sequence can free enough space (e.g. everything is
    pinned as undeletable)."""


class UnknownTraceError(ReproError):
    """An operation referenced a trace id the cache has never seen."""


class DuplicateTraceError(ReproError):
    """A trace id was inserted while already resident."""


class LogFormatError(ReproError):
    """A trace log could not be parsed."""


class LogOrderError(LogFormatError):
    """Log records were not in non-decreasing time order."""


class WorkloadError(ConfigError):
    """A workload profile or generator was misconfigured.

    Subclasses :class:`ConfigError`: a bad profile *is* a bad
    configuration, so CLI verbs and the job scheduler treat it as a
    structured configuration error (exit code 2, no retries) instead
    of an opaque crash deep inside synthesis.
    """


class ScenarioError(ReproError):
    """A scenario search (calibration or fuzzing) failed to produce
    its result — e.g. a fuzz run that was required to surface a
    counterexample found none, or a scenario artifact references a
    contender that no longer exists."""


class RuntimeStateError(ReproError):
    """The dynamic-optimizer runtime was driven through an invalid
    state transition (e.g. executing a block of an unloaded module)."""


class ExperimentError(ReproError):
    """An experiment harness failed to produce its result table."""


class ServiceError(ReproError):
    """The simulation service failed to schedule or serve a job."""


class JobQueueFullError(ServiceError):
    """The scheduler's bounded admission queue rejected a submission."""


class JobNotFoundError(ServiceError):
    """A job id was requested that the scheduler has never seen."""


class DrainingError(ServiceError):
    """A submission was rejected because the scheduler (or shard) is
    draining: it finishes in-flight work but admits nothing new."""


class ShardError(ServiceError):
    """The cluster could not place a job on any shard (every shard is
    drained or dead, or an unknown shard name was referenced)."""


class OverloadedError(ServiceError):
    """Admission control shed the request (HTTP 429).

    Attributes:
        retry_after: Seconds the caller should wait before retrying —
            what the ``Retry-After`` response header carries.
        reason: Which admission gate shed the request (``"rate"``,
            ``"queue"``, or ``"fair-share"``), when known.
    """

    def __init__(
        self,
        message: str,
        retry_after: float = 1.0,
        reason: str | None = None,
    ) -> None:
        super().__init__(message)
        self.retry_after = retry_after
        self.reason = reason


class InvariantViolation(ReproError, AssertionError):
    """A simulation invariant did not hold.

    Raised by the runtime sanitizer
    (:class:`repro.analysis.sanitizer.SanitizerHarness`) with enough
    context to localize the corruption: which invariant, which cache,
    which trace, and at what virtual time.  Subclasses
    ``AssertionError`` as well so callers treating invariant checks as
    assertions keep working.

    Attributes:
        invariant: Stable id of the violated invariant.
        cache: Name of the offending cache, if cache-specific.
        trace_id: The offending trace, if trace-specific.
        time: Virtual time of the event being processed, if known.
        context: Free-form extra details (event repr, counts, extents).
        message: The bare message, without the location suffix.
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        *,
        cache: str | None = None,
        trace_id: int | None = None,
        time: int | None = None,
        context: dict[str, object] | None = None,
    ) -> None:
        self.invariant = invariant
        self.message = message
        self.cache = cache
        self.trace_id = trace_id
        self.time = time
        self.context = dict(context or {})
        where = [
            part
            for part in (
                f"cache={cache}" if cache is not None else None,
                f"trace={trace_id}" if trace_id is not None else None,
                f"time={time}" if time is not None else None,
            )
            if part
        ]
        suffix = f" ({', '.join(where)})" if where else ""
        super().__init__(f"[{invariant}] {message}{suffix}")
