"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single type at the API boundary while the library
itself raises the most specific subclass available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class ArenaError(ReproError):
    """Base class for code-cache arena errors."""


class ArenaOverlapError(ArenaError):
    """A placement would overlap an already-placed trace."""


class ArenaBoundsError(ArenaError):
    """A placement would fall outside the arena's address range."""


class TraceTooLargeError(ArenaError):
    """A trace is larger than the cache that must hold it."""


class CacheFullError(ArenaError):
    """No eviction sequence can free enough space (e.g. everything is
    pinned as undeletable)."""


class UnknownTraceError(ReproError):
    """An operation referenced a trace id the cache has never seen."""


class DuplicateTraceError(ReproError):
    """A trace id was inserted while already resident."""


class LogFormatError(ReproError):
    """A trace log could not be parsed."""


class LogOrderError(LogFormatError):
    """Log records were not in non-decreasing time order."""


class WorkloadError(ReproError):
    """A workload profile or generator was misconfigured."""


class RuntimeStateError(ReproError):
    """The dynamic-optimizer runtime was driven through an invalid
    state transition (e.g. executing a block of an unloaded module)."""


class ExperimentError(ReproError):
    """An experiment harness failed to produce its result table."""
