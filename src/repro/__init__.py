"""repro: generational code-cache management for dynamic optimizers.

A full reproduction of Hazelwood & Smith, "Generational Cache
Management of Code Traces in Dynamic Optimization Systems"
(MICRO 2003): the dynamic-optimizer front end, the trace-log substrate,
the local and global cache-management policies, the Table 2 cost
model, a calibrated 38-benchmark workload catalog, and one experiment
per table/figure of the paper's evaluation.

Quickstart::

    from repro import (
        GenerationalCacheManager, GenerationalConfig,
        UnifiedCacheManager, simulate_log, synthesize_log, get_profile,
    )

    log = synthesize_log(get_profile("word"), seed=42)
    capacity = log.total_trace_bytes // 2
    unified = simulate_log(log, UnifiedCacheManager(capacity))
    generational = simulate_log(
        log, GenerationalCacheManager(capacity, GenerationalConfig())
    )
    print(unified.miss_rate, generational.miss_rate)
"""

from repro._version import __version__
from repro.analysis import SanitizerHarness
from repro.cachesim import (
    Arena,
    CacheSimulator,
    CacheStats,
    SimulationResult,
    simulate_log,
)
from repro.core import (
    GenerationalCacheManager,
    GenerationalConfig,
    PromotionMode,
    UnifiedCacheManager,
)
from repro.core.config import BEST_CONFIG, FIGURE9_CONFIGS
from repro.errors import InvariantViolation, ReproError
from repro.overhead import CostModel, OverheadAccount, TABLE2_COSTS
from repro.policies import (
    CircularCache,
    CodeCache,
    LRUCache,
    PreemptiveFlushCache,
    PseudoCircularCache,
    UnboundedCache,
)
from repro.runtime import DynOptRuntime, record_session
from repro.tracelog import TraceLog, read_log, write_log
from repro.workloads import (
    WorkloadProfile,
    all_profiles,
    get_profile,
    synthesize_log,
)

__all__ = [
    "Arena",
    "BEST_CONFIG",
    "CacheSimulator",
    "CacheStats",
    "CircularCache",
    "CodeCache",
    "CostModel",
    "DynOptRuntime",
    "FIGURE9_CONFIGS",
    "GenerationalCacheManager",
    "GenerationalConfig",
    "InvariantViolation",
    "LRUCache",
    "OverheadAccount",
    "PreemptiveFlushCache",
    "PromotionMode",
    "PseudoCircularCache",
    "ReproError",
    "SanitizerHarness",
    "SimulationResult",
    "TABLE2_COSTS",
    "TraceLog",
    "UnboundedCache",
    "UnifiedCacheManager",
    "WorkloadProfile",
    "__version__",
    "all_profiles",
    "get_profile",
    "read_log",
    "record_session",
    "simulate_log",
    "synthesize_log",
    "write_log",
]
