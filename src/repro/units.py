"""Size and time units used throughout the package.

The paper reports cache sizes in KB/MB, insertion rates in KB/s, and
overheads in instruction counts.  All internal bookkeeping is done in
plain integers (bytes, virtual instructions); these helpers exist so
that display code never hand-rolls the conversions.
"""

from __future__ import annotations

KB = 1024
MB = 1024 * KB

#: Virtual instructions we charge per executed basic block when the
#: execution engine converts block counts into virtual time.  The exact
#: value only sets the time scale; it is configurable in the engine.
DEFAULT_INSTRUCTIONS_PER_BLOCK = 8


def kib(n_bytes: float) -> float:
    """Return *n_bytes* expressed in KiB."""
    return n_bytes / KB


def mib(n_bytes: float) -> float:
    """Return *n_bytes* expressed in MiB."""
    return n_bytes / MB


def format_bytes(n_bytes: float) -> str:
    """Render a byte count the way the paper does (KB below 1 MB,
    otherwise MB with one decimal).

    >>> format_bytes(512)
    '512 B'
    >>> format_bytes(736 * KB)
    '736.0 KB'
    >>> format_bytes(34.2 * MB)
    '34.2 MB'
    """
    if n_bytes < KB:
        return f"{n_bytes:.0f} B"
    if n_bytes < MB:
        return f"{n_bytes / KB:.1f} KB"
    return f"{n_bytes / MB:.1f} MB"


def format_rate(bytes_per_second: float) -> str:
    """Render an insertion rate in KB/s as in Figure 3."""
    return f"{bytes_per_second / KB:.1f} KB/s"


def format_percent(fraction: float) -> str:
    """Render a fraction as a percentage with one decimal."""
    return f"{fraction * 100:.1f}%"
