"""Institutionalized scenarios: the registry behind the catalog.

Surviving counterexamples graduate from fuzz output to *regression
fixtures*: their artifacts are registered here, which (a) publishes
their profiles into :mod:`repro.workloads.catalog` under the
``"scenario"`` suite so every consumer can address them by name, and
(b) makes them replayable by the ``scenarios`` regression experiment,
which re-measures each artifact's regret and compares it against the
recorded expectation.

Three artifact sources feed the registry:

* :data:`BUILTIN_COUNTEREXAMPLES` — artifacts found by seeded fuzz
  runs during development and checked in as literals (the payloads
  below were produced by ``repro-gencache fuzz`` with the recorded
  seeds and survive shrinking);
* a directory of ``s*.json`` files named by ``REPRO_SCENARIO_DIR``,
  loaded alongside the builtins;
* explicit :func:`register` calls (the CLI verbs use this).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.errors import ConfigError, ScenarioError
from repro.scenarios.artifact import ScenarioArtifact

#: Environment variable naming an extra directory of scenario
#: artifacts to load at startup.
ENV_DIR = "REPRO_SCENARIO_DIR"

#: Checked-in survivors of seeded fuzz campaigns.  Each payload is the
#: byte-stable artifact JSON; ids are content digests, so any edit to a
#: payload without updating its id fails loading loudly.
#:
#: Both were found by ``fuzz(seed=42, scale=128.0, rounds=24)`` from
#: the gcc base profile under the ``churn`` mutator and survived
#: shrinking (4 accepted steps each).  The first is the headline
#: result: at quarter capacity on a churn-heavy compile workload, the
#: paper's best generational layout loses ~1.5 miss-rate points to a
#: plain unified cache — promotion traffic evicts short-lived code the
#: unified cache would have kept.  The second shows the balanced
#: generational layout losing to a probation-dominant one when almost
#: nothing lives long enough to earn persistence.
BUILTIN_COUNTEREXAMPLES: tuple[dict, ...] = (
    {
        "capacity_fraction": 0.25,
        "expected_regret": 0.028259653049804156,
        "format": 1,
        "id": "s520b79d88b0655d5dd6955194e37367",
        "kind": "counterexample",
        "name": "cx-generational-vs-unified-520b79d8",
        "profile": {
            "burst_repeat": 4.0,
            "code_expansion": 7.4,
            "default_scale": 4.0,
            "description": "C compiler",
            "duration_seconds": 18.53448275862069,
            "hot_records": 48,
            "lifetime_mix": {
                "long": 0.3380073590678904,
                "medium": 0.11599632096605489,
                "short": 0.5459963199660547,
            },
            "median_trace_bytes": 242,
            "n_phases": 8,
            "name": "cx-generational-vs-unified-520b79d8",
            "pin_fraction": 0.002,
            "reaccess_long": 8.373975490799122,
            "reaccess_short": 6.0,
            "suite": "scenario",
            "total_trace_kb": 4300.0,
            "unmap_fraction": 0.0,
        },
        "provenance": {
            "mutators": ["churn"],
            "reference_miss_rate": 0.13122551762730833,
            "search_regret": 0.015339233038348082,
            "shrink_steps": 4,
            "victim_miss_rate": 0.1594851706771125,
        },
        "reference": "unified",
        "scale": 128.0,
        "seed": 42,
        "victim": "generational",
    },
    {
        "capacity_fraction": 0.25,
        "expected_regret": 0.019781994348001618,
        "format": 1,
        "id": "s28a070eb289182469eeac792692b2f1",
        "kind": "counterexample",
        "name": "cx-generational-vs-probation-only-28a070eb",
        "profile": {
            "burst_repeat": 4.0,
            "code_expansion": 7.4,
            "default_scale": 4.0,
            "description": "C compiler",
            "duration_seconds": 18.53448275862069,
            "hot_records": 144,
            "lifetime_mix": {
                "long": 0.04162378495252507,
                "medium": 0.48837621504747497,
                "short": 0.47,
            },
            "median_trace_bytes": 242,
            "n_phases": 8,
            "name": "cx-generational-vs-probation-only-28a070eb",
            "pin_fraction": 0.002,
            "reaccess_long": 30.0,
            "reaccess_short": 6.0,
            "suite": "scenario",
            "total_trace_kb": 4300.0,
            "unmap_fraction": 0.0,
        },
        "provenance": {
            "mutators": ["churn"],
            "reference_miss_rate": 0.050867985466289865,
            "search_regret": 0.02528199144301828,
            "shrink_steps": 4,
            "victim_miss_rate": 0.07064997981429148,
        },
        "reference": "probation-only",
        "scale": 128.0,
        "seed": 42,
        "victim": "generational",
    },
)

_registry: dict[str, ScenarioArtifact] = {}
_builtin_loaded = False


def register(artifact: ScenarioArtifact, replace: bool = False) -> None:
    """Add *artifact* to the registry and its profile to the catalog.

    Registration is idempotent for identical content; re-registering a
    name with different content raises unless *replace*.
    """
    from repro.workloads import catalog

    existing = _registry.get(artifact.name)
    if existing is not None and not replace:
        if existing.scenario_id == artifact.scenario_id:
            return
        raise ConfigError(
            f"scenario {artifact.name!r} already registered with different "
            f"content ({existing.scenario_id} vs {artifact.scenario_id}); "
            "pass replace=True to overwrite"
        )
    catalog.register_profile(artifact.profile, replace=replace)
    _registry[artifact.name] = artifact


def load_directory(directory: str | Path) -> tuple[ScenarioArtifact, ...]:
    """Load and register every ``s*.json`` artifact under *directory*
    (sorted by filename for a deterministic order)."""
    root = Path(directory)
    if not root.is_dir():
        raise ConfigError(f"scenario directory {root} does not exist")
    loaded = []
    for path in sorted(root.glob("s*.json")):
        artifact = ScenarioArtifact.load(path)
        register(artifact)
        loaded.append(artifact)
    return tuple(loaded)


def ensure_builtin() -> None:
    """Load the checked-in counterexamples (and any ``REPRO_SCENARIO_DIR``
    directory) exactly once."""
    global _builtin_loaded
    if _builtin_loaded:
        return
    _builtin_loaded = True  # set first: register() re-enters via catalog
    for payload in BUILTIN_COUNTEREXAMPLES:
        register(ScenarioArtifact.from_dict(payload))
    env = os.environ.get(ENV_DIR)
    if env:
        load_directory(env)


def registered() -> tuple[ScenarioArtifact, ...]:
    """Every registered artifact, sorted by name."""
    ensure_builtin()
    return tuple(_registry[name] for name in sorted(_registry))


def get_scenario(name: str) -> ScenarioArtifact:
    """Look up one artifact by catalog name.

    Raises:
        ScenarioError: when no such scenario is registered.
    """
    ensure_builtin()
    artifact = _registry.get(name)
    if artifact is None:
        raise ScenarioError(
            f"unknown scenario {name!r}; registered: {sorted(_registry)}"
        )
    return artifact


def reset() -> None:
    """Drop dynamic registrations (test isolation only — the builtins
    reload on next use)."""
    global _builtin_loaded
    _registry.clear()
    _builtin_loaded = False
