"""The searchable region of workload-profile space.

Calibration and fuzzing both walk the same bounded parameter space:
every knob of :class:`~repro.workloads.profiles.WorkloadProfile` that
shapes cache-management difficulty, with explicit bounds so a search
can never wander into a profile the synthesizer would choke on.  The
lifetime mix is searched as two free coordinates (``lifetime_short``
and ``lifetime_long``); the medium share is the remainder, which keeps
every decoded mix summing to exactly 1.

Two layers of validation reject bad candidates *early*:

1. :func:`validate_values` checks a parameter vector against the
   declared bounds and raises a structured
   :class:`~repro.errors.ConfigError` naming the offending parameter.
2. :func:`build_profile` decodes the vector into a real profile, whose
   own ``__post_init__`` bounds checks (rates positive, mix weights
   summing to 1, non-negative lifetimes) fire at construction instead
   of deep inside synthesis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import ConfigError
from repro.rand import Random
from repro.workloads.profiles import LifetimeMix, WorkloadProfile

#: Ceiling on short+long lifetime mass; keeps the decoded medium share
#: at least 4% so every lifetime class stays populated.
MAX_EXTREME_LIFETIME_MASS = 0.96


@dataclass(frozen=True)
class ParameterSpec:
    """One searchable profile dimension.

    Attributes:
        name: Profile field name (or the ``lifetime_short`` /
            ``lifetime_long`` pseudo-fields).
        low: Inclusive lower bound.
        high: Inclusive upper bound.
        integer: Round decoded values to ints.
        log_scale: Search multiplicatively (sizes, rates, counts span
            orders of magnitude).
        step: Base coordinate-descent step — a multiplicative factor
            for log-scale parameters, a fraction of the range
            otherwise.
    """

    name: str
    low: float
    high: float
    integer: bool = False
    log_scale: bool = False
    step: float = 0.25

    def clamp(self, value: float) -> float:
        """Clip *value* into bounds (and round integer parameters)."""
        clipped = min(self.high, max(self.low, value))
        return float(round(clipped)) if self.integer else clipped

    def validate(self, value: float) -> None:
        """Raise :class:`ConfigError` when *value* is out of bounds."""
        if not self.low <= value <= self.high:
            raise ConfigError(
                f"scenario parameter {self.name}={value:g} outside "
                f"[{self.low:g}, {self.high:g}]"
            )

    def stepped(self, value: float, direction: int, factor: float = 1.0) -> float:
        """The coordinate-descent neighbour of *value*.

        *direction* is +1/-1; *factor* scales the base step (the
        calibration loop halves it as the search tightens).
        """
        amount = self.step * factor
        if self.log_scale:
            candidate = value * (1.0 + amount) if direction > 0 else value / (1.0 + amount)
        else:
            candidate = value + direction * amount * (self.high - self.low)
        return self.clamp(candidate)

    def jitter(self, value: float, rng: Random, spread: float = 1.0) -> float:
        """A random neighbour of *value* drawn from *rng*."""
        if self.log_scale:
            span = math.log(self.high / max(self.low, 1e-12))
            candidate = value * math.exp(rng.uniform(-1.0, 1.0) * self.step * spread * span / 4.0)
        else:
            candidate = value + rng.uniform(-1.0, 1.0) * self.step * spread * (self.high - self.low)
        return self.clamp(candidate)


#: Every searchable dimension, in the deterministic sweep order the
#: calibration loop and the shrinker both use.
SEARCH_PARAMETERS: tuple[ParameterSpec, ...] = (
    ParameterSpec("total_trace_kb", 32.0, 65536.0, log_scale=True),
    ParameterSpec("duration_seconds", 5.0, 7200.0, log_scale=True),
    ParameterSpec("code_expansion", 1.5, 12.0),
    ParameterSpec("unmap_fraction", 0.0, 0.6),
    ParameterSpec("lifetime_short", 0.02, 0.92),
    ParameterSpec("lifetime_long", 0.02, 0.92),
    ParameterSpec("n_phases", 1, 64, integer=True, log_scale=True),
    ParameterSpec("reaccess_short", 1.0, 64.0, log_scale=True),
    ParameterSpec("reaccess_long", 2.0, 400.0, log_scale=True),
    ParameterSpec("burst_repeat", 1.0, 32.0, log_scale=True),
    ParameterSpec("hot_records", 8, 2000, integer=True, log_scale=True),
    ParameterSpec("pin_fraction", 0.0, 0.05),
    ParameterSpec("median_trace_bytes", 32, 2048, integer=True, log_scale=True),
)

SPECS_BY_NAME: dict[str, ParameterSpec] = {
    spec.name: spec for spec in SEARCH_PARAMETERS
}


def parameter_vector(profile: WorkloadProfile) -> dict[str, float]:
    """Encode *profile* as an ordered parameter vector."""
    values: dict[str, float] = {}
    for spec in SEARCH_PARAMETERS:
        if spec.name == "lifetime_short":
            values[spec.name] = profile.lifetime_mix.short
        elif spec.name == "lifetime_long":
            values[spec.name] = profile.lifetime_mix.long
        else:
            values[spec.name] = float(getattr(profile, spec.name))
    return values


def validate_values(values: dict[str, float]) -> None:
    """Check a parameter vector against the space bounds.

    Raises:
        ConfigError: naming the first out-of-bounds or unknown
            parameter, or an over-full lifetime mix.
    """
    for name, value in values.items():
        spec = SPECS_BY_NAME.get(name)
        if spec is None:
            raise ConfigError(
                f"unknown scenario parameter {name!r}; choose from "
                f"{sorted(SPECS_BY_NAME)}"
            )
        spec.validate(value)
    short = values.get("lifetime_short", 0.0)
    long_ = values.get("lifetime_long", 0.0)
    if short + long_ > MAX_EXTREME_LIFETIME_MASS + 1e-9:
        raise ConfigError(
            f"lifetime_short + lifetime_long = {short + long_:.3f} exceeds "
            f"{MAX_EXTREME_LIFETIME_MASS} (medium share would vanish)"
        )


def clamp_values(values: dict[str, float]) -> dict[str, float]:
    """Project a vector into bounds (mutators use this so a structured
    perturbation can never produce an invalid candidate)."""
    clamped = {
        name: SPECS_BY_NAME[name].clamp(value) for name, value in values.items()
    }
    short = clamped.get("lifetime_short", 0.0)
    long_ = clamped.get("lifetime_long", 0.0)
    total = short + long_
    if total > MAX_EXTREME_LIFETIME_MASS:
        # Slightly under the ceiling so float rounding in the rescaled
        # values can never trip the strict validation bound.
        rescale = (MAX_EXTREME_LIFETIME_MASS - 1e-9) / total
        if "lifetime_short" in clamped:
            clamped["lifetime_short"] = short * rescale
        if "lifetime_long" in clamped:
            clamped["lifetime_long"] = long_ * rescale
    return clamped


def build_profile(
    base: WorkloadProfile,
    values: dict[str, float],
    name: str | None = None,
) -> WorkloadProfile:
    """Decode a parameter vector into a concrete profile.

    Unsearched fields (suite, description, default_scale) carry over
    from *base*.  The result is fully validated — out-of-space vectors
    and impossible profiles raise structured :class:`ConfigError`
    subtypes here, before any synthesis work starts.
    """
    validate_values(values)
    short = values["lifetime_short"]
    long_ = values["lifetime_long"]
    mix = LifetimeMix(
        short=short, medium=1.0 - short - long_, long=long_
    )
    fields = {
        spec.name: (
            int(values[spec.name]) if spec.integer else values[spec.name]
        )
        for spec in SEARCH_PARAMETERS
        if spec.name not in ("lifetime_short", "lifetime_long")
    }
    return replace(
        base,
        name=name if name is not None else base.name,
        lifetime_mix=mix,
        **fields,
    )


# ----------------------------------------------------------------------
# Structured mutators
# ----------------------------------------------------------------------


def _mutate_drift(values: dict[str, float], rng: Random) -> dict[str, float]:
    """Unstructured exploration: jitter a few random dimensions."""
    mutated = dict(values)
    chosen = rng.sample(sorted(SPECS_BY_NAME), k=rng.randint(2, 4))
    for name in chosen:
        spec = SPECS_BY_NAME[name]
        mutated[name] = spec.jitter(mutated[name], rng, spread=2.0)
    return clamp_values(mutated)


def _mutate_phase_storm(values: dict[str, float], rng: Random) -> dict[str, float]:
    """Rapid phase changes: many short phases of throwaway handler
    code, the workload shape that punishes promotion eagerness."""
    mutated = dict(values)
    mutated["n_phases"] = values["n_phases"] * rng.randint(4, 12)
    mutated["duration_seconds"] = values["duration_seconds"] / rng.uniform(1.5, 3.0)
    mutated["reaccess_short"] = values["reaccess_short"] * rng.uniform(1.5, 3.0)
    mutated["lifetime_short"] = max(values["lifetime_short"], rng.uniform(0.6, 0.85))
    mutated["lifetime_long"] = min(values["lifetime_long"], rng.uniform(0.05, 0.15))
    return clamp_values(mutated)


def _mutate_unmap_storm(values: dict[str, float], rng: Random) -> dict[str, float]:
    """DLL churn: a large fraction of trace bytes dies to module
    unmaps, stressing program-forced eviction paths."""
    mutated = dict(values)
    mutated["unmap_fraction"] = rng.uniform(0.3, 0.6)
    mutated["n_phases"] = values["n_phases"] * rng.randint(2, 6)
    mutated["lifetime_short"] = max(values["lifetime_short"], rng.uniform(0.55, 0.8))
    mutated["pin_fraction"] = min(values["pin_fraction"], 0.01)
    return clamp_values(mutated)


def _mutate_churn(values: dict[str, float], rng: Random) -> dict[str, float]:
    """Pure churn: almost no long-lived code, so persistent-cache
    capacity is dead weight and promotion traffic is pure overhead."""
    mutated = dict(values)
    mutated["lifetime_short"] = rng.uniform(0.78, 0.92)
    mutated["lifetime_long"] = rng.uniform(0.02, 0.06)
    mutated["hot_records"] = max(8.0, values["hot_records"] / rng.uniform(4.0, 10.0))
    mutated["reaccess_long"] = max(2.0, values["reaccess_long"] / rng.uniform(2.0, 6.0))
    mutated["total_trace_kb"] = values["total_trace_kb"] * rng.uniform(1.2, 2.5)
    return clamp_values(mutated)


#: The fuzzer's structured mutators, by stable name (sorted order is
#: the deterministic draw order).
MUTATORS = {
    "drift": _mutate_drift,
    "phase-storm": _mutate_phase_storm,
    "unmap-storm": _mutate_unmap_storm,
    "churn": _mutate_churn,
}
