"""Inverse workload synthesis: fit a profile to a target statistic.

The search is deliberately simple and fully deterministic from its
seed: cyclic coordinate descent over :data:`~repro.scenarios.space.
SEARCH_PARAMETERS` with step halving, escaping local minima through
annealed random kicks (two-parameter jitters accepted with a
simulated-annealing criterion).  Candidate evaluation is the expensive
step; it flows through the fastpath artifact cache
(:func:`~repro.scenarios.targets.measure_profile`) plus an in-search
memo table keyed on the rounded parameter vector, so revisited points
are free.

All randomness comes from one :func:`repro.rand.substream`; the same
``(target, base, seed, budget)`` always walks the same trajectory and
returns the same result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.rand import substream
from repro.scenarios.space import (
    SEARCH_PARAMETERS,
    build_profile,
    clamp_values,
    parameter_vector,
)
from repro.scenarios.targets import (
    SCENARIO_TOTALS,
    ScenarioTarget,
    WorkloadStatistics,
    measure_profile,
    objective,
)
from repro.workloads.profiles import WorkloadProfile

#: Default evaluation budget: enough for ~3 full coordinate sweeps over
#: the 13-dimensional space plus annealing kicks.
DEFAULT_BUDGET = 96

#: Initial annealing temperature, in objective units.  The objective is
#: O(0.1) near convergence, so this accepts most early uphill moves and
#: almost none by the final sweeps.
INITIAL_TEMPERATURE = 0.08


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of one calibration run.

    Attributes:
        best_profile: The fitted profile (named after the target).
        best_values: Its parameter vector.
        best_objective: Weighted objective at the optimum.
        components: Per-statistic distances at the optimum.
        best_statistics: The fitted profile's measured fingerprint.
        evaluations: Distinct candidate evaluations spent (memoized
            revisits not counted).
        converged: True when ``best_objective`` ended at or below the
            run's tolerance.
        tolerance: The convergence threshold used.
        seed: Master seed of the search.
        scale: Synthesis scale candidates were evaluated at.
        history: ``(evaluation_index, objective)`` pairs recording each
            strict improvement, for convergence plots.
    """

    best_profile: WorkloadProfile
    best_values: dict[str, float]
    best_objective: float
    components: dict[str, float]
    best_statistics: WorkloadStatistics
    evaluations: int
    converged: bool
    tolerance: float
    seed: int
    scale: float
    history: tuple[tuple[int, float], ...]


def _memo_key(values: dict[str, float]) -> tuple[tuple[str, float], ...]:
    """Stable memo key: rounding collapses float noise so a revisited
    point costs nothing."""
    return tuple(sorted((name, round(value, 9)) for name, value in values.items()))


def calibrate(
    target: ScenarioTarget,
    base: WorkloadProfile,
    seed: int = 42,
    scale: float = 64.0,
    budget: int = DEFAULT_BUDGET,
    tolerance: float = 0.05,
    parameters: tuple[str, ...] | None = None,
) -> CalibrationResult:
    """Fit *base*'s parameters so its fingerprint matches *target*.

    Args:
        target: The statistics to reproduce.
        base: Starting profile (also supplies unsearched fields).
        seed: Master seed; the whole trajectory derives from it.
        scale: Synthesis scale divisor for candidate evaluation.
            Must match the scale the target was measured at for the
            objective to be meaningful.
        budget: Maximum candidate evaluations.
        tolerance: Objective value considered converged.
        parameters: Restrict the search to these parameter names
            (default: all of them).  Unknown names raise
            :class:`ConfigError`.

    Returns:
        The best candidate found, whether or not it converged.
    """
    if budget < 1:
        raise ConfigError(f"calibration budget must be >= 1, got {budget}")
    if tolerance <= 0:
        raise ConfigError(f"tolerance must be positive, got {tolerance}")
    if scale <= 0:
        raise ConfigError(f"scale must be positive, got {scale}")
    searched = list(SEARCH_PARAMETERS)
    if parameters is not None:
        known = {spec.name for spec in SEARCH_PARAMETERS}
        unknown = sorted(set(parameters) - known)
        if unknown:
            raise ConfigError(
                f"unknown search parameters {unknown}; choose from "
                f"{sorted(known)}"
            )
        searched = [spec for spec in SEARCH_PARAMETERS if spec.name in parameters]
        if not searched:
            raise ConfigError("parameter restriction selects nothing to search")

    rng = substream(seed, "scenarios.calibrate")
    memo: dict[tuple, tuple[float, dict[str, float], WorkloadStatistics]] = {}
    spent = 0
    history: list[tuple[int, float]] = []

    def evaluate(values: dict[str, float]):
        nonlocal spent
        key = _memo_key(values)
        if key in memo:
            SCENARIO_TOTALS["memo_hits"] += 1
            return memo[key]
        spent += 1
        candidate = build_profile(base, values)
        measured = measure_profile(
            candidate, seed, scale, target.statistics.capacity_fractions
        )
        total, components = objective(target, measured)
        memo[key] = (total, components, measured)
        return memo[key]

    current = clamp_values(parameter_vector(base))
    current_obj, current_comp, current_stats = evaluate(current)
    best_values = dict(current)
    best_obj, best_comp, best_stats = current_obj, current_comp, current_stats
    history.append((spent, best_obj))

    step_factor = 1.0
    temperature = INITIAL_TEMPERATURE
    while spent < budget and best_obj > tolerance:
        improved_this_sweep = False
        # One cyclic coordinate-descent sweep.
        for spec in searched:
            if spent >= budget or best_obj <= tolerance:
                break
            for direction in (1, -1):
                if spent >= budget:
                    break
                candidate = dict(current)
                stepped = spec.stepped(current[spec.name], direction, step_factor)
                if stepped == current[spec.name]:
                    continue
                candidate[spec.name] = stepped
                candidate = clamp_values(candidate)
                cand_obj, cand_comp, cand_stats = evaluate(candidate)
                if cand_obj < current_obj:
                    current, current_obj = candidate, cand_obj
                    current_comp, current_stats = cand_comp, cand_stats
                    improved_this_sweep = True
                    if cand_obj < best_obj:
                        best_values, best_obj = dict(candidate), cand_obj
                        best_comp, best_stats = cand_comp, cand_stats
                        history.append((spent, best_obj))
                    break  # take the first improving direction
        if best_obj <= tolerance or spent >= budget:
            break
        if not improved_this_sweep:
            # Tighten, and try an annealed two-parameter kick to hop
            # out of the local minimum.
            step_factor = max(0.05, step_factor * 0.5)
            kicked = dict(current)
            for spec in rng.sample(searched, k=min(2, len(searched))):
                kicked[spec.name] = spec.jitter(
                    kicked[spec.name], rng, spread=1.5
                )
            kicked = clamp_values(kicked)
            kick_obj, kick_comp, kick_stats = evaluate(kicked)
            delta = kick_obj - current_obj
            if delta < 0 or rng.random() < math.exp(-delta / max(temperature, 1e-9)):
                current, current_obj = kicked, kick_obj
                current_comp, current_stats = kick_comp, kick_stats
                if kick_obj < best_obj:
                    best_values, best_obj = dict(kicked), kick_obj
                    best_comp, best_stats = kick_comp, kick_stats
                    history.append((spent, best_obj))
            temperature *= 0.7

    best_profile = build_profile(
        base, best_values, name=f"fit-{target.name}"
    )
    return CalibrationResult(
        best_profile=best_profile,
        best_values=dict(best_values),
        best_objective=best_obj,
        components=dict(best_comp),
        best_statistics=best_stats,
        evaluations=spent,
        converged=best_obj <= tolerance,
        tolerance=tolerance,
        seed=seed,
        scale=scale,
        history=tuple(history),
    )
