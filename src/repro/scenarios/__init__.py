"""Inverse workload synthesis and adversarial scenario search.

Our workload generators run forward: a calibrated
:class:`~repro.workloads.profiles.WorkloadProfile` produces a trace
log.  This package inverts the pipeline and then weaponizes the
inversion:

* :mod:`repro.scenarios.space` — the searchable region of profile
  space: bounded parameters, encode/decode between profiles and
  parameter vectors, and the structured mutators (phase storms, unmap
  storms, churn) the fuzzer composes.
* :mod:`repro.scenarios.targets` — target statistics (miss-rate-vs-
  capacity curve, lifetime histogram, insertion rate, unmap fraction),
  cheap candidate measurement through the fastpath artifact cache, and
  the weighted curve-distance objective.
* :mod:`repro.scenarios.calibrate` — the inverse-synthesis loop:
  deterministic seeded coordinate descent (with annealed random kicks)
  that fits profile parameters to a target statistic.
* :mod:`repro.scenarios.fuzz` — adversarial search over profile space
  maximizing the regret of one cache-management policy against
  another, with shrinking of surviving counterexamples.
* :mod:`repro.scenarios.artifact` — content-addressed scenario
  artifacts (profile + seed + expected regret, sha256-addressed like
  service job ids).
* :mod:`repro.scenarios.registry` — institutionalization: surviving
  counterexamples registered into the workload catalog and replayed by
  the ``scenarios`` regression experiment.

Everything is deterministic from a master seed via :mod:`repro.rand`;
the ``scenarios-determinism`` cachelint rule enforces that no wall
clock or ad-hoc RNG sneaks into the search.
"""

from __future__ import annotations

from repro.scenarios.artifact import ScenarioArtifact, scenario_id
from repro.scenarios.calibrate import CalibrationResult, calibrate
from repro.scenarios.fuzz import (
    CONTENDERS,
    Counterexample,
    FuzzResult,
    fuzz,
    regret_of,
)
from repro.scenarios.registry import ensure_builtin, get_scenario, registered
from repro.scenarios.space import MUTATORS, SEARCH_PARAMETERS, build_profile
from repro.scenarios.targets import (
    ROUND_TRIP_TOLERANCE,
    ScenarioTarget,
    WorkloadStatistics,
    measure_profile,
    objective,
    target_from_profile,
)

__all__ = [
    "CONTENDERS",
    "CalibrationResult",
    "Counterexample",
    "FuzzResult",
    "MUTATORS",
    "ROUND_TRIP_TOLERANCE",
    "SEARCH_PARAMETERS",
    "ScenarioArtifact",
    "ScenarioTarget",
    "WorkloadStatistics",
    "build_profile",
    "calibrate",
    "ensure_builtin",
    "fuzz",
    "get_scenario",
    "measure_profile",
    "objective",
    "registered",
    "regret_of",
    "scenario_id",
    "target_from_profile",
]
