"""Content-addressed scenario artifacts.

A scenario artifact institutionalizes a search outcome — a minimized
adversarial counterexample or a calibration fit — as a self-contained
JSON document: the full profile, the synthesis seed and scale it was
evaluated at, and the expected outcome (regret or objective) a replay
must reproduce.

Identity follows the service-job idiom: the id is ``"s"`` plus a
sha256 digest of the canonical JSON payload, truncated to 32 chars.
Names are *derived from* the digest (``cx-<victim>-vs-<reference>-
<digest8>``), so the digest is computed over a payload with the names
blanked — otherwise id and name would chase each other.  Two artifacts
with the same content always share an id, across processes and
machines.

Serialization is byte-stable: sorted keys, compact separators, one
trailing newline.  The determinism tests compare these bytes directly.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.errors import ConfigError
from repro.workloads.profiles import LifetimeMix, WorkloadProfile

#: Recognized artifact kinds.
ARTIFACT_KINDS = ("counterexample", "calibration")

#: Bumped when the artifact payload layout changes.
ARTIFACT_FORMAT = 1


def profile_to_dict(profile: WorkloadProfile) -> dict:
    """Serialize a profile (nested lifetime mix included)."""
    return asdict(profile)


def profile_from_dict(data: dict) -> WorkloadProfile:
    """Reconstruct a profile, revalidating every bound.

    Raises:
        ConfigError: on missing/unknown fields or out-of-range values
            (the profile's own ``__post_init__`` checks re-fire here).
    """
    if not isinstance(data, dict):
        raise ConfigError(
            f"profile payload must be a mapping, got {type(data).__name__}"
        )
    fields = dict(data)
    mix = fields.pop("lifetime_mix", None)
    if not isinstance(mix, dict):
        raise ConfigError("profile payload missing lifetime_mix mapping")
    try:
        return WorkloadProfile(lifetime_mix=LifetimeMix(**mix), **fields)
    except TypeError as exc:
        raise ConfigError(f"malformed profile payload: {exc}") from exc


@dataclass(frozen=True)
class ScenarioArtifact:
    """One institutionalized scenario.

    Attributes:
        kind: ``"counterexample"`` or ``"calibration"``.
        name: Catalog name (derived from the content digest for
            counterexamples).
        profile: The scenario's workload profile.
        seed: Synthesis seed the outcome was measured at.
        scale: Synthesis scale divisor.
        victim: Losing contender (counterexamples only).
        reference: Winning contender (counterexamples only).
        capacity_fraction: Capacity pressure point of the loss
            (counterexamples only).
        expected_regret: Regret a replay must reproduce
            (counterexamples only).
        objective: Final objective value (calibrations only).
        target_name: Name of the calibration target (calibrations
            only).
        provenance: Free-form origin details (mutators applied, shrink
            steps, budget spent, ...) — stored but excluded from the
            identity digest, like experiment notes.
    """

    kind: str
    name: str
    profile: WorkloadProfile
    seed: int
    scale: float
    victim: str | None = None
    reference: str | None = None
    capacity_fraction: float | None = None
    expected_regret: float | None = None
    objective: float | None = None
    target_name: str | None = None
    provenance: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in ARTIFACT_KINDS:
            raise ConfigError(
                f"unknown artifact kind {self.kind!r}; choose from "
                f"{ARTIFACT_KINDS}"
            )
        if not self.name:
            raise ConfigError("artifact name must be non-empty")
        if self.scale <= 0:
            raise ConfigError(f"artifact scale must be positive, got {self.scale}")
        if self.kind == "counterexample":
            missing = [
                label
                for label, value in (
                    ("victim", self.victim),
                    ("reference", self.reference),
                    ("capacity_fraction", self.capacity_fraction),
                    ("expected_regret", self.expected_regret),
                )
                if value is None
            ]
            if missing:
                raise ConfigError(
                    f"counterexample artifact missing fields: {missing}"
                )
            if self.victim == self.reference:
                raise ConfigError(
                    "counterexample victim and reference must differ"
                )
            if not 0.0 < self.capacity_fraction <= 1.0:
                raise ConfigError(
                    f"capacity_fraction {self.capacity_fraction} outside (0, 1]"
                )

    @property
    def scenario_id(self) -> str:
        return scenario_id(self)

    def to_dict(self) -> dict:
        """Full payload including the derived id."""
        payload = self._content_payload(include_names=True)
        payload["id"] = scenario_id(self)
        return payload

    def _content_payload(self, include_names: bool) -> dict:
        """The serialized payload.

        With *include_names* False this is the **identity** payload the
        digest covers: the profile (name blanked), the evaluation setup
        (seed, scale, contenders, capacity), and nothing else.  Names
        are blanked because they *derive from* the digest; measured
        outcomes (``expected_regret``, ``objective``) are excluded
        because log synthesis forks its random streams by profile name,
        so the outcome can only be measured after the name is fixed —
        including it would make id and name chase each other.
        """
        profile = profile_to_dict(self.profile)
        if not include_names:
            profile = {**profile, "name": ""}
        payload = {
            "format": ARTIFACT_FORMAT,
            "kind": self.kind,
            "profile": profile,
            "seed": self.seed,
            "scale": self.scale,
            "victim": self.victim,
            "reference": self.reference,
            "capacity_fraction": self.capacity_fraction,
            "target_name": self.target_name,
        }
        if include_names:
            payload["name"] = self.name
            payload["expected_regret"] = self.expected_regret
            payload["objective"] = self.objective
            payload["provenance"] = dict(sorted(self.provenance.items()))
        return payload

    def to_json(self) -> str:
        """Byte-stable serialization (sorted keys + trailing newline)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":")) + "\n"

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioArtifact":
        if not isinstance(data, dict):
            raise ConfigError(
                f"scenario artifact must be a mapping, got {type(data).__name__}"
            )
        if data.get("format", ARTIFACT_FORMAT) != ARTIFACT_FORMAT:
            raise ConfigError(
                f"unsupported artifact format {data.get('format')!r} "
                f"(this build reads format {ARTIFACT_FORMAT})"
            )
        required = {"kind", "name", "profile", "seed", "scale"}
        missing = required - set(data)
        if missing:
            raise ConfigError(
                f"scenario artifact missing fields: {sorted(missing)}"
            )
        provenance = data.get("provenance", {})
        if not isinstance(provenance, dict):
            raise ConfigError("artifact provenance must be a mapping")
        try:
            seed = int(data["seed"])
            scale = float(data["scale"])
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"malformed artifact numbers: {exc}") from exc
        artifact = cls(
            kind=str(data["kind"]),
            name=str(data["name"]),
            profile=profile_from_dict(data["profile"]),
            seed=seed,
            scale=scale,
            victim=data.get("victim"),
            reference=data.get("reference"),
            capacity_fraction=(
                None
                if data.get("capacity_fraction") is None
                else float(data["capacity_fraction"])
            ),
            expected_regret=(
                None
                if data.get("expected_regret") is None
                else float(data["expected_regret"])
            ),
            objective=(
                None if data.get("objective") is None else float(data["objective"])
            ),
            target_name=data.get("target_name"),
            provenance=provenance,
        )
        declared = data.get("id")
        if declared is not None and declared != artifact.scenario_id:
            raise ConfigError(
                f"artifact id mismatch: payload says {declared}, content "
                f"hashes to {artifact.scenario_id}"
            )
        return artifact

    def save(self, directory: str | Path) -> Path:
        """Write ``<scenario_id>.json`` atomically under *directory*."""
        root = Path(directory)
        root.mkdir(parents=True, exist_ok=True)
        path = root / f"{self.scenario_id}.json"
        fd, tmp_name = tempfile.mkstemp(dir=root, prefix=f".{path.name}.")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as stream:
                stream.write(self.to_json())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ScenarioArtifact":
        try:
            blob = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigError(f"cannot read scenario artifact {path}: {exc}") from exc
        try:
            data = json.loads(blob)
        except ValueError as exc:
            raise ConfigError(f"scenario artifact {path} is not JSON: {exc}") from exc
        return cls.from_dict(data)


def scenario_id(artifact: ScenarioArtifact) -> str:
    """Content digest identifying *artifact*: ``"s"`` + sha256 of the
    canonical identity payload — names blanked (they derive from this
    digest), measured outcomes and provenance excluded (they are
    results, not identity)."""
    payload = artifact._content_payload(include_names=False)
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return "s" + hashlib.sha256(blob.encode("utf-8")).hexdigest()[:31]


def counterexample_name(victim: str, reference: str, digest: str) -> str:
    """Canonical catalog name for a counterexample artifact."""
    return f"cx-{victim}-vs-{reference}-{digest[1:9]}"


def from_counterexample(cx) -> ScenarioArtifact:
    """Package a :class:`~repro.scenarios.fuzz.Counterexample` as an
    artifact.

    Profile and artifact are renamed after the content digest, and —
    because synthesis forks its random streams by profile name — the
    regret is then **re-measured** on the renamed profile, so a replay
    of the stored artifact reproduces ``expected_regret`` exactly.
    """
    from dataclasses import replace

    from repro.scenarios.fuzz import regret_of

    draft = ScenarioArtifact(
        kind="counterexample",
        name="pending",
        profile=replace(cx.profile, suite="scenario", name="pending"),
        seed=cx.seed,
        scale=cx.scale,
        victim=cx.victim,
        reference=cx.reference,
        capacity_fraction=cx.capacity_fraction,
        expected_regret=cx.regret,
    )
    name = counterexample_name(cx.victim, cx.reference, scenario_id(draft))
    profile = replace(draft.profile, name=name)
    regret, victim_miss, reference_miss = regret_of(
        profile, cx.victim, cx.reference, cx.seed, cx.scale, cx.capacity_fraction
    )
    return ScenarioArtifact(
        kind=draft.kind,
        name=name,
        profile=profile,
        seed=draft.seed,
        scale=draft.scale,
        victim=draft.victim,
        reference=draft.reference,
        capacity_fraction=draft.capacity_fraction,
        expected_regret=regret,
        provenance={
            "mutators": list(cx.mutators),
            "shrink_steps": cx.shrink_steps,
            "search_regret": cx.regret,
            "victim_miss_rate": victim_miss,
            "reference_miss_rate": reference_miss,
        },
    )


def from_calibration(result, target_name: str) -> ScenarioArtifact:
    """Package a :class:`~repro.scenarios.calibrate.CalibrationResult`
    as an artifact."""
    from dataclasses import replace

    name = f"fit-{target_name}"
    return ScenarioArtifact(
        kind="calibration",
        name=name,
        profile=replace(result.best_profile, suite="scenario", name=name),
        seed=result.seed,
        scale=result.scale,
        objective=result.best_objective,
        target_name=target_name,
        provenance={
            "converged": result.converged,
            "evaluations": result.evaluations,
            "tolerance": result.tolerance,
            "components": dict(sorted(result.components.items())),
        },
    )
