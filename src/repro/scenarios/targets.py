"""Target statistics and the calibration objective.

Inverse synthesis needs two things: a cheap way to *measure* what a
candidate profile actually produces, and a distance between that
measurement and the target.  The measurement reuses the fastpath
artifact cache, so re-evaluating a candidate the search has visited
before (or one sharing a synthesized log with an earlier run) costs a
few columnar ``frombytes`` calls instead of a full synthesis.

A :class:`WorkloadStatistics` bundles the four statistics the search
fits:

* the **miss-rate-vs-capacity curve** of a unified cache probed at
  :data:`CAPACITY_FRACTIONS` of the workload's own trace volume;
* the Figure 6 **trace-lifetime histogram** (five buckets, percent);
* the **insertion rate** in KB/s;
* the **unmapped fraction** of trace bytes.

:func:`objective` folds the per-statistic distances into one weighted
scalar; the weights make the miss curve dominate (it is the statistic
cache-management papers actually report) with the others acting as
regularizers that keep the recovered profile physically plausible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cachesim.simulator import simulate_log
from repro.core.unified import UnifiedCacheManager
from repro.errors import ConfigError
from repro.fastpath.artifacts import get_cache
from repro.fastpath import CompiledTraceLog, compile_log
from repro.metrics.lifetimes import BUCKET_LABELS, lifetime_histogram
from repro.tracelog.stats import summarize_log
from repro.units import KB
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.synthesis import synthesize_log

#: Capacity probe points, as fractions of the workload's own unbounded
#: cache size.  The low end is where policies differ most (Figure 9's
#: regime); 0.75 anchors the near-unbounded tail.
CAPACITY_FRACTIONS: tuple[float, ...] = (0.125, 0.25, 0.5, 0.75)

#: Documented convergence tolerance for round-trip calibration: the
#: recovered profile's miss curve must sit within this mean absolute
#: distance (in miss-rate points, 0-1 scale) of the target curve.
ROUND_TRIP_TOLERANCE = 0.05

#: Relative weight of each objective component.
OBJECTIVE_WEIGHTS: dict[str, float] = {
    "miss_curve": 1.0,
    "lifetimes": 0.5,
    "insertion_rate": 0.25,
    "unmap_fraction": 0.25,
}

#: Process-wide counters (mirrors ``ARTIFACT_TOTALS``): how many
#: candidate evaluations ran, and how many replayed a memoized result
#: inside one search.
SCENARIO_TOTALS = {
    "evaluations": 0,
    "memo_hits": 0,
}


@dataclass(frozen=True)
class WorkloadStatistics:
    """The measured fingerprint of one (profile, seed, scale).

    Attributes:
        capacity_fractions: Probe points of the miss curve.
        miss_curve: Unified-cache miss rate (0-1) at each probe point.
        lifetime_fractions: Percent of traces per Figure 6 bucket.
        insertion_rate_kb_s: Trace generation rate in KB/s.
        unmap_fraction: Fraction of trace bytes dying to module unmaps.
    """

    capacity_fractions: tuple[float, ...]
    miss_curve: tuple[float, ...]
    lifetime_fractions: tuple[float, ...]
    insertion_rate_kb_s: float
    unmap_fraction: float

    def __post_init__(self) -> None:
        if len(self.capacity_fractions) != len(self.miss_curve):
            raise ConfigError(
                f"miss curve has {len(self.miss_curve)} points for "
                f"{len(self.capacity_fractions)} capacity fractions"
            )
        if len(self.lifetime_fractions) != len(BUCKET_LABELS):
            raise ConfigError(
                f"lifetime histogram needs {len(BUCKET_LABELS)} buckets, "
                f"got {len(self.lifetime_fractions)}"
            )

    def to_dict(self) -> dict:
        return {
            "capacity_fractions": list(self.capacity_fractions),
            "miss_curve": list(self.miss_curve),
            "lifetime_fractions": list(self.lifetime_fractions),
            "insertion_rate_kb_s": self.insertion_rate_kb_s,
            "unmap_fraction": self.unmap_fraction,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadStatistics":
        if not isinstance(data, dict):
            raise ConfigError(f"workload statistics must be a mapping, got {type(data).__name__}")
        missing = {
            "capacity_fractions",
            "miss_curve",
            "lifetime_fractions",
            "insertion_rate_kb_s",
            "unmap_fraction",
        } - set(data)
        if missing:
            raise ConfigError(
                f"workload statistics missing fields: {sorted(missing)}"
            )
        try:
            return cls(
                capacity_fractions=tuple(float(f) for f in data["capacity_fractions"]),
                miss_curve=tuple(float(m) for m in data["miss_curve"]),
                lifetime_fractions=tuple(float(p) for p in data["lifetime_fractions"]),
                insertion_rate_kb_s=float(data["insertion_rate_kb_s"]),
                unmap_fraction=float(data["unmap_fraction"]),
            )
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"malformed workload statistics: {exc}") from exc


@dataclass(frozen=True)
class ScenarioTarget:
    """What a calibration run is asked to reproduce.

    Attributes:
        name: Label for the target (used in artifact provenance).
        statistics: The fingerprint to match.
        weights: Objective component weights (defaults to
            :data:`OBJECTIVE_WEIGHTS`).
    """

    name: str
    statistics: WorkloadStatistics
    weights: tuple[tuple[str, float], ...] = tuple(
        sorted(OBJECTIVE_WEIGHTS.items())
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("scenario target name must be non-empty")
        known = set(OBJECTIVE_WEIGHTS)
        for key, weight in self.weights:
            if key not in known:
                raise ConfigError(
                    f"unknown objective component {key!r}; choose from "
                    f"{sorted(known)}"
                )
            if weight < 0:
                raise ConfigError(
                    f"objective weight {key}={weight} must be non-negative"
                )

    @property
    def weight_map(self) -> dict[str, float]:
        merged = dict(OBJECTIVE_WEIGHTS)
        merged.update(dict(self.weights))
        return merged

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "statistics": self.statistics.to_dict(),
            "weights": {key: weight for key, weight in self.weights},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioTarget":
        if not isinstance(data, dict):
            raise ConfigError(f"scenario target must be a mapping, got {type(data).__name__}")
        if "statistics" not in data or "name" not in data:
            raise ConfigError("scenario target needs 'name' and 'statistics'")
        weights = data.get("weights", OBJECTIVE_WEIGHTS)
        if not isinstance(weights, dict):
            raise ConfigError("scenario target 'weights' must be a mapping")
        try:
            pairs = tuple(sorted((str(k), float(v)) for k, v in weights.items()))
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"malformed target weights: {exc}") from exc
        return cls(
            name=str(data["name"]),
            statistics=WorkloadStatistics.from_dict(data["statistics"]),
            weights=pairs,
        )


def _synthesize_measured(
    profile: WorkloadProfile, seed: int, scale: float
) -> tuple[CompiledTraceLog, "object"]:
    """The compiled log and its object form, through the artifact
    cache when one is configured."""
    store = get_cache()
    if store is None:
        log = synthesize_log(profile, seed=seed, scale=scale)
        return compile_log(log), log
    compiled, log = store.compiled_log(
        profile,
        seed,
        scale,
        lambda: synthesize_log(profile, seed=seed, scale=scale),
    )
    return compiled, (log if log is not None else compiled.decompile())


def measure_profile(
    profile: WorkloadProfile,
    seed: int,
    scale: float,
    fractions: tuple[float, ...] = CAPACITY_FRACTIONS,
) -> WorkloadStatistics:
    """Synthesize (through the artifact cache) and fingerprint one
    candidate profile."""
    for fraction in fractions:
        if not 0.0 < fraction <= 1.0:
            raise ConfigError(
                f"capacity fraction {fraction} outside (0, 1]"
            )
    SCENARIO_TOTALS["evaluations"] += 1
    compiled, log = _synthesize_measured(profile, seed, scale)
    store = get_cache()
    if store is None:
        stats = summarize_log(log)
    else:
        stats = store.log_stats(
            profile, seed, scale, lambda: summarize_log(log)
        )
    histogram = lifetime_histogram(log)
    curve = []
    for fraction in fractions:
        capacity = max(4096, int(stats.total_trace_bytes * fraction))
        result = simulate_log(compiled, UnifiedCacheManager(capacity))
        curve.append(result.miss_rate)
    return WorkloadStatistics(
        capacity_fractions=tuple(fractions),
        miss_curve=tuple(curve),
        lifetime_fractions=histogram.fractions,
        insertion_rate_kb_s=stats.insertion_rate_bytes_per_second / KB,
        unmap_fraction=stats.unmapped_fraction,
    )


def target_from_profile(
    profile: WorkloadProfile,
    seed: int,
    scale: float,
    fractions: tuple[float, ...] = CAPACITY_FRACTIONS,
    name: str | None = None,
) -> ScenarioTarget:
    """Fingerprint *profile* and wrap it as a calibration target (the
    round-trip tests and the bundled example targets use this)."""
    return ScenarioTarget(
        name=name if name is not None else profile.name,
        statistics=measure_profile(profile, seed, scale, fractions),
    )


def _mean_abs(xs: tuple[float, ...], ys: tuple[float, ...]) -> float:
    return sum(abs(x - y) for x, y in zip(xs, ys)) / max(1, len(xs))


def objective(
    target: ScenarioTarget, measured: WorkloadStatistics
) -> tuple[float, dict[str, float]]:
    """Weighted distance between *measured* and the target fingerprint.

    Returns ``(total, components)`` where every component is
    normalized to [0, 1]-ish scale before weighting:

    * ``miss_curve`` — mean absolute miss-rate gap across the probe
      points (already 0-1);
    * ``lifetimes`` — mean absolute bucket gap, percent scaled to 0-1;
    * ``insertion_rate`` — relative rate gap, capped at 1;
    * ``unmap_fraction`` — absolute gap (already 0-1).
    """
    want = target.statistics
    if want.capacity_fractions != measured.capacity_fractions:
        raise ConfigError(
            f"measured curve probes {measured.capacity_fractions} do not "
            f"match target probes {want.capacity_fractions}"
        )
    rate_base = max(want.insertion_rate_kb_s, 1e-9)
    components = {
        "miss_curve": _mean_abs(want.miss_curve, measured.miss_curve),
        "lifetimes": _mean_abs(
            want.lifetime_fractions, measured.lifetime_fractions
        )
        / 100.0,
        "insertion_rate": min(
            1.0,
            abs(measured.insertion_rate_kb_s - want.insertion_rate_kb_s)
            / rate_base,
        ),
        "unmap_fraction": abs(
            measured.unmap_fraction - want.unmap_fraction
        ),
    }
    weights = target.weight_map
    total = sum(weights[key] * value for key, value in sorted(components.items()))
    return total, components
