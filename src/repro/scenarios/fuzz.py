"""Adversarial scenario search: where does one policy lose to another?

The paper argues generational management wins on average.  This module
searches for the workloads where it *doesn't*: a seeded fuzzer walks
profile space with the structured mutators from
:mod:`repro.scenarios.space` (phase storms, unmap storms, pure churn),
scoring each candidate by the **regret** of a victim policy against a
reference policy — the victim's miss rate minus the reference's at the
same capacity.  Positive regret means the victim loses.

Survivors above the regret threshold are **shrunk**: a deterministic
minimization pass reverts each searched parameter back toward its base
value while the regret stays above threshold, so the institutionalized
counterexample isolates the few dimensions that actually cause the
loss.  The shrinker is monotone — each accepted step only removes or
narrows differences from the base profile, never adds one, and never
drops the regret below the threshold.

Determinism: one :func:`repro.rand.substream` drives mutator and base
selection; candidate evaluation is seeded and flows through the
artifact cache, so the same ``fuzz(...)`` call always returns the
same counterexamples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.cachesim.simulator import simulate_log
from repro.core.config import FIGURE9_CONFIGS, BEST_CONFIG, GenerationalConfig, PromotionMode
from repro.core.generational import GenerationalCacheManager
from repro.core.unified import UnifiedCacheManager
from repro.errors import ConfigError
from repro.rand import substream
from repro.scenarios.space import (
    MUTATORS,
    SPECS_BY_NAME,
    build_profile,
    clamp_values,
    parameter_vector,
)
from repro.scenarios.targets import SCENARIO_TOTALS, _synthesize_measured
from repro.tracelog.stats import summarize_log
from repro.workloads.catalog import get_profile
from repro.workloads.profiles import WorkloadProfile

#: Probation-dominant layout: almost everything sits in probation with
#: a high eviction-time threshold, approximating a probation-only
#: design (the fractions must stay strictly inside (0, 1)).
_PROBATION_ONLY = GenerationalConfig(
    nursery_fraction=0.05,
    probation_fraction=0.90,
    persistent_fraction=0.05,
    promotion_threshold=10,
    promotion_mode=PromotionMode.ON_EVICTION,
)

#: Named cache-manager factories the fuzzer can pit against each other.
#: Each maps a byte capacity to a fresh manager.
CONTENDERS: dict[str, Callable[[int], object]] = {
    "generational": lambda capacity: GenerationalCacheManager(capacity, BEST_CONFIG),
    "generational-balanced": lambda capacity: GenerationalCacheManager(
        capacity, FIGURE9_CONFIGS[0]
    ),
    "probation-only": lambda capacity: GenerationalCacheManager(
        capacity, _PROBATION_ONLY
    ),
    "unified": lambda capacity: UnifiedCacheManager(capacity),
    "flush-all": lambda capacity: UnifiedCacheManager(
        capacity, local_policy="preemptive-flush"
    ),
    "lru": lambda capacity: UnifiedCacheManager(capacity, local_policy="lru"),
}

#: Capacity pressure points where policies actually differ.
DEFAULT_FRACTIONS: tuple[float, ...] = (0.25, 0.5)

#: Default regret (miss-rate points, 0-1 scale) a candidate must reach
#: to count as a counterexample.
DEFAULT_MIN_REGRET = 0.01


def _resolve_contender(name: str) -> Callable[[int], object]:
    factory = CONTENDERS.get(name)
    if factory is None:
        raise ConfigError(
            f"unknown contender {name!r}; choose from {sorted(CONTENDERS)}"
        )
    return factory


@dataclass(frozen=True)
class Counterexample:
    """A minimized workload where *victim* loses to *reference*.

    Attributes:
        profile: The (shrunk) adversarial profile.
        victim: Contender name whose miss rate is higher.
        reference: Contender name it loses to.
        capacity_fraction: Capacity (as a fraction of the workload's
            trace volume) where the loss shows.
        regret: ``victim_miss - reference_miss`` at that capacity.
        victim_miss_rate: The victim's miss rate there.
        reference_miss_rate: The reference's miss rate there.
        seed: Synthesis seed of the adversarial log.
        scale: Synthesis scale divisor.
        mutators: Mutator names that produced the pre-shrink candidate.
        shrink_steps: Accepted shrinking steps (0 = already minimal).
    """

    profile: WorkloadProfile
    victim: str
    reference: str
    capacity_fraction: float
    regret: float
    victim_miss_rate: float
    reference_miss_rate: float
    seed: int
    scale: float
    mutators: tuple[str, ...]
    shrink_steps: int


@dataclass(frozen=True)
class FuzzResult:
    """Outcome of one fuzzing campaign.

    Attributes:
        counterexamples: Minimized survivors, sorted by descending
            regret.
        rounds: Mutation rounds executed.
        candidates: Candidate profiles evaluated (pre-shrink).
        best_regret: Highest regret observed across all candidates,
            even below-threshold ones (diagnostic when nothing
            survives).
        victim: The victim contender name.
        reference: The reference contender name.
        seed: Master seed of the campaign.
        scale: Synthesis scale divisor.
        min_regret: Threshold survivors had to clear.
    """

    counterexamples: tuple[Counterexample, ...]
    rounds: int
    candidates: int
    best_regret: float
    victim: str
    reference: str
    seed: int
    scale: float
    min_regret: float


def regret_of(
    profile: WorkloadProfile,
    victim: str,
    reference: str,
    seed: int,
    scale: float,
    fraction: float,
) -> tuple[float, float, float]:
    """Measure the victim's regret on one workload at one capacity.

    Returns ``(regret, victim_miss, reference_miss)`` where regret is
    the victim's miss rate minus the reference's — positive when the
    victim loses.
    """
    if not 0.0 < fraction <= 1.0:
        raise ConfigError(f"capacity fraction {fraction} outside (0, 1]")
    victim_factory = _resolve_contender(victim)
    reference_factory = _resolve_contender(reference)
    SCENARIO_TOTALS["evaluations"] += 1
    compiled, log = _synthesize_measured(profile, seed, scale)
    total_bytes = summarize_log(log).total_trace_bytes
    capacity = max(4096, int(total_bytes * fraction))
    victim_miss = simulate_log(compiled, victim_factory(capacity)).miss_rate
    reference_miss = simulate_log(compiled, reference_factory(capacity)).miss_rate
    return victim_miss - reference_miss, victim_miss, reference_miss


def _worst_fraction(
    profile: WorkloadProfile,
    victim: str,
    reference: str,
    seed: int,
    scale: float,
    fractions: tuple[float, ...],
) -> tuple[float, float, float, float]:
    """The capacity fraction maximizing regret, with its miss rates."""
    best = None
    for fraction in fractions:
        regret, victim_miss, reference_miss = regret_of(
            profile, victim, reference, seed, scale, fraction
        )
        if best is None or regret > best[1]:
            best = (fraction, regret, victim_miss, reference_miss)
    assert best is not None
    return best


def shrink(
    values: dict[str, float],
    base_values: dict[str, float],
    evaluate: Callable[[dict[str, float]], float],
    min_regret: float,
) -> tuple[dict[str, float], int]:
    """Minimize a counterexample vector against *base_values*.

    Two deterministic passes over the searched parameters in spec
    order: first try reverting each differing parameter fully to its
    base value, then try halving the remaining differences.  A step is
    accepted only if the regret stays at or above *min_regret*, so the
    result is monotone: the set of differing parameters never grows,
    each difference only narrows, and the final vector still clears
    the threshold.

    Returns the shrunk vector and the number of accepted steps.
    """
    current = dict(values)
    accepted = 0
    # Pass 1: full reverts.
    for name in sorted(SPECS_BY_NAME):
        if name not in current or current[name] == base_values.get(name):
            continue
        candidate = clamp_values({**current, name: base_values[name]})
        if candidate == current:
            continue
        if evaluate(candidate) >= min_regret:
            current = candidate
            accepted += 1
    # Pass 2: halve what still differs.
    for name in sorted(SPECS_BY_NAME):
        if name not in current or current[name] == base_values.get(name):
            continue
        spec = SPECS_BY_NAME[name]
        midpoint = spec.clamp((current[name] + base_values[name]) / 2.0)
        if midpoint == current[name]:
            continue
        candidate = clamp_values({**current, name: midpoint})
        if candidate == current:
            continue
        if evaluate(candidate) >= min_regret:
            current = candidate
            accepted += 1
    return current, accepted


def fuzz(
    victim: str = "generational",
    reference: str = "unified",
    seed: int = 42,
    scale: float = 64.0,
    rounds: int = 24,
    bases: tuple[str, ...] = ("word", "gcc"),
    min_regret: float = DEFAULT_MIN_REGRET,
    fractions: tuple[float, ...] = DEFAULT_FRACTIONS,
    max_counterexamples: int = 4,
) -> FuzzResult:
    """Search for workloads where *victim* loses to *reference*.

    Each round picks a base profile and a pipeline of one or two
    structured mutators, evaluates the mutant's regret at every
    capacity pressure point, and shrinks any candidate clearing
    *min_regret*.  Shrunk survivors are deduplicated (two rounds can
    shrink to the same point) and returned sorted by descending
    regret.

    Raises:
        ConfigError: on unknown contenders or base profiles, equal
            victim and reference, or a non-positive round count.
    """
    _resolve_contender(victim)
    _resolve_contender(reference)
    if victim == reference:
        raise ConfigError("victim and reference contenders must differ")
    if rounds < 1:
        raise ConfigError(f"fuzz rounds must be >= 1, got {rounds}")
    if min_regret <= 0:
        raise ConfigError(f"min_regret must be positive, got {min_regret}")
    if not bases:
        raise ConfigError("fuzz needs at least one base profile")
    base_profiles = [get_profile(name) for name in bases]

    rng = substream(seed, "scenarios.fuzz")
    mutator_names = sorted(MUTATORS)
    seen: set[tuple] = set()
    survivors: list[Counterexample] = []
    best_regret = float("-inf")
    candidates = 0

    for round_index in range(rounds):
        base = base_profiles[rng.randrange(len(base_profiles))]
        base_values = clamp_values(parameter_vector(base))
        applied: list[str] = []
        values = dict(base_values)
        for _ in range(rng.randint(1, 2)):
            name = mutator_names[rng.randrange(len(mutator_names))]
            applied.append(name)
            values = MUTATORS[name](values, rng)
        candidates += 1
        candidate = build_profile(
            base, values, name=f"fuzz-{victim}-r{round_index}"
        )
        fraction, regret, victim_miss, reference_miss = _worst_fraction(
            candidate, victim, reference, seed, scale, fractions
        )
        best_regret = max(best_regret, regret)
        if regret < min_regret:
            continue

        def evaluate(vector: dict[str, float]) -> float:
            shrunk = build_profile(base, vector, name=candidate.name)
            shrunk_regret, _, _ = regret_of(
                shrunk, victim, reference, seed, scale, fraction
            )
            return shrunk_regret

        shrunk_values, steps = shrink(values, base_values, evaluate, min_regret)
        key = tuple(sorted((k, round(v, 9)) for k, v in shrunk_values.items()))
        if key in seen:
            continue
        seen.add(key)
        final_regret, final_victim, final_reference = regret_of(
            build_profile(base, shrunk_values, name=candidate.name),
            victim,
            reference,
            seed,
            scale,
            fraction,
        )
        survivors.append(
            Counterexample(
                profile=build_profile(
                    base, shrunk_values, name=f"fuzz-{victim}-r{round_index}"
                ),
                victim=victim,
                reference=reference,
                capacity_fraction=fraction,
                regret=final_regret,
                victim_miss_rate=final_victim,
                reference_miss_rate=final_reference,
                seed=seed,
                scale=scale,
                mutators=tuple(applied),
                shrink_steps=steps,
            )
        )
        if len(survivors) >= max_counterexamples:
            break

    survivors.sort(key=lambda cx: (-cx.regret, cx.profile.name))
    return FuzzResult(
        counterexamples=tuple(survivors),
        rounds=rounds,
        candidates=candidates,
        best_regret=best_regret if candidates else 0.0,
        victim=victim,
        reference=reference,
        seed=seed,
        scale=scale,
        min_regret=min_regret,
    )
