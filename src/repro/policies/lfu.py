"""LFU local policy.

Least-frequently-used eviction with first-fit placement.  Not studied
in the paper, but a natural question about generational caches is
whether simple frequency counting in a single cache buys the same
protection the persistent cache provides; this policy answers it in
the comparison harness.  Frequency is counted while resident (counts
reset on eviction, like the probation counter), which keeps the policy
implementable with the same per-trace metadata as the paper's caches.
"""

from __future__ import annotations

from repro.errors import CacheFullError, TraceTooLargeError
from repro.policies.base import CachedTrace, CodeCache


class LFUCache(CodeCache):
    """Least-frequently-used eviction with first-fit placement."""

    policy_name = "lfu"

    # The victim scan sorts by access_count: hits are plain touches,
    # but the counters are read at eviction time, so the kernels must
    # keep maintaining them (no dead-store elision).
    reads_trace_counters = True

    def _allocate(self, trace: CachedTrace) -> tuple[int, list[int]]:
        size = trace.size
        if size > self.capacity:
            raise TraceTooLargeError(
                f"trace {trace.trace_id} ({size} B) exceeds cache "
                f"{self.name!r} capacity ({self.capacity} B)"
            )
        start = self.arena.first_fit(size)
        if start is not None:
            return start, []
        # Evict coldest-first until a contiguous hole fits; ties broken
        # by insertion age (older first) for determinism.
        victims_by_frequency = sorted(
            (t for t in self._traces.values() if not t.pinned),
            key=lambda t: (t.access_count, t.insert_time, t.trace_id),
        )
        evicted: list[int] = []
        freed: list[tuple[int, int]] = []
        for victim in victims_by_frequency:
            placement = self.arena.placement_of(victim.trace_id)
            evicted.append(victim.trace_id)
            freed.append((placement.start, placement.end))
            start = self._fit_with_freed(size, freed)
            if start is not None:
                return start, evicted
        raise CacheFullError(
            f"cache {self.name!r}: pinned traces prevent placing {size} B"
        )

    def _fit_with_freed(self, size: int, freed: list[tuple[int, int]]) -> int | None:
        """First-fit over current holes unioned with pending evictions."""
        ranges = self.arena.holes() + freed
        ranges.sort()
        merged: list[tuple[int, int]] = []
        for lo, hi in ranges:
            if merged and lo <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
            else:
                merged.append((lo, hi))
        for lo, hi in merged:
            if hi - lo >= size:
                return lo
        return None
