"""Pure circular (FIFO) buffer — the idealized policy of the authors'
prior work [12] that the pseudo-circular variant descends from.

It assumes no pinned traces ever appear; encountering one raises,
which is exactly the point: the paper argues a *pure* circular buffer
is unachievable in a real dynamic optimizer.  It is kept as a reference
implementation and as the oracle that the pseudo-circular policy must
match whenever nothing is pinned.
"""

from __future__ import annotations

from repro.errors import CacheFullError, TraceTooLargeError
from repro.policies.base import CachedTrace, CodeCache


class CircularCache(CodeCache):
    """Strict circular buffer; intolerant of pinned traces."""

    policy_name = "circular"

    def __init__(self, capacity: int, name: str = "cache") -> None:
        super().__init__(capacity, name)
        self._pointer = 0

    @property
    def pointer(self) -> int:
        """The current insertion/eviction offset."""
        return self._pointer

    def _allocate(self, trace: CachedTrace) -> tuple[int, list[int]]:
        size = trace.size
        if size > self.capacity:
            raise TraceTooLargeError(
                f"trace {trace.trace_id} ({size} B) exceeds cache "
                f"{self.name!r} capacity ({self.capacity} B)"
            )
        pointer = self._pointer
        if pointer + size > self.capacity:
            pointer = 0
        overlapping = self.arena.overlapping(pointer, pointer + size)
        for placement in overlapping:
            if self.get(placement.trace_id).pinned:
                raise CacheFullError(
                    f"pure circular cache {self.name!r} cannot evict "
                    f"pinned trace {placement.trace_id}"
                )
        return pointer, [p.trace_id for p in overlapping]

    def _after_insert(self, trace: CachedTrace, start: int) -> None:
        self._pointer = start + trace.size
        if self._pointer >= self.capacity:
            self._pointer = 0
