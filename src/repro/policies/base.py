"""The CodeCache interface shared by all local policies.

A code cache stores *traces* — variable-sized byte regions — in one
arena.  Subclasses implement :meth:`_allocate`, which chooses a
placement offset and the eviction sequence needed to make room.  The
base class implements everything policy-independent: the trace table,
pinning (undeletable traces, Section 4.2), program-forced removal
(unmapped modules, Section 3.4), and statistics hooks.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.cachesim.arena import Arena
from repro.errors import (
    DuplicateTraceError,
    InvariantViolation,
    UnknownTraceError,
)


@dataclass(slots=True)
class CachedTrace:
    """A trace resident in a code cache.

    Attributes:
        trace_id: Globally unique trace id.
        size: Size in bytes.
        module_id: Module the trace's code came from.
        insert_time: Virtual time of insertion into *this* cache.
        access_count: Accesses observed while resident in this cache
            (the probation cache's promotion counter).
        last_access: Virtual time of the most recent access.
        pinned: True while the trace is undeletable.
    """

    trace_id: int
    size: int
    module_id: int
    insert_time: int = 0
    access_count: int = 0
    last_access: int = 0
    pinned: bool = False


@dataclass(slots=True)
class InsertResult:
    """Outcome of one insertion.

    Attributes:
        inserted: The newly resident trace.
        evicted: Traces evicted to make room, in eviction order.
        flushed: True if the policy flushed the whole cache to make
            room (preemptive-flush policy); the flushed traces appear
            in :attr:`evicted`.
    """

    inserted: CachedTrace
    evicted: list[CachedTrace] = field(default_factory=list)
    flushed: bool = False


class CodeCache(abc.ABC):
    """One software code cache under a specific local policy."""

    #: Short policy name used in configs and reports.
    policy_name: str = "abstract"

    #: Whether the policy ever *reads* a resident trace's
    #: ``access_count`` / ``last_access`` fields (e.g. LFU's coldest-
    #: first victim scan).  The replay kernels treat counter updates on
    #: caches where nothing reads them as dead stores and elide them
    #: entirely; a policy that consults the counters must set this True
    #: so its cache is declared *live* in the manager's
    #: :class:`~repro.core.manager.KernelSpec` (or excluded from
    #: specialization altogether).
    reads_trace_counters: bool = False

    def __init__(self, capacity: int, name: str = "cache") -> None:
        self.name = name
        self.arena = Arena(capacity)
        self._traces: dict[int, CachedTrace] = {}
        # Live count of pinned residents; all pin-flag writes go
        # through pin()/unpin(), so the count lets hot paths skip the
        # per-victim pinned scan when nothing is pinned at all.
        self._pinned_count = 0
        # Policies that track recency (LRU, oracle) override
        # _after_touch; hoisting the hook lets record_hits skip a
        # million no-op calls per replay for the ones that don't.
        self._touch_hook = (
            self._after_touch
            if type(self)._after_touch is not CodeCache._after_touch
            else None
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Cache capacity in bytes."""
        return self.arena.capacity

    @property
    def used_bytes(self) -> int:
        """Bytes currently occupied."""
        return self.arena.used_bytes

    @property
    def n_traces(self) -> int:
        """Number of resident traces."""
        return len(self._traces)

    def __contains__(self, trace_id: int) -> bool:
        return trace_id in self._traces

    @property
    def plain_touch(self) -> bool:
        """True when touching a trace is exactly ``access_count +=
        count; last_access = time`` with no policy hook — the replay
        fast path then updates the trace record in place instead of
        calling :meth:`touch_resident`."""
        return self._touch_hook is None

    def get(self, trace_id: int) -> CachedTrace:
        """Return the resident trace record.

        Raises:
            UnknownTraceError: if not resident.
        """
        trace = self._traces.get(trace_id)
        if trace is None:
            raise UnknownTraceError(
                f"trace {trace_id} is not resident in cache {self.name!r}"
            )
        return trace

    def find(self, trace_id: int) -> CachedTrace | None:
        """Return the resident trace record, or None if not resident.

        Unlike :meth:`get` this tolerates asking about a trace that was
        already displaced — an insertion cascade can insert or promote a
        trace and evict it again before the effect stream is read."""
        return self._traces.get(trace_id)

    def traces(self) -> list[CachedTrace]:
        """All resident traces in arena address order."""
        return [self._traces[tid] for tid in self.arena.trace_ids()]

    def resident_map(self) -> dict[int, CachedTrace]:
        """The live trace table, keyed by trace id.

        This is the replay kernels' residency source: for a
        single-cache manager the table itself *is* the residency map,
        so the kernel probes it directly instead of maintaining a
        shadow copy from the effect stream.  Callers must treat the
        dict as read-only — residency changes go through
        :meth:`insert` / :meth:`remove` / :meth:`flush`.
        """
        return self._traces

    def fragmentation(self) -> float:
        """Current external fragmentation of the arena."""
        return self.arena.fragmentation()

    def traces_of_module(self, module_id: int) -> list[CachedTrace]:
        """Resident traces originating from *module_id*."""
        return [t for t in self._traces.values() if t.module_id == module_id]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(
        self,
        trace_id: int,
        size: int,
        module_id: int,
        time: int = 0,
    ) -> InsertResult:
        """Insert a trace, evicting as the policy dictates.

        Raises:
            DuplicateTraceError: if the trace is already resident.
            TraceTooLargeError: if it can never fit.
            CacheFullError: if pinned traces block every placement.
        """
        if trace_id in self._traces:
            raise DuplicateTraceError(
                f"trace {trace_id} already resident in cache {self.name!r}"
            )
        trace = CachedTrace(
            trace_id=trace_id,
            size=size,
            module_id=module_id,
            insert_time=time,
            last_access=time,
        )
        start, evicted_ids = self._allocate(trace)
        evicted = [self._drop(eid) for eid in evicted_ids]
        self.arena.place(trace_id, start, size)
        self._traces[trace_id] = trace
        self._after_insert(trace, start)
        return InsertResult(inserted=trace, evicted=evicted)

    def touch(self, trace_id: int, time: int, count: int = 1) -> CachedTrace:
        """Record *count* accesses to a resident trace at *time*."""
        trace = self.get(trace_id)
        trace.access_count += count
        trace.last_access = time
        self._after_touch(trace)
        return trace

    def touch_resident(self, trace_id: int, time: int, count: int) -> CachedTrace:
        """:meth:`touch` for callers that already know the trace is
        resident (the replay fast path) — skips the existence check, so
        a stale caller gets a bare ``KeyError`` instead of
        :class:`UnknownTraceError`."""
        trace = self._traces[trace_id]
        trace.access_count += count
        trace.last_access = time
        hook = self._touch_hook
        if hook is not None:
            hook(trace)
        return trace

    def record_hits(self, trace_id: int, time: int, count: int) -> tuple[()]:
        """The replay fast path's hit handler for caches whose hits
        never emit effects: :meth:`touch_resident` returning the
        (empty) effect stream instead of the trace."""
        trace = self._traces[trace_id]
        trace.access_count += count
        trace.last_access = time
        hook = self._touch_hook
        if hook is not None:
            hook(trace)
        return ()

    def remove(self, trace_id: int) -> CachedTrace:
        """Program-forced removal (unmapped module or an explicit
        promotion move).  Leaves a hole; ignores pinning because an
        unmapped trace *must* go (the paper notes such evictions
        inherently violate the circular policy)."""
        trace = self._drop(trace_id)
        self._after_remove(trace)
        return trace

    def remove_module(self, module_id: int) -> list[CachedTrace]:
        """Remove every trace of *module_id* (Section 3.4)."""
        victims = self.traces_of_module(module_id)
        return [self.remove(t.trace_id) for t in victims]

    def flush(self) -> list[CachedTrace]:
        """Remove all unpinned traces; returns them in address order."""
        victims = [t for t in self.traces() if not t.pinned]
        for trace in victims:
            self._drop(trace.trace_id)
            self._after_remove(trace)
        return victims

    def pin(self, trace_id: int) -> None:
        """Mark a trace undeletable (Section 4.2)."""
        trace = self.get(trace_id)
        if not trace.pinned:
            trace.pinned = True
            self._pinned_count += 1

    def unpin(self, trace_id: int) -> None:
        """Make a trace deletable again."""
        trace = self.get(trace_id)
        if trace.pinned:
            trace.pinned = False
            self._pinned_count -= 1

    # ------------------------------------------------------------------
    # Policy hooks
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def _allocate(self, trace: CachedTrace) -> tuple[int, list[int]]:
        """Choose a placement offset for *trace*.

        Returns:
            ``(start, evicted_ids)``: the offset to place at and the
            resident trace ids that must be evicted first, in eviction
            order.  The base class performs the evictions and the
            placement.
        """

    def _after_insert(self, trace: CachedTrace, start: int) -> None:
        """Hook called after a successful insertion."""

    def _after_touch(self, trace: CachedTrace) -> None:
        """Hook called after an access."""

    def _after_remove(self, trace: CachedTrace) -> None:
        """Hook called after an external (non-policy) removal."""

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _drop(self, trace_id: int) -> CachedTrace:
        """Remove a trace from the arena and the table (no hooks)."""
        trace = self.get(trace_id)
        self.arena.remove(trace_id)
        del self._traces[trace_id]
        if trace.pinned:
            self._pinned_count -= 1
        return trace

    def check_invariants(self) -> None:
        """Verify arena/table consistency (property tests, sanitizer).

        Raises:
            InvariantViolation: the arena is inconsistent, or the trace
                table disagrees with the arena's placements.
        """
        try:
            self.arena.check_invariants()
        except InvariantViolation as exc:
            raise InvariantViolation(
                exc.invariant,
                exc.message,
                cache=self.name,
                trace_id=exc.trace_id,
                context=exc.context,
            ) from exc
        resident = set(self.arena.trace_ids())
        table = set(self._traces)
        if resident != table:
            raise InvariantViolation(
                "cache-consistency",
                f"arena/table disagree: arena-only={sorted(resident - table)}, "
                f"table-only={sorted(table - resident)}",
                cache=self.name,
            )
        for trace_id, trace in self._traces.items():
            placement = self.arena.placement_of(trace_id)
            if placement.size != trace.size:
                raise InvariantViolation(
                    "cache-consistency",
                    f"placement size {placement.size} disagrees with trace "
                    f"record size {trace.size}",
                    cache=self.name,
                    trace_id=trace_id,
                )
        pinned = sum(1 for trace in self._traces.values() if trace.pinned)
        if pinned != self._pinned_count:
            raise InvariantViolation(
                "cache-consistency",
                f"pinned-count accounting is stale: {pinned} pinned "
                f"residents, counter reports {self._pinned_count}",
                cache=self.name,
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"{self.used_bytes}/{self.capacity} bytes, "
            f"{self.n_traces} traces)"
        )
