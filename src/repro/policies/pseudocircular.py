"""The paper's pseudo-circular local policy (Section 4.3).

From a distance the policy is a circular buffer: a single pointer marks
the next eviction/insertion point, new traces are placed there, and any
traces overlapping the placement window are evicted.  Two realities
bend the pure circle:

* **Undeletable traces** — when a pinned trace lies in the placement
  window, the pointer resets to just past it and the scan restarts.
* **Program-forced evictions** — unmapped modules punch holes anywhere;
  the policy deliberately does *not* chase those holes ("this approach
  complicates the cache management design, and may reduce the benefits
  of temporal locality"), it just keeps rotating.  An optional
  ``fill_holes`` flag enables the rejected hole-filling variant so the
  trade-off can be measured (see DESIGN.md ablations).
"""

from __future__ import annotations

from repro.errors import CacheFullError, DuplicateTraceError, TraceTooLargeError
from repro.policies.base import CachedTrace, CodeCache, InsertResult


class PseudoCircularCache(CodeCache):
    """Circular-buffer cache tolerating pinned traces and forced holes."""

    policy_name = "pseudo-circular"

    def __init__(
        self,
        capacity: int,
        name: str = "cache",
        fill_holes: bool = False,
    ) -> None:
        super().__init__(capacity, name)
        self._pointer = 0
        self.fill_holes = fill_holes
        # The fused insert below hand-inlines _allocate's steady state
        # and the pointer bump; a subclass overriding either hook gets
        # the general path so its overrides keep working.
        cls = type(self)
        self._fused_insert = (
            not fill_holes
            and cls._allocate is PseudoCircularCache._allocate
            and cls._after_insert is PseudoCircularCache._after_insert
        )

    @property
    def pointer(self) -> int:
        """The current insertion/eviction offset."""
        return self._pointer

    def insert(
        self,
        trace_id: int,
        size: int,
        module_id: int,
        time: int = 0,
    ) -> InsertResult:
        """The steady-state insertion, fused into one pass.

        With no pinned residents and hole-filling off, the placement
        window is exactly ``[pointer, pointer + size)`` (wrapped once
        if it would cross capacity) and every resident overlapping it
        is evicted — no reset loop can trigger, so the generic
        allocate / drop-each-victim / place pipeline collapses into a
        single :meth:`~repro.cachesim.arena.Arena.displace` call.
        Inserts dominate replay wall time at the paper's capacity
        pressure, which is why this path is worth the duplication; any
        pinned trace or configuration wrinkle defers to the general
        implementation, and the outcome is identical either way (the
        equivalence suite replays both against each other).
        """
        if self._pinned_count or not self._fused_insert:
            return super().insert(trace_id, size, module_id, time)
        traces = self._traces
        if trace_id in traces:
            raise DuplicateTraceError(
                f"trace {trace_id} already resident in cache {self.name!r}"
            )
        arena = self.arena
        capacity = arena.capacity
        if size > capacity:
            raise TraceTooLargeError(
                f"trace {trace_id} ({size} B) exceeds cache "
                f"{self.name!r} capacity ({capacity} B)"
            )
        pointer = self._pointer
        if pointer + size > capacity:
            pointer = 0
        victims = arena.displace(trace_id, pointer, size)
        trace = CachedTrace(trace_id, size, module_id, time, 0, time, False)
        traces[trace_id] = trace
        evicted = [traces.pop(v.trace_id) for v in victims] if victims else []
        pointer += size
        self._pointer = 0 if pointer >= capacity else pointer
        return InsertResult(inserted=trace, evicted=evicted)

    def _allocate(self, trace: CachedTrace) -> tuple[int, list[int]]:
        size = trace.size
        if size > self.capacity:
            raise TraceTooLargeError(
                f"trace {trace.trace_id} ({size} B) exceeds cache "
                f"{self.name!r} capacity ({self.capacity} B)"
            )
        self._placed_in_hole = False
        if self.fill_holes:
            start = self.arena.first_fit(size)
            if start is not None:
                self._placed_in_hole = True
                return start, []
        pointer = self._pointer
        wraps = 0
        resets = 0
        # Each pinned trace can cause at most one pointer reset per lap;
        # after two full laps without success nothing can ever fit.
        max_resets = 2 * (self.n_traces + 1)
        while True:
            if pointer + size > self.capacity:
                pointer = 0
                wraps += 1
                if wraps > 2:
                    raise CacheFullError(
                        f"cache {self.name!r}: no placement window of "
                        f"{size} B exists (pinned traces block the buffer)"
                    )
            window_end = pointer + size
            overlapping = self.arena.overlapping(pointer, window_end)
            traces = self._traces
            pinned = [p for p in overlapping if traces[p.trace_id].pinned]
            if pinned:
                # Reset directly after the *last* pinned trace in the
                # window and begin the eviction process again.
                pointer = max(p.end for p in pinned)
                resets += 1
                if resets > max_resets:
                    raise CacheFullError(
                        f"cache {self.name!r}: pinned traces prevent "
                        f"placing {size} B"
                    )
                continue
            return pointer, [p.trace_id for p in overlapping]

    _placed_in_hole = False

    def _after_insert(self, trace: CachedTrace, start: int) -> None:
        # In hole-filling mode the pointer only advances when the
        # placement came from the rotating scan, not from a hole.
        if self._placed_in_hole:
            return
        self._pointer = start + trace.size
        if self._pointer >= self.capacity:
            self._pointer = 0

    def reset_pointer(self, offset: int = 0) -> None:
        """Reposition the eviction pointer (used after a flush)."""
        if not 0 <= offset < self.capacity:
            raise ValueError(f"pointer offset {offset} out of range")
        self._pointer = offset
