"""The paper's pseudo-circular local policy (Section 4.3).

From a distance the policy is a circular buffer: a single pointer marks
the next eviction/insertion point, new traces are placed there, and any
traces overlapping the placement window are evicted.  Two realities
bend the pure circle:

* **Undeletable traces** — when a pinned trace lies in the placement
  window, the pointer resets to just past it and the scan restarts.
* **Program-forced evictions** — unmapped modules punch holes anywhere;
  the policy deliberately does *not* chase those holes ("this approach
  complicates the cache management design, and may reduce the benefits
  of temporal locality"), it just keeps rotating.  An optional
  ``fill_holes`` flag enables the rejected hole-filling variant so the
  trade-off can be measured (see DESIGN.md ablations).
"""

from __future__ import annotations

from repro.errors import CacheFullError, TraceTooLargeError
from repro.policies.base import CachedTrace, CodeCache


class PseudoCircularCache(CodeCache):
    """Circular-buffer cache tolerating pinned traces and forced holes."""

    policy_name = "pseudo-circular"

    def __init__(
        self,
        capacity: int,
        name: str = "cache",
        fill_holes: bool = False,
    ) -> None:
        super().__init__(capacity, name)
        self._pointer = 0
        self.fill_holes = fill_holes

    @property
    def pointer(self) -> int:
        """The current insertion/eviction offset."""
        return self._pointer

    def _allocate(self, trace: CachedTrace) -> tuple[int, list[int]]:
        size = trace.size
        if size > self.capacity:
            raise TraceTooLargeError(
                f"trace {trace.trace_id} ({size} B) exceeds cache "
                f"{self.name!r} capacity ({self.capacity} B)"
            )
        self._placed_in_hole = False
        if self.fill_holes:
            start = self.arena.first_fit(size)
            if start is not None:
                self._placed_in_hole = True
                return start, []
        pointer = self._pointer
        wraps = 0
        resets = 0
        # Each pinned trace can cause at most one pointer reset per lap;
        # after two full laps without success nothing can ever fit.
        max_resets = 2 * (self.n_traces + 1)
        while True:
            if pointer + size > self.capacity:
                pointer = 0
                wraps += 1
                if wraps > 2:
                    raise CacheFullError(
                        f"cache {self.name!r}: no placement window of "
                        f"{size} B exists (pinned traces block the buffer)"
                    )
            window_end = pointer + size
            overlapping = self.arena.overlapping(pointer, window_end)
            traces = self._traces
            pinned = [p for p in overlapping if traces[p.trace_id].pinned]
            if pinned:
                # Reset directly after the *last* pinned trace in the
                # window and begin the eviction process again.
                pointer = max(p.end for p in pinned)
                resets += 1
                if resets > max_resets:
                    raise CacheFullError(
                        f"cache {self.name!r}: pinned traces prevent "
                        f"placing {size} B"
                    )
                continue
            return pointer, [p.trace_id for p in overlapping]

    _placed_in_hole = False

    def _after_insert(self, trace: CachedTrace, start: int) -> None:
        # In hole-filling mode the pointer only advances when the
        # placement came from the rotating scan, not from a hole.
        if self._placed_in_hole:
            return
        self._pointer = start + trace.size
        if self._pointer >= self.capacity:
            self._pointer = 0

    def reset_pointer(self, offset: int = 0) -> None:
        """Reposition the eviction pointer (used after a flush)."""
        if not 0 <= offset < self.capacity:
            raise ValueError(f"pointer offset {offset} out of range")
        self._pointer = offset
