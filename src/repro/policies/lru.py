"""LRU local policy.

The authors' prior work [12] compared LRU against circular management
and found the circular buffer superior once overhead and fragmentation
were accounted for.  We implement LRU with first-fit placement: evict
least-recently-used unpinned traces until a contiguous hole fits the
incoming trace.  Unlike the circular policies, LRU leaves scattered
holes, which is the fragmentation cost the paper highlights.
"""

from __future__ import annotations

from repro.errors import CacheFullError, TraceTooLargeError
from repro.policies.base import CachedTrace, CodeCache


class LRUCache(CodeCache):
    """Least-recently-used eviction with first-fit placement."""

    policy_name = "lru"

    def __init__(self, capacity: int, name: str = "cache") -> None:
        super().__init__(capacity, name)
        # Recency list: dict preserves insertion order; re-touching a
        # trace moves it to the back.  Front = least recently used.
        self._recency: dict[int, None] = {}

    def _allocate(self, trace: CachedTrace) -> tuple[int, list[int]]:
        size = trace.size
        if size > self.capacity:
            raise TraceTooLargeError(
                f"trace {trace.trace_id} ({size} B) exceeds cache "
                f"{self.name!r} capacity ({self.capacity} B)"
            )
        start = self.arena.first_fit(size)
        if start is not None:
            return start, []
        evicted: list[int] = []
        # Evict in LRU order on a scratch view until a hole fits.  We
        # must simulate removals without mutating the arena, so work on
        # a copy of the hole list merged with victim ranges.
        victims_by_recency = [
            tid for tid in self._recency if not self.get(tid).pinned
        ]
        freed: list[tuple[int, int]] = []
        for trace_id in victims_by_recency:
            placement = self.arena.placement_of(trace_id)
            evicted.append(trace_id)
            freed.append((placement.start, placement.end))
            start = self._fit_with_freed(size, freed)
            if start is not None:
                return start, evicted
        raise CacheFullError(
            f"cache {self.name!r}: pinned traces prevent placing {size} B"
        )

    def _fit_with_freed(self, size: int, freed: list[tuple[int, int]]) -> int | None:
        """First-fit search over current holes unioned with the ranges
        in *freed* (pending evictions)."""
        boundaries = self.arena.holes() + freed
        boundaries.sort()
        merged: list[tuple[int, int]] = []
        for start, end in boundaries:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        for start, end in merged:
            if end - start >= size:
                return start
        return None

    def _after_insert(self, trace: CachedTrace, start: int) -> None:
        self._recency[trace.trace_id] = None

    def _after_touch(self, trace: CachedTrace) -> None:
        # Move to most-recently-used position.
        self._recency.pop(trace.trace_id, None)
        self._recency[trace.trace_id] = None

    def _after_remove(self, trace: CachedTrace) -> None:
        self._recency.pop(trace.trace_id, None)

    def _drop(self, trace_id: int) -> CachedTrace:
        trace = super()._drop(trace_id)
        self._recency.pop(trace_id, None)
        return trace
