"""Local (single-cache) management policies — Section 4 of the paper.

Each policy is a :class:`~repro.policies.base.CodeCache` subclass that
owns one arena and decides placement and eviction.  The paper's own
policy is :class:`~repro.policies.pseudocircular.PseudoCircularCache`;
the others are the reference points it was designed against.
"""

from repro.policies.base import CachedTrace, CodeCache, InsertResult
from repro.policies.pseudocircular import PseudoCircularCache
from repro.policies.circular import CircularCache
from repro.policies.lru import LRUCache
from repro.policies.lfu import LFUCache
from repro.policies.flush import PreemptiveFlushCache
from repro.policies.unbounded import UnboundedCache
from repro.policies.oracle import OracleCache

#: Registry of policy classes by their short names, used by configs
#: and the CLI.
POLICIES: dict[str, type[CodeCache]] = {
    PseudoCircularCache.policy_name: PseudoCircularCache,
    CircularCache.policy_name: CircularCache,
    LRUCache.policy_name: LRUCache,
    LFUCache.policy_name: LFUCache,
    PreemptiveFlushCache.policy_name: PreemptiveFlushCache,
    UnboundedCache.policy_name: UnboundedCache,
    OracleCache.policy_name: OracleCache,
}

__all__ = [
    "POLICIES",
    "CachedTrace",
    "CircularCache",
    "CodeCache",
    "InsertResult",
    "LFUCache",
    "LRUCache",
    "OracleCache",
    "PreemptiveFlushCache",
    "PseudoCircularCache",
    "UnboundedCache",
]
