"""Preemptive-flush local policy (Dynamo-style, Section 2).

Dynamo flushed its entire code cache when it detected a program phase
change — in practice, when trace creation pressure exceeded what the
cache could absorb.  We model the consequence the paper cares about:
the cache fills append-style, and when a new trace does not fit, the
*whole* cache is flushed and filling restarts.  Every flushed trace
must be regenerated if re-executed, which is the cost Dynamo gambled
the phase change would amortize.
"""

from __future__ import annotations

from repro.errors import CacheFullError, TraceTooLargeError
from repro.policies.base import CachedTrace, CodeCache, InsertResult


class PreemptiveFlushCache(CodeCache):
    """Append-only placement; flushes everything when full."""

    policy_name = "preemptive-flush"

    def __init__(self, capacity: int, name: str = "cache") -> None:
        super().__init__(capacity, name)
        self.n_flushes = 0

    def insert(
        self,
        trace_id: int,
        size: int,
        module_id: int,
        time: int = 0,
    ) -> InsertResult:
        result = super().insert(trace_id, size, module_id, time)
        if self._flush_pending:
            result.flushed = True
        return result

    def _allocate(self, trace: CachedTrace) -> tuple[int, list[int]]:
        self._flush_pending = False
        size = trace.size
        if size > self.capacity:
            raise TraceTooLargeError(
                f"trace {trace.trace_id} ({size} B) exceeds cache "
                f"{self.name!r} capacity ({self.capacity} B)"
            )
        start = self.arena.first_fit(size)
        if start is not None:
            return start, []
        # Phase-change heuristic fired: flush all unpinned traces.
        self._flush_pending = True
        self.n_flushes += 1
        victims = [t.trace_id for t in self.traces() if not t.pinned]
        # The allocation search below must account for the flush, so
        # compute the fit as if the victims were already gone.
        survivors = [
            self.arena.placement_of(t.trace_id)
            for t in self.traces()
            if t.pinned
        ]
        survivors.sort(key=lambda p: p.start)
        cursor = 0
        for placement in survivors:
            if placement.start - cursor >= size:
                return cursor, victims
            cursor = placement.end
        if self.capacity - cursor >= size:
            return cursor, victims
        raise CacheFullError(
            f"cache {self.name!r}: pinned traces prevent placing {size} B "
            "even after a full flush"
        )

    _flush_pending = False
