"""Belady-style oracle local policy.

Evicts the resident trace whose *next use* is farthest in the future
(never-used-again first), with first-fit placement.  Unimplementable
in a real dynamic optimizer — it requires the future — but it bounds
what any local policy could achieve on a given log, so the headroom
experiment can report how much of the FIFO→optimal gap the
generational hierarchy closes.

For variable-size contiguous allocation true Belady is NP-hard; this
is the standard greedy approximation: evict farthest-next-use
candidates until a contiguous hole fits.

The oracle is fed the access schedule up front
(:meth:`OracleCache.load_schedule`), typically extracted from a trace
log with :func:`access_schedule`.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.errors import CacheFullError, TraceTooLargeError
from repro.policies.base import CachedTrace, CodeCache
from repro.tracelog.records import TraceAccess, TraceLog

#: Sentinel "never used again" distance.
NEVER = float("inf")


def access_schedule(log: TraceLog) -> dict[int, list[int]]:
    """Extract each trace's sorted access times from a log."""
    schedule: dict[int, list[int]] = {}
    for record in log.records:
        if isinstance(record, TraceAccess):
            schedule.setdefault(record.trace_id, []).append(record.time)
    return schedule


class OracleCache(CodeCache):
    """Farthest-next-use eviction with first-fit placement."""

    policy_name = "oracle"

    # _after_touch feeds last_access into the oracle clock.
    reads_trace_counters = True

    def __init__(self, capacity: int, name: str = "cache") -> None:
        super().__init__(capacity, name)
        self._schedule: dict[int, list[int]] = {}
        self._now = 0

    def load_schedule(self, schedule: dict[int, list[int]]) -> None:
        """Install the future access times per trace (sorted)."""
        self._schedule = schedule

    def observe_time(self, time: int) -> None:
        """Advance the oracle's notion of 'now' (the simulator calls
        this through the manager on every access/insert)."""
        if time > self._now:
            self._now = time

    def next_use(self, trace_id: int) -> float:
        """Time of the next access to *trace_id* strictly after now."""
        times = self._schedule.get(trace_id)
        if not times:
            return NEVER
        index = bisect_right(times, self._now)
        if index >= len(times):
            return NEVER
        return float(times[index])

    def _allocate(self, trace: CachedTrace) -> tuple[int, list[int]]:
        size = trace.size
        if size > self.capacity:
            raise TraceTooLargeError(
                f"trace {trace.trace_id} ({size} B) exceeds cache "
                f"{self.name!r} capacity ({self.capacity} B)"
            )
        start = self.arena.first_fit(size)
        if start is not None:
            return start, []
        candidates = sorted(
            (t for t in self._traces.values() if not t.pinned),
            key=lambda t: (-self.next_use(t.trace_id), t.trace_id),
        )
        evicted: list[int] = []
        freed: list[tuple[int, int]] = []
        for victim in candidates:
            placement = self.arena.placement_of(victim.trace_id)
            evicted.append(victim.trace_id)
            freed.append((placement.start, placement.end))
            start = self._fit_with_freed(size, freed)
            if start is not None:
                return start, evicted
        raise CacheFullError(
            f"cache {self.name!r}: pinned traces prevent placing {size} B"
        )

    def _fit_with_freed(self, size: int, freed: list[tuple[int, int]]) -> int | None:
        ranges = self.arena.holes() + freed
        ranges.sort()
        merged: list[tuple[int, int]] = []
        for lo, hi in ranges:
            if merged and lo <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
            else:
                merged.append((lo, hi))
        for lo, hi in merged:
            if hi - lo >= size:
                return lo
        return None

    def _after_insert(self, trace: CachedTrace, start: int) -> None:
        self.observe_time(trace.insert_time)

    def _after_touch(self, trace: CachedTrace) -> None:
        self.observe_time(trace.last_access)
