"""Unbounded code cache — DynamoRIO's default (Section 2).

Never evicts for capacity; simply grows.  The high-water mark of such a
cache is the paper's ``maxCache`` (Figure 1), which sizes every bounded
experiment (the unified baseline is ``0.5 * maxCache``).  Internally we
give the arena a huge fixed span and bump-allocate; holes left by
forced (unmap) deletions are never reused, so the high-water mark
equals the total bytes of traces ever generated — exactly the paper's
definition of the unbounded cache size.
"""

from __future__ import annotations

from repro.policies.base import CachedTrace, CodeCache

#: Practically-infinite arena span (1 TiB of virtual cache space).
_UNBOUNDED_SPAN = 1 << 40


class UnboundedCache(CodeCache):
    """A cache that always has room."""

    policy_name = "unbounded"

    def __init__(self, capacity: int = _UNBOUNDED_SPAN, name: str = "cache") -> None:
        super().__init__(capacity, name)
        self._bump = 0
        self.high_water_mark = 0

    def _allocate(self, trace: CachedTrace) -> tuple[int, list[int]]:
        start = self._bump
        return start, []

    def _after_insert(self, trace: CachedTrace, start: int) -> None:
        self._bump = max(self._bump, start + trace.size)
        self.high_water_mark = max(self.high_water_mark, self._bump)
