"""Profiling hooks for experiment runs.

``repro-gencache profile <experiment>`` runs one experiment under
:mod:`cProfile` and emits a machine-readable timing report:

* wall-clock split into a **workloads** phase (synthesizing/compiling
  the benchmark logs, or loading them from the artifact store) and an
  **experiment** phase (replay + table assembly);
* deltas of the fast-path counters (how many replays took the compiled
  loop vs the object path) and the artifact-store counters — a warm
  store shows ``logs_synthesized == 0``, which is the invariant the
  perf-smoke CI job asserts;
* the top functions by cumulative time, plus the full ``.prof`` dump
  for ``snakeviz``/``pstats`` spelunking.
"""

from __future__ import annotations

import cProfile
import pstats
import time
from pathlib import Path

from repro.fastpath.artifacts import ARTIFACT_TOTALS
from repro.fastpath.replay import FASTPATH_TOTALS


def _delta(before: dict, after: dict) -> dict:
    return {key: after[key] - before[key] for key in after}


def _top_functions(profiler: cProfile.Profile, top: int) -> list[dict]:
    """The *top* functions by cumulative time, as plain dicts."""
    stats = pstats.Stats(profiler)
    rows = []
    for (filename, line, name), (cc, nc, tt, ct, _callers) in stats.stats.items():
        rows.append(
            {
                "function": f"{filename}:{line}({name})",
                "ncalls": nc,
                "tottime": round(tt, 6),
                "cumtime": round(ct, 6),
            }
        )
    rows.sort(key=lambda row: row["cumtime"], reverse=True)
    return rows[:top]


def profile_experiment(
    experiment_id: str,
    seed: int = 42,
    scale_multiplier: float = 1.0,
    subset: list[str] | None = None,
    sweep_benchmark: str = "word",
    top: int = 15,
    profile_path: str | Path | None = None,
) -> dict:
    """Run one experiment under cProfile; return the timing report."""
    from repro.experiments.dataset import WorkloadDataset
    from repro.experiments.runner import run_all

    fast_before = dict(FASTPATH_TOTALS)
    artifacts_before = dict(ARTIFACT_TOTALS)
    profiler = cProfile.Profile()

    profiler.enable()
    t0 = time.perf_counter()
    # Phase 1: materialize every compiled log the experiment will
    # replay (straight from the artifact store when warm).
    dataset = WorkloadDataset(
        seed=seed, scale_multiplier=scale_multiplier, subset=subset
    )
    if experiment_id in ("sweep", "capacity"):
        bench = sweep_benchmark
        if subset and bench not in subset:
            bench = subset[0]
        names = [bench]
    elif experiment_id in ("table-1", "table-2"):
        names = []
    else:
        names = dataset.names
    for name in names:
        dataset.compiled(name)
    t1 = time.perf_counter()
    # Phase 2: the experiment itself (its own dataset resolves the
    # same artifacts, now warm even on a previously cold store).
    run_all(
        seed=seed,
        scale_multiplier=scale_multiplier,
        subset=subset,
        experiment_ids=(experiment_id,),
        sweep_benchmark=sweep_benchmark,
    )
    t2 = time.perf_counter()
    profiler.disable()

    if profile_path is not None:
        profiler.dump_stats(str(profile_path))
    return {
        "experiment": experiment_id,
        "seed": seed,
        "scale_multiplier": scale_multiplier,
        "subset": sorted(subset) if subset else None,
        "wall_seconds": round(t2 - t0, 6),
        "phases": {
            "workloads": round(t1 - t0, 6),
            "experiment": round(t2 - t1, 6),
        },
        "fastpath": _delta(fast_before, FASTPATH_TOTALS),
        "artifacts": _delta(artifacts_before, ARTIFACT_TOTALS),
        "top_functions": _top_functions(profiler, top),
    }
