"""Policy-specialized replay kernels (speculate / commit / abort).

The batched loop (:mod:`repro.fastpath.replay`) still pays per-record
opcode dispatch, a residency probe, and two counter writes per access
even when the policy and config make the outcome statically known.
This module dogfoods the paper's own thesis — compile the hot
interpreted path into specialized code with guarded assumptions — onto
the replay loop itself:

* **Partial evaluation.**  A manager that can be driven this way
  publishes a :class:`~repro.core.manager.KernelSpec` via
  :meth:`~repro.core.manager.CacheManager.replay_kernel_spec`; the
  specializer folds its shape — cache roster, promotion mode,
  promotion threshold — into one of two executors, so the kernel body
  contains no policy branches at all.  Cost constants are hoisted the
  same way the batched loop hoists them.  Partial evaluation includes
  *dead-store elimination*: per-trace ``access_count``/``last_access``
  updates on caches the spec does not declare in
  ``live_counter_caches`` are provably never read, so committed and
  scalar hits alike skip them outright.
* **Hit-streak run-length batching.**  A one-time, policy-independent
  pass over the compiled log collapses every maximal run of access
  records into one *streak step*, precomputing the collapsed
  ``(trace_id, total_count, last_time)`` table, the distinct-id guard
  set, and the run's total hit count — and, for runs longer than
  :data:`CHUNK_RECORDS`, the same tables per fixed-size *chunk*.
  Plain hits cannot change residency, so a single guard pass proves
  the whole run; a committed run is retired with one bulk touch of
  the live-counter entries (the manager's
  :meth:`~repro.core.manager.CacheManager.touch_streak` hook) and a
  single hit-counter add — no per-record dispatch, unpacking, or
  accounting.
* **Guard / commit / abort.**  Each commit is guarded: every collapsed
  entry must be resident, and (under on-hit promotion) a probation
  entry must have threshold headroom left and so provably not promote.
  Guards run before any mutation, so a failed guard is a *side exit*:
  the run retries chunk by chunk, and a chunk whose guard fails falls
  back to the scalar loop at its precise start index with
  bit-identical state — one conflict miss costs at most one chunk of
  scalar replay, never the whole run.  Structural guard failures —
  the plan not matching the log, the manager not matching its spec, or
  the testing-only :func:`set_abort_fuzz` knob — are *aborts*:
  speculation is disabled and the remainder of the log replays on the
  scalar (batched-loop-equivalent) semantics, or, for prologue aborts,
  on the actual batched loop.
* **Vectorized columnar variant.**  The residency half of a guard
  collapses to one C-speed ``dict.keys() >= frozenset`` superset test
  over the precomputed distinct-id set, and the entry gather to one
  ``map`` over the id column — stdlib ``array``/``frozenset``
  machinery only.  For a single dead-counter cache a committed run is
  then *just* that superset test plus one integer add.  Toggle with
  ``REPRO_FASTPATH_VECTOR=0`` or :func:`set_vectorized`, which pins
  the per-entry scalar probe guard instead.

Plans are memoized twice: in-process on the compiled log itself, and
on disk in :mod:`repro.fastpath.artifacts` under a content address
covering the log's column fingerprint, the plan version, and this
module's source bytes.  The *policy/config* half of the
specialization — binding a plan to a concrete manager — is a handful
of dict lookups, so only the log-shaped half is worth storing; the
spec is re-validated against the live manager on every replay (a
mismatch is a structural abort).

Float equivalence holds for the same reason it does on the batched
loop: a committed run or chunk consists purely of plain hits, which
charge nothing, and every path that *can* charge (misses, creations,
evictions, promotions) runs through the same scalar code in the same
order as the object path.  ``tests/fastpath`` pins this down per
policy and per generational config.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from repro.core.effects import Evicted, EvictionReason, Inserted
from repro.errors import LogFormatError
from repro.fastpath.compiled import (
    OP_ACCESS,
    OP_CREATE,
    OP_END,
    OP_PIN,
    OP_UNMAP,
    OP_UNPIN,
    CompiledTraceLog,
)
from repro.fastpath.replay import FASTPATH_TOTALS, kernels_enabled

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cachesim.simulator import CacheSimulator

#: Bumped whenever the plan layout or its semantics change — part of
#: the artifact content address, so stale on-disk plans can never load.
PLAN_VERSION = 2

#: Step kinds in a plan.
KIND_STREAK = 0
KIND_SCALAR = 1

#: Access records per fallback chunk.  When a whole-run guard fails,
#: the run retries in chunks of this size, so one conflict miss
#: de-optimizes at most this many records.  Eight keeps the paper
#: workloads' miss-adjacent records mostly inside committed chunks
#: while the per-chunk guard stays cheap.
CHUNK_RECORDS = 8

#: ``REPRO_FASTPATH_VECTOR=0`` pins the scalar-guard kernels — the
#: benchmark A/B switch isolating the vectorized tier's contribution.
_VECTOR = os.environ.get("REPRO_FASTPATH_VECTOR", "1").lower() not in (
    "0",
    "off",
    "no",
    "false",
)

#: Testing-only: force a structural abort after N committed runs.
_ABORT_AFTER: int | None = None


def set_vectorized(enabled: bool) -> None:
    """Allow or pin out the vectorized guards."""
    global _VECTOR
    _VECTOR = bool(enabled)


def vectorized_enabled() -> bool:
    """Whether the vectorized guards may be selected."""
    return _VECTOR


def set_abort_fuzz(after_commits: int | None) -> None:
    """Force a guard abort after *after_commits* committed runs in
    each subsequent kernel replay (None disables).  Testing hook for
    the mid-batch abort-resume path; never set in production code."""
    global _ABORT_AFTER
    _ABORT_AFTER = after_commits


class KernelPlan:
    """The log-shaped half of a specialization, policy-independent.

    ``steps`` is a list of tuples, one per plan step:

    * ``(KIND_STREAK, start, end, items, tids, keyset, total_hits,
      chunks)`` — one maximal run of access records.  ``items`` is the
      collapsed ``(trace_id, total_count, last_time)`` table in
      last-occurrence order, ``tids``/``keyset`` the parallel
      distinct-id list and frozenset for the guards, ``total_hits``
      the precomputed hit count a commit retires.  ``chunks`` holds
      the same shape per :data:`CHUNK_RECORDS`-sized window as
      ``(c_start, c_end, items, tids, keyset, hits)`` tuples — the
      retry ladder a failed run guard descends — and is empty for
      single-chunk runs.
    * ``(KIND_SCALAR, start, end, rows)`` — a run of non-access
      records; ``rows`` is the pre-unpacked ``(op, time, trace_id,
      size, module_id)`` tuple list, so replaying them never touches
      the packed columns.

    Steps cover ``[0, n_records)`` up to (and including) the first
    end-of-log record, mirroring the replay loops' early exit.
    """

    __slots__ = ("n_records", "steps")

    def __init__(self, n_records: int, steps: list) -> None:
        self.n_records = n_records
        self.steps = steps


def _collapse(tids, times, reps, start, end):
    """Collapse ``[start, end)`` access records into the last-
    occurrence-ordered ``(trace_id, total, last_time)`` table and the
    window's total hit count."""
    collapsed: dict[int, tuple[int, int]] = {}
    pop = collapsed.pop
    hits = 0
    for k in range(start, end):
        tid = tids[k]
        rep = reps[k]
        hits += rep
        prev = pop(tid, None)
        # pop + reinsert keeps last-occurrence order, so a committed
        # entry's last_access lands on the right record's timestamp.
        collapsed[tid] = (rep if prev is None else prev[0] + rep, times[k])
    items = [(tid, total, last) for tid, (total, last) in collapsed.items()]
    return items, hits


def _chunk_windows(tids, times, reps, start, end):
    """The per-chunk retry ladder for a run spanning ``[start, end)``:
    empty when the run fits one chunk (the run guard already *is* the
    chunk guard)."""
    if end - start <= CHUNK_RECORDS:
        return ()
    chunks = []
    for c0 in range(start, end, CHUNK_RECORDS):
        c1 = min(end, c0 + CHUNK_RECORDS)
        items, hits = _collapse(tids, times, reps, c0, c1)
        ctids = [item[0] for item in items]
        chunks.append((c0, c1, items, ctids, frozenset(ctids), hits))
    return chunks


def streak_step(start, end, items, total_hits, chunks=()):
    """Assemble one streak step (shared by the builder and the
    artifact loader, so the derived guard sets are built in one
    place)."""
    tids = [item[0] for item in items]
    return (
        KIND_STREAK, start, end, items, tids, frozenset(tids), total_hits,
        chunks,
    )


def build_plan(compiled: CompiledTraceLog) -> KernelPlan:
    """Collapse *compiled* into streak runs (with their chunk retry
    ladders) and scalar ranges."""
    ops = compiled.op.tolist()
    times = compiled.time.tolist()
    tids = compiled.trace_id.tolist()
    sizes = compiled.size.tolist()
    modules = compiled.module.tolist()
    reps = compiled.repeat.tolist()
    steps: list = []
    n = len(ops)
    i = 0
    while i < n:
        if ops[i] == OP_ACCESS:
            j = i
            while j < n and ops[j] == OP_ACCESS:
                j += 1
            items, total_hits = _collapse(tids, times, reps, i, j)
            steps.append(
                streak_step(
                    i, j, items, total_hits,
                    _chunk_windows(tids, times, reps, i, j),
                )
            )
            i = j
        else:
            j = i
            ended = False
            while j < n:
                op = ops[j]
                if op == OP_ACCESS:
                    break
                j += 1
                if op == OP_END:
                    ended = True
                    break
            rows = list(
                zip(ops[i:j], times[i:j], tids[i:j], sizes[i:j], modules[i:j])
            )
            steps.append((KIND_SCALAR, i, j, rows))
            if ended:
                break
            i = j
    return KernelPlan(n_records=n, steps=steps)


def prepare_plan(compiled: CompiledTraceLog) -> KernelPlan:
    """The memoized plan for *compiled*.

    Checks the in-process memo slot, then the artifact store (keyed on
    the column fingerprint), then builds — benchmarks call this
    directly to measure specialization/memoization time apart from
    replay time.
    """
    n = len(compiled.op)
    cached = compiled._plan
    if cached is not None and cached[0] == n:
        return cached[1]
    from repro.fastpath import artifacts

    store = artifacts.get_cache()
    if store is None:
        plan = build_plan(compiled)
        FASTPATH_TOTALS["plans_built"] += 1
    else:
        built = []

        def build() -> KernelPlan:
            built.append(True)
            return build_plan(compiled)

        plan = store.kernel_plan(compiled, build)
        if built:
            FASTPATH_TOTALS["plans_built"] += 1
        else:
            FASTPATH_TOTALS["plans_loaded"] += 1
    compiled._plan = (n, plan)
    return plan


def replay_specialized(sim: CacheSimulator, compiled: CompiledTraceLog) -> bool:
    """Replay *compiled* through a policy-specialized kernel.

    Returns False — leaving *sim* untouched, so the caller falls back
    to the batched loop — when kernels are pinned off, the manager
    publishes no spec, or a structural prologue guard fails.
    """
    if not kernels_enabled():
        return False
    manager = sim.manager
    spec = manager.replay_kernel_spec()
    if spec is None:
        return False
    plan = prepare_plan(compiled)
    names = tuple(cache.name for cache in manager.caches())
    live = spec.live_counter_caches
    # Prologue structural guards: the plan must describe this exact
    # log and the spec this exact manager (and a shape the executors
    # were built for: at most one live-counter cache, and a guarded
    # cache that is itself live — its counters feed the threshold
    # guard).  A mismatch is an abort — the replay resumes (from
    # record zero, nothing has run) on the batched loop.
    if (
        plan.n_records != len(compiled.op)
        or names != spec.cache_names
        or len(live) > 1
        or any(name not in names for name in live)
        or (
            spec.guarded_cache is not None
            and (
                spec.promotion_threshold is None
                or live != (spec.guarded_cache,)
            )
        )
    ):
        FASTPATH_TOTALS["guard_aborts"] += 1
        return False
    if spec.kind == "single" and len(names) == 1 and spec.guarded_cache is None:
        _exec_single(sim, compiled, plan, _VECTOR, bool(live))
    elif spec.kind == "multi":
        _exec_multi(sim, compiled, plan, spec, _VECTOR)
    else:
        FASTPATH_TOTALS["guard_aborts"] += 1
        return False
    return True


def _exec_single(
    sim: CacheSimulator,
    compiled: CompiledTraceLog,
    plan: KernelPlan,
    vectorized: bool,
    live: bool,
) -> None:
    """The single-cache kernel: the cache's own trace table is the
    residency map, and no hit can ever emit effects.  With dead
    counters (*live* False — nothing reads the per-trace counters) a
    committed run is one residency guard plus one hit-counter add, and
    even scalar hits reduce to a membership probe."""
    manager = sim.manager
    account = sim.account
    stats = sim.stats
    touch_streak = manager.touch_streak
    pin = manager.pin
    unpin = manager.unpin
    unmap = manager.unmap_module
    if account is not None:
        model = account.model
        ev_per, ev_base = model.eviction_per_byte, model.eviction_base
        pr_per, pr_base = model.promotion_per_byte, model.promotion_base
        cs2 = 2 * model.context_switch
        gen_scale = model.generation_scale
        gen_exp = model.generation_exponent

    cache = manager.caches()[0]
    cache_name = cache.name
    cache_insert = cache.insert
    table = cache.resident_map()
    table_keys = table.keys()
    getter = table.__getitem__

    known: dict[int, tuple[int, int]] = {}
    kget = known.get
    pending_pins: set[int] = set()

    hits = misses = creations = 0
    evictions = unmap_evictions = flush_evictions = 0
    evicted_bytes = 0

    unmap_reason = EvictionReason.UNMAP
    flush_reason = EvictionReason.FLUSH

    def fold(effects) -> None:
        # Unmap effects only — residency lives in the cache's own
        # table, so folding is pure counter updates and effect
        # pricing, in _absorb order.
        nonlocal evictions, unmap_evictions, flush_evictions, evicted_bytes
        for effect in effects:
            if type(effect) is Evicted:
                reason = effect.reason
                if reason is unmap_reason:
                    unmap_evictions += 1
                elif reason is flush_reason:
                    flush_evictions += 1
                else:
                    evictions += 1
                evicted_bytes += effect.size
                if account is not None:
                    account.evictions += ev_per * effect.size + ev_base

    def charged_insert(trace_id: int, size: int, module_id: int, time: int):
        # Partial evaluation of the manager's insert wrapper: with one
        # cache the Inserted/Evicted effect records carry no residency
        # information the kernel needs, so it prices the creation and
        # the victims straight off the InsertResult and never builds
        # them.  Accumulation order per account field matches
        # charge_trace_creation + charge_effects exactly.
        nonlocal evictions, flush_evictions, evicted_bytes
        if account is not None:
            account.context_switches += cs2
            account.generation += gen_scale * size**gen_exp
            account.promotions += pr_per * size + pr_base
        result = cache_insert(trace_id, size, module_id, time)
        victims = result.evicted
        if victims:
            # ``flushed`` is only ever set by the preemptive-flush
            # policy, so it alone classifies FLUSH vs CAPACITY.
            if result.flushed:
                flush_evictions += len(victims)
            else:
                evictions += len(victims)
            for victim in victims:
                evicted_bytes += victim.size
                if account is not None:
                    account.evictions += ev_per * victim.size + ev_base

    time_col = compiled.time
    tid_col = compiled.trace_id
    repeat_col = compiled.repeat

    def scalar_range(a: int, b: int) -> None:
        # The de-optimized path: per-record access replay for
        # ``[a, b)``, bit-identical to the batched loop's access arm.
        nonlocal hits, misses
        rows = zip(
            tid_col[a:b].tolist(),
            time_col[a:b].tolist(),
            repeat_col[a:b].tolist(),
        )
        for trace_id, time, repeat in rows:
            if trace_id in table:
                if live:
                    trace = table[trace_id]
                    trace.access_count += repeat
                    trace.last_access = time
                hits += repeat
            else:
                info = kget(trace_id)
                if info is None:
                    raise LogFormatError(
                        f"access to trace {trace_id} before its creation"
                    )
                size, module_id = info
                misses += 1
                charged_insert(trace_id, size, module_id, time)
                if trace_id in pending_pins:
                    pin(trace_id)
                remaining = repeat - 1
                if remaining > 0:
                    if trace_id in table:
                        if live:
                            trace = table[trace_id]
                            trace.access_count += remaining
                            trace.last_access = time
                        hits += remaining
                    else:
                        misses += remaining
                        if account is not None:
                            for _ in range(remaining):
                                account.context_switches += cs2
                                account.generation += gen_scale * size**gen_exp
                                account.promotions += pr_per * size + pr_base

    streak_records = segment_commits = side_exits = aborts = 0
    committed = 0
    abort_after = _ABORT_AFTER
    speculate = True
    ended = False

    for step in plan.steps:
        if ended:
            break
        if step[0] == KIND_STREAK:
            start = step[1]
            end = step[2]
            if speculate:
                if abort_after is not None and committed >= abort_after:
                    speculate = False
                    aborts += 1
                elif vectorized:
                    if table_keys >= step[5]:
                        if live:
                            touch_streak(list(map(getter, step[4])), step[3])
                        hits += step[6]
                        streak_records += end - start
                        segment_commits += 1
                        committed += 1
                        continue
                    side_exits += 1
                else:
                    for tid in step[4]:
                        if tid not in table:
                            side_exits += 1
                            break
                    else:
                        if live:
                            touch_streak(list(map(getter, step[4])), step[3])
                        hits += step[6]
                        streak_records += end - start
                        segment_commits += 1
                        committed += 1
                        continue
            # Side exit: retry the run chunk by chunk, so one miss
            # de-optimizes one chunk, not the whole run.  Guards
            # mutate nothing, so every fallback starts from the exact
            # chunk boundary.  (After an abort the whole run replays
            # scalar.)
            chunks = step[7]
            if speculate and chunks:
                for chunk in chunks:
                    if vectorized:
                        if table_keys >= chunk[4]:
                            if live:
                                touch_streak(
                                    list(map(getter, chunk[3])), chunk[2]
                                )
                            hits += chunk[5]
                            streak_records += chunk[1] - chunk[0]
                            segment_commits += 1
                            continue
                        side_exits += 1
                    else:
                        for tid in chunk[3]:
                            if tid not in table:
                                side_exits += 1
                                break
                        else:
                            if live:
                                touch_streak(
                                    list(map(getter, chunk[3])), chunk[2]
                                )
                            hits += chunk[5]
                            streak_records += chunk[1] - chunk[0]
                            segment_commits += 1
                            continue
                    scalar_range(chunk[0], chunk[1])
            else:
                scalar_range(start, end)
        else:
            for op, time, trace_id, size, module_id in step[3]:
                if op == OP_CREATE:
                    known[trace_id] = (size, module_id)
                    creations += 1
                    charged_insert(trace_id, size, module_id, time)
                elif op == OP_UNMAP:
                    fold(unmap(module_id, time))
                    if pending_pins:
                        for dead_id, (_, mod) in known.items():
                            if mod == module_id:
                                pending_pins.discard(dead_id)
                elif op == OP_PIN:
                    if trace_id in table:
                        pin(trace_id)
                    else:
                        pending_pins.add(trace_id)
                elif op == OP_UNPIN:
                    pending_pins.discard(trace_id)
                    if trace_id in table:
                        unpin(trace_id)
                else:  # OP_END
                    ended = True
                    break

    stats.accesses += hits + misses
    stats.hits += hits
    stats.misses += misses
    stats.creations += creations
    stats.evictions += evictions
    stats.unmap_evictions += unmap_evictions
    stats.flush_evictions += flush_evictions
    stats.evicted_bytes += evicted_bytes
    if hits:
        stats.hits_by_cache[cache_name] = (
            stats.hits_by_cache.get(cache_name, 0) + hits
        )
    _flush_totals(
        plan.n_records, vectorized, streak_records, segment_commits,
        side_exits, aborts,
    )


def _exec_multi(
    sim: CacheSimulator,
    compiled: CompiledTraceLog,
    plan: KernelPlan,
    spec,
    vectorized: bool,
) -> None:
    """The multi-cache kernel: residency tracked as ``trace_id ->
    slot`` from the effect stream.  Counter updates happen only on the
    (single) live-counter cache, probed through that cache's own trace
    table; under on-hit promotion the live cache's entries additionally
    carry the threshold-headroom guard."""
    manager = sim.manager
    account = sim.account
    stats = sim.stats
    insert = manager.insert
    touch_streak = manager.touch_streak
    pin = manager.pin
    unpin = manager.unpin
    unmap = manager.unmap_module
    if account is not None:
        model = account.model
        ev_per, ev_base = model.eviction_per_byte, model.eviction_base
        pr_per, pr_base = model.promotion_per_byte, model.promotion_base
        cs2 = 2 * model.context_switch
        gen_scale = model.generation_scale
        gen_exp = model.generation_exponent

    names = spec.cache_names
    n_slots = len(names)
    guarded = spec.guarded_cache is not None
    threshold = spec.promotion_threshold or 0
    guard_handler = (
        manager.hit_handler(spec.guarded_cache) if guarded else None
    )

    caches = manager.caches()
    slot_of = {cache.name: slot for slot, cache in enumerate(caches)}
    live_names = spec.live_counter_caches
    live_slot = slot_of[live_names[0]] if live_names else -1
    # The live cache's own trace table is the ground truth for its
    # counter records; the prologue guard guarantees at most one.
    live_table = caches[live_slot].resident_map() if live_names else {}
    lget = live_table.__getitem__

    known: dict[int, tuple[int, int]] = {}
    kget = known.get
    pending_pins: set[int] = set()
    resident: dict[int, int] = {}
    # Seed from the live tables so a pre-populated manager replays
    # identically to the object path's lookup-based residency.
    for slot, cache in enumerate(caches):
        for trace_id in cache.resident_map():
            resident[trace_id] = slot
    rget = resident.get
    rix = resident.__getitem__
    resident_keys = resident.keys()

    hits = misses = creations = 0
    evictions = unmap_evictions = flush_evictions = 0
    evicted_bytes = promotions = promoted_bytes = 0
    counts = [0] * n_slots

    unmap_reason = EvictionReason.UNMAP
    flush_reason = EvictionReason.FLUSH

    def fold(effects) -> None:
        # Mirrors the batched loop's fold: residency + counters +
        # pricing in _absorb / charge_effects order.  Residency is a
        # bare slot int, so an insert-then-evict cascade needs no
        # object capture — the later Evicted effect just pops the slot.
        nonlocal evictions, unmap_evictions, flush_evictions
        nonlocal evicted_bytes, promotions, promoted_bytes
        for effect in effects:
            kind = type(effect)
            if kind is Inserted:
                resident[effect.trace_id] = slot_of[effect.cache]
            elif kind is Evicted:
                resident.pop(effect.trace_id, None)
                reason = effect.reason
                if reason is unmap_reason:
                    unmap_evictions += 1
                elif reason is flush_reason:
                    flush_evictions += 1
                else:
                    evictions += 1
                evicted_bytes += effect.size
                if account is not None:
                    account.evictions += ev_per * effect.size + ev_base
            else:  # Promoted
                resident[effect.trace_id] = slot_of[effect.dst]
                promotions += 1
                promoted_bytes += effect.size
                if account is not None:
                    account.promotions += pr_per * effect.size + pr_base

    def try_commit(items, keyset) -> bool:
        # One guarded commit attempt for a run or chunk.  Everything
        # accumulates into locals first; nothing is mutated until every
        # entry passes, so a failed guard is a pure side exit.
        if vectorized:
            if not (resident_keys >= keyset):
                return False
            # Superset proven: the probe can skip the None test.
            probe = rix
        else:
            probe = rget
        tmp = [0] * n_slots
        live_traces: list = []
        live_items: list = []
        for item in items:
            slot = probe(item[0])
            if slot is None:
                return False
            tmp[slot] += item[1]
            if slot == live_slot:
                trace = lget(item[0])
                if guarded and (
                    trace.access_count + item[1] >= threshold
                    and not trace.pinned
                ):
                    # The streak would promote this entry mid-run:
                    # bail before mutating.
                    return False
                live_traces.append(trace)
                live_items.append(item)
        for slot in range(n_slots):
            counts[slot] += tmp[slot]
        if live_items:
            touch_streak(live_traces, live_items)
        return True

    time_col = compiled.time
    tid_col = compiled.trace_id
    repeat_col = compiled.repeat

    def scalar_range(a: int, b: int) -> None:
        # The de-optimized path: per-record access replay for
        # ``[a, b)``, bit-identical to the batched loop's access arm.
        nonlocal hits, misses
        rows = zip(
            tid_col[a:b].tolist(),
            time_col[a:b].tolist(),
            repeat_col[a:b].tolist(),
        )
        for trace_id, time, repeat in rows:
            slot = rget(trace_id)
            if slot is not None:
                if slot == live_slot:
                    if guarded:
                        effects = guard_handler(trace_id, time, repeat)
                        if effects:
                            fold(effects)
                    else:
                        trace = lget(trace_id)
                        trace.access_count += repeat
                        trace.last_access = time
                hits += repeat
                counts[slot] += repeat
            else:
                info = kget(trace_id)
                if info is None:
                    raise LogFormatError(
                        f"access to trace {trace_id} before its creation"
                    )
                size, module_id = info
                misses += 1
                if account is not None:
                    # charge_trace_creation, unrolled with the model
                    # constants hoisted (same field order, so float
                    # accumulation is bit-identical).
                    account.context_switches += cs2
                    account.generation += gen_scale * size**gen_exp
                    account.promotions += pr_per * size + pr_base
                fold(insert(trace_id, size, module_id, time))
                if trace_id in pending_pins:
                    pin(trace_id)
                remaining = repeat - 1
                if remaining > 0:
                    slot = rget(trace_id)
                    if slot is None:
                        misses += remaining
                        if account is not None:
                            for _ in range(remaining):
                                account.context_switches += cs2
                                account.generation += gen_scale * size**gen_exp
                                account.promotions += pr_per * size + pr_base
                    else:
                        if slot == live_slot:
                            if guarded:
                                effects = guard_handler(
                                    trace_id, time, remaining
                                )
                                if effects:
                                    fold(effects)
                            else:
                                trace = lget(trace_id)
                                trace.access_count += remaining
                                trace.last_access = time
                        hits += remaining
                        counts[slot] += remaining

    streak_records = segment_commits = side_exits = aborts = 0
    committed = 0
    abort_after = _ABORT_AFTER
    speculate = True
    ended = False

    for step in plan.steps:
        if ended:
            break
        if step[0] == KIND_STREAK:
            start = step[1]
            end = step[2]
            if speculate:
                if abort_after is not None and committed >= abort_after:
                    speculate = False
                    aborts += 1
                elif try_commit(step[3], step[5]):
                    hits += step[6]
                    streak_records += end - start
                    segment_commits += 1
                    committed += 1
                    continue
                else:
                    side_exits += 1
            # Side exit: retry the run chunk by chunk, so one miss or
            # imminent promotion de-optimizes one chunk, not the whole
            # run.  Guards mutate nothing, so every fallback starts
            # from the exact chunk boundary.  (After an abort the
            # whole run replays scalar.)
            chunks = step[7]
            if speculate and chunks:
                for chunk in chunks:
                    if try_commit(chunk[2], chunk[4]):
                        hits += chunk[5]
                        streak_records += chunk[1] - chunk[0]
                        segment_commits += 1
                    else:
                        side_exits += 1
                        scalar_range(chunk[0], chunk[1])
            else:
                scalar_range(start, end)
        else:
            for op, time, trace_id, size, module_id in step[3]:
                if op == OP_CREATE:
                    known[trace_id] = (size, module_id)
                    creations += 1
                    if account is not None:
                        account.context_switches += cs2
                        account.generation += gen_scale * size**gen_exp
                        account.promotions += pr_per * size + pr_base
                    fold(insert(trace_id, size, module_id, time))
                elif op == OP_UNMAP:
                    fold(unmap(module_id, time))
                    if pending_pins:
                        for dead_id, (_, mod) in known.items():
                            if mod == module_id:
                                pending_pins.discard(dead_id)
                elif op == OP_PIN:
                    if trace_id in resident:
                        pin(trace_id)
                    else:
                        pending_pins.add(trace_id)
                elif op == OP_UNPIN:
                    pending_pins.discard(trace_id)
                    if trace_id in resident:
                        unpin(trace_id)
                else:  # OP_END
                    ended = True
                    break

    stats.accesses += hits + misses
    stats.hits += hits
    stats.misses += misses
    stats.creations += creations
    stats.evictions += evictions
    stats.unmap_evictions += unmap_evictions
    stats.flush_evictions += flush_evictions
    stats.promotions += promotions
    stats.evicted_bytes += evicted_bytes
    stats.promoted_bytes += promoted_bytes
    for name, count in zip(names, counts):
        if count:
            stats.hits_by_cache[name] = (
                stats.hits_by_cache.get(name, 0) + count
            )
    _flush_totals(
        plan.n_records, vectorized, streak_records, segment_commits,
        side_exits, aborts,
    )


def _flush_totals(
    n_records: int,
    vectorized: bool,
    streak_records: int,
    segment_commits: int,
    side_exits: int,
    aborts: int,
) -> None:
    FASTPATH_TOTALS["fast_replays"] += 1
    FASTPATH_TOTALS["specialized_replays"] += 1
    if vectorized:
        FASTPATH_TOTALS["vectorized_replays"] += 1
    FASTPATH_TOTALS["records_replayed"] += n_records
    FASTPATH_TOTALS["streak_records"] += streak_records
    FASTPATH_TOTALS["segment_commits"] += segment_commits
    FASTPATH_TOTALS["segment_side_exits"] += side_exits
    FASTPATH_TOTALS["guard_aborts"] += aborts
