"""Compiled replay fast path.

Four pieces, built for the ROADMAP goal of replaying the same verbose
trace log against many cache configurations at production scale:

* :mod:`repro.fastpath.compiled` — the packed struct-of-arrays trace
  log (:class:`CompiledTraceLog`), built once from the record objects
  and losslessly decompilable;
* :mod:`repro.fastpath.replay` — the batched replay loop
  :func:`replay_compiled`, selected automatically by
  :class:`repro.cachesim.simulator.CacheSimulator` when the manager is
  ``fastpath_safe`` and no sanitizer is attached;
* :mod:`repro.fastpath.kernels` — policy-specialized replay kernels
  (:func:`replay_specialized`): partial evaluation of the (policy,
  config) pair, hit-streak run-length batching with guard/commit/abort
  speculation, and an optional vectorized columnar guard.  Selected
  ahead of the batched loop when the manager publishes a
  :class:`~repro.core.manager.KernelSpec`;
* :mod:`repro.fastpath.artifacts` — the content-addressed on-disk
  cache of synthesized workloads and specialization plans (imported on
  demand: ``from repro.fastpath import artifacts``).

This package root is the public surface.  The packed-column and kernel
internals (``repro.fastpath.compiled`` / ``repro.fastpath.replay`` /
``repro.fastpath.kernels`` module imports, direct
``CompiledTraceLog(...)`` / ``KernelPlan(...)`` construction) are
reserved for this package and the RTL2 codec — enforced by the
``fastpath-api`` cachelint rule.
"""

from repro.fastpath.compiled import (
    OP_ACCESS,
    OP_CREATE,
    OP_END,
    OP_PIN,
    OP_UNMAP,
    OP_UNPIN,
    CompiledTraceLog,
    compile_log,
    ensure_compiled,
    log_columns,
)
from repro.fastpath.kernels import (
    prepare_plan,
    replay_specialized,
    set_abort_fuzz,
    set_vectorized,
    vectorized_enabled,
)
from repro.fastpath.replay import (
    FASTPATH_TOTALS,
    batched_path,
    disable_fastpath,
    enable_fastpath,
    fastpath_enabled,
    fastpath_mode,
    kernels_enabled,
    object_path,
    replay_compiled,
    set_fastpath_mode,
)

__all__ = [
    "CompiledTraceLog",
    "FASTPATH_TOTALS",
    "OP_ACCESS",
    "OP_CREATE",
    "OP_END",
    "OP_PIN",
    "OP_UNMAP",
    "OP_UNPIN",
    "log_columns",
    "batched_path",
    "compile_log",
    "disable_fastpath",
    "enable_fastpath",
    "ensure_compiled",
    "fastpath_enabled",
    "fastpath_mode",
    "kernels_enabled",
    "object_path",
    "prepare_plan",
    "replay_compiled",
    "replay_specialized",
    "set_abort_fuzz",
    "set_fastpath_mode",
    "set_vectorized",
    "vectorized_enabled",
]
