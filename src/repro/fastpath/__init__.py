"""Compiled replay fast path.

Three pieces, built for the ROADMAP goal of replaying the same verbose
trace log against many cache configurations at production scale:

* :mod:`repro.fastpath.compiled` — the packed struct-of-arrays trace
  log (:class:`CompiledTraceLog`), built once from the record objects
  and losslessly decompilable;
* :mod:`repro.fastpath.replay` — the batched replay loop
  :func:`replay_compiled`, selected automatically by
  :class:`repro.cachesim.simulator.CacheSimulator` when the manager is
  ``fastpath_safe`` and no sanitizer is attached;
* :mod:`repro.fastpath.artifacts` — the content-addressed on-disk
  cache of synthesized workloads (imported on demand:
  ``from repro.fastpath import artifacts``).

This package root is the public surface.  The packed-column internals
(``repro.fastpath.compiled`` / ``repro.fastpath.replay`` module
imports, direct ``CompiledTraceLog(...)`` construction) are reserved
for this package and the RTL2 codec — enforced by the ``fastpath-api``
cachelint rule.
"""

from repro.fastpath.compiled import CompiledTraceLog, compile_log, ensure_compiled
from repro.fastpath.replay import (
    FASTPATH_TOTALS,
    disable_fastpath,
    enable_fastpath,
    fastpath_enabled,
    object_path,
    replay_compiled,
)

__all__ = [
    "CompiledTraceLog",
    "FASTPATH_TOTALS",
    "compile_log",
    "disable_fastpath",
    "enable_fastpath",
    "ensure_compiled",
    "fastpath_enabled",
    "object_path",
    "replay_compiled",
]
