"""Packed struct-of-arrays trace logs (the compiled representation).

The object representation (:class:`~repro.tracelog.records.TraceLog`)
stores one frozen dataclass per record — ideal for construction and
inspection, but replay touches every record of a multi-hundred-thousand
event log once per cache configuration, and the per-object attribute
and ``isinstance`` overhead dominates the replay loop.

:class:`CompiledTraceLog` packs the same information into six parallel
``array`` columns (one machine word per field instead of one Python
object per record):

======== ========== ==================================================
column   type code  meaning
======== ========== ==================================================
op       ``B``      record opcode (same numbering as the RTL2 binary
                    format tags: 1=create 2=access 3=unmap 4=pin
                    5=unpin 6=end)
time     ``q``      virtual timestamp
trace_id ``q``      trace id (0 for unmap/end records)
size     ``q``      trace size in bytes (create records, else 0)
module   ``q``      module id (create/unmap records, else 0)
repeat   ``q``      compressed consecutive-entry count (access
                    records, else 0)
======== ========== ==================================================

The compilation is a one-time pass over the record objects and is
**lossless**: :meth:`CompiledTraceLog.decompile` reproduces a
``TraceLog`` whose records compare equal to the source, and the RTL2
binary serialization of both forms is byte-identical (see
:mod:`repro.tracelog.binary`).

Everything that reads or writes the columns directly lives in this
package (plus the sanctioned RTL2 codec); other layers use the public
constructors, the ``TraceLog``-compatible summary properties, and the
row iterators.  The ``fastpath-api`` cachelint rule enforces this.
"""

from __future__ import annotations

import hashlib
from array import array
from typing import Iterator

from repro.errors import LogFormatError
from repro.tracelog.records import (
    EndOfLog,
    LogRecord,
    ModuleUnmap,
    TraceAccess,
    TraceCreate,
    TraceLog,
    TracePin,
    TraceUnpin,
)

#: Opcodes — deliberately identical to the RTL2 binary record tags so
#: the compiled form serializes without a translation table.
OP_CREATE = 1
OP_ACCESS = 2
OP_UNMAP = 3
OP_PIN = 4
OP_UNPIN = 5
OP_END = 6

#: One row of a compiled log: (op, time, trace_id, size, module, repeat).
Row = tuple[int, int, int, int, int, int]


class CompiledTraceLog:
    """A trace log packed into parallel columns.

    Build one with :func:`compile_log` (or
    :meth:`repro.tracelog.records.TraceLog.compile`), or row by row via
    :meth:`append_row` when decoding a serialized log directly into
    packed form.

    The summary properties mirror :class:`TraceLog`'s so replay and
    reporting code can accept either representation.
    """

    __slots__ = (
        "benchmark",
        "duration_seconds",
        "code_footprint",
        "op",
        "time",
        "trace_id",
        "size",
        "module",
        "repeat",
        # Kernel-specializer memo slots (repro.fastpath.kernels): the
        # content fingerprint and replay plan are pure functions of the
        # columns, cached as (n_records, value) pairs so a log that
        # grew after caching is recomputed rather than served stale.
        "_fingerprint",
        "_plan",
    )

    def __init__(
        self,
        benchmark: str,
        duration_seconds: float,
        code_footprint: int,
    ) -> None:
        self.benchmark = benchmark
        self.duration_seconds = duration_seconds
        self.code_footprint = code_footprint
        self.op = array("B")
        self.time = array("q")
        self.trace_id = array("q")
        self.size = array("q")
        self.module = array("q")
        self.repeat = array("q")
        self._fingerprint: tuple[int, str] | None = None
        self._plan = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def append_row(
        self,
        op: int,
        time: int,
        trace_id: int = 0,
        size: int = 0,
        module: int = 0,
        repeat: int = 0,
    ) -> None:
        """Append one packed record."""
        self.op.append(op)
        self.time.append(time)
        self.trace_id.append(trace_id)
        self.size.append(size)
        self.module.append(module)
        self.repeat.append(repeat)

    # ------------------------------------------------------------------
    # TraceLog-compatible summary API
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.op)

    @property
    def n_records(self) -> int:
        """Number of packed records."""
        return len(self.op)

    @property
    def end_time(self) -> int:
        """Total virtual execution time (EndOfLog record, or the last
        record's time if the log is unterminated)."""
        ops = self.op
        for index in range(len(ops) - 1, -1, -1):
            if ops[index] == OP_END:
                return self.time[index]
        return self.time[-1] if ops else 0

    @property
    def n_traces(self) -> int:
        """Number of distinct traces created."""
        return self.op.count(OP_CREATE)

    @property
    def total_trace_bytes(self) -> int:
        """Total bytes of traces created over the whole run."""
        return sum(self.size)

    @property
    def n_accesses(self) -> int:
        """Total trace entries including compressed repeats."""
        return sum(self.repeat)

    def content_fingerprint(self) -> str:
        """Hex sha256 over the packed columns (cached per length).

        This is the log half of the kernel specializer's artifact key:
        two logs with identical columns replay identically, whatever
        path produced them, so their specialization plans are
        interchangeable.
        """
        cached = self._fingerprint
        n = len(self.op)
        if cached is not None and cached[0] == n:
            return cached[1]
        digest = hashlib.sha256()
        for column in (
            self.op, self.time, self.trace_id,
            self.size, self.module, self.repeat,
        ):
            digest.update(column.tobytes())
        value = digest.hexdigest()
        self._fingerprint = (n, value)
        return value

    # ------------------------------------------------------------------
    # Row/record iteration
    # ------------------------------------------------------------------

    def rows(self) -> Iterator[Row]:
        """Yield every packed record as a plain tuple."""
        return zip(
            self.op, self.time, self.trace_id, self.size, self.module, self.repeat
        )

    def iter_records(self) -> Iterator[LogRecord]:
        """Yield record *objects* lazily (the object-path fallback for
        sanitized replays, without materializing a full list)."""
        for op, time, trace_id, size, module, repeat in self.rows():
            yield _REBUILD[op](time, trace_id, size, module, repeat)

    def decompile(self) -> TraceLog:
        """Reconstruct the object representation (lossless)."""
        log = TraceLog(
            benchmark=self.benchmark,
            duration_seconds=self.duration_seconds,
            code_footprint=self.code_footprint,
        )
        log.records = list(self.iter_records())
        return log

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CompiledTraceLog(benchmark={self.benchmark!r}, "
            f"records={len(self.op)})"
        )


# ----------------------------------------------------------------------
# Record object <-> row conversion tables
# ----------------------------------------------------------------------


def _rebuild_create(time: int, trace_id: int, size: int, module: int, _r: int):
    return TraceCreate(time=time, trace_id=trace_id, size=size, module_id=module)


def _rebuild_access(time: int, trace_id: int, _s: int, _m: int, repeat: int):
    return TraceAccess(time=time, trace_id=trace_id, repeat=repeat)


def _rebuild_unmap(time: int, _t: int, _s: int, module: int, _r: int):
    return ModuleUnmap(time=time, module_id=module)


def _rebuild_pin(time: int, trace_id: int, _s: int, _m: int, _r: int):
    return TracePin(time=time, trace_id=trace_id)


def _rebuild_unpin(time: int, trace_id: int, _s: int, _m: int, _r: int):
    return TraceUnpin(time=time, trace_id=trace_id)


def _rebuild_end(time: int, _t: int, _s: int, _m: int, _r: int):
    return EndOfLog(time=time)


_REBUILD = {
    OP_CREATE: _rebuild_create,
    OP_ACCESS: _rebuild_access,
    OP_UNMAP: _rebuild_unmap,
    OP_PIN: _rebuild_pin,
    OP_UNPIN: _rebuild_unpin,
    OP_END: _rebuild_end,
}


def compile_log(log: TraceLog) -> CompiledTraceLog:
    """Pack *log* into the columnar representation (one pass).

    Raises:
        LogFormatError: on a record type outside the closed LogRecord
            union.
    """
    compiled = CompiledTraceLog(
        benchmark=log.benchmark,
        duration_seconds=log.duration_seconds,
        code_footprint=log.code_footprint,
    )
    append = compiled.append_row
    for record in log.records:
        kind = type(record)
        if kind is TraceAccess:
            append(OP_ACCESS, record.time, record.trace_id, 0, 0, record.repeat)
        elif kind is TraceCreate:
            append(
                OP_CREATE,
                record.time,
                record.trace_id,
                record.size,
                record.module_id,
                0,
            )
        elif kind is ModuleUnmap:
            append(OP_UNMAP, record.time, 0, 0, record.module_id, 0)
        elif kind is TracePin:
            append(OP_PIN, record.time, record.trace_id, 0, 0, 0)
        elif kind is TraceUnpin:
            append(OP_UNPIN, record.time, record.trace_id, 0, 0, 0)
        elif kind is EndOfLog:
            append(OP_END, record.time, 0, 0, 0, 0)
        else:
            raise LogFormatError(
                f"cannot compile record type {type(record).__name__}"
            )
    return compiled


def ensure_compiled(log: TraceLog | CompiledTraceLog) -> CompiledTraceLog:
    """Return *log* packed, compiling the object form if necessary."""
    if isinstance(log, CompiledTraceLog):
        return log
    return compile_log(log)


#: One compiled log's parallel columns, in schema order.
Columns = tuple[array, array, array, array, array, array]


def log_columns(log: TraceLog | CompiledTraceLog) -> Columns:
    """The packed ``(op, time, trace_id, size, module, repeat)`` columns.

    The sanctioned *read-only* view for replay loops outside this
    package (the fleet simulator walks scheduler-issued index ranges
    over these arrays): callers get column speed without constructing
    or mutating a :class:`CompiledTraceLog` themselves, so the
    ``fastpath-api`` confinement of the column writers still holds.
    """
    compiled = ensure_compiled(log)
    return (
        compiled.op,
        compiled.time,
        compiled.trace_id,
        compiled.size,
        compiled.module,
        compiled.repeat,
    )
