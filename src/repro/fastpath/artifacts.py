"""Content-addressed on-disk cache of workload artifacts.

Synthesizing a benchmark log is deterministic in (profile, seed,
scale) — yet every ``run-all``, sweep, service worker, and benchmark
process re-synthesizes the same logs from scratch.  This module
memoizes the two derived artifacts the experiment layer actually
consumes:

* the **compiled log** (:class:`~repro.fastpath.compiled.CompiledTraceLog`),
  stored in a raw columnar container (``array.tobytes`` per column) so
  a warm load is a handful of C-speed ``frombytes`` calls — far faster
  than re-synthesizing *or* re-parsing the RTL2 varint format;
* the **log statistics** (:class:`~repro.tracelog.stats.LogStatistics`),
  stored as JSON.

Keys are sha256 digests over a canonical JSON description of the
request: the full profile contents (not just its name), seed, scale,
artifact kind, container version, and a fingerprint of the synthesis
source modules.  Editing the synthesizer, the profile tables, or the
packed representation therefore invalidates every stale entry by
construction — there is no mtime or TTL logic to get wrong.

Entries are written atomically (temp file + ``os.replace``) and carry
a payload checksum verified on load; a corrupt or foreign entry is
treated as a miss and rewritten.  Any OSError degrades to a miss as
well — the cache can never fail an experiment.

The store location comes from ``REPRO_ARTIFACT_DIR`` (set it to an
empty string, ``0``, or ``off`` to disable caching), defaulting to
``~/.cache/repro-gencache/artifacts``.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import tempfile
from dataclasses import asdict
from pathlib import Path
from typing import Callable

from repro.fastpath.compiled import CompiledTraceLog
from repro.tracelog.records import TraceLog
from repro.tracelog.stats import LogStatistics

#: Bumped whenever the container layout changes.
CONTAINER_VERSION = 1

CONTAINER_MAGIC = b"RAC1"

PLAN_MAGIC = b"RKP1"

#: Environment variable overriding (or disabling) the store location.
ENV_DIR = "REPRO_ARTIFACT_DIR"

#: Process-wide counters surfaced by the timing JSON and the perf-smoke
#: CI job.  ``logs_synthesized`` counts actual synthesis runs — a fully
#: warm cache keeps it at zero.
ARTIFACT_TOTALS = {
    "hits": 0,
    "misses": 0,
    "stores": 0,
    "logs_synthesized": 0,
}

#: The columns of the container payload, in serialization order.
_COLUMNS = ("op", "time", "trace_id", "size", "module", "repeat")


# ----------------------------------------------------------------------
# Content addressing
# ----------------------------------------------------------------------

_source_fingerprint: str | None = None


def _fingerprint_sources() -> str:
    """Digest of the modules whose behavior the artifacts depend on.

    Any edit to the synthesizer, the profile tables, or the packed
    representation changes this fingerprint and thereby every key.
    """
    global _source_fingerprint
    if _source_fingerprint is None:
        from repro.fastpath import compiled
        from repro.workloads import catalog, profiles, synthesis

        digest = hashlib.sha256()
        for module in (synthesis, profiles, catalog, compiled):
            digest.update(Path(module.__file__).read_bytes())
        _source_fingerprint = digest.hexdigest()
    return _source_fingerprint


_plan_source_fingerprint: str | None = None


def _fingerprint_plan_sources() -> str:
    """Digest of the modules a stored kernel plan depends on: the
    specializer itself and the packed representation.  Editing either
    invalidates every stale plan by construction."""
    global _plan_source_fingerprint
    if _plan_source_fingerprint is None:
        from repro.fastpath import compiled, kernels

        digest = hashlib.sha256()
        for module in (kernels, compiled):
            digest.update(Path(module.__file__).read_bytes())
        _plan_source_fingerprint = digest.hexdigest()
    return _plan_source_fingerprint


def plan_key(compiled: CompiledTraceLog) -> str:
    """Content digest identifying one kernel specialization plan.

    Covers the log's column fingerprint (so any two byte-identical
    logs share one plan, whatever produced them), the plan version,
    and the specializer sources.  The policy/config half of a
    specialization is bound at replay time — plans are deliberately
    policy-invariant, so one stored plan serves every manager
    replaying the same log.
    """
    from repro.fastpath.kernels import PLAN_VERSION

    description = {
        "kind": "kernel-plan",
        "version": PLAN_VERSION,
        "log": compiled.content_fingerprint(),
        "sources": _fingerprint_plan_sources(),
    }
    blob = json.dumps(description, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def artifact_key(kind: str, profile, seed: int, scale: float) -> str:
    """Content digest identifying one artifact.

    *profile* is serialized in full (every calibrated knob), so two
    profiles sharing a name but not behavior can never collide.
    """
    description = {
        "kind": kind,
        "version": CONTAINER_VERSION,
        "profile": asdict(profile),
        "seed": seed,
        "scale": scale,
        "sources": _fingerprint_sources(),
    }
    blob = json.dumps(description, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Columnar container codec
# ----------------------------------------------------------------------


def dump_compiled_container(compiled: CompiledTraceLog) -> bytes:
    """Serialize *compiled* column-by-column with a payload checksum.

    Unlike RTL2 this is not portable (native endianness and itemsize)
    — it is a machine-local cache format optimized for load speed, and
    the header records both so a foreign file reads as a miss.
    """
    payload = b"".join(getattr(compiled, column).tobytes() for column in _COLUMNS)
    header = json.dumps(
        {
            "benchmark": compiled.benchmark,
            "duration_seconds": compiled.duration_seconds,
            "code_footprint": compiled.code_footprint,
            "n": len(compiled),
            "byteorder": sys.byteorder,
            "itemsize": compiled.time.itemsize,
            "sha256": hashlib.sha256(payload).hexdigest(),
        },
        sort_keys=True,
    ).encode("utf-8")
    return (
        CONTAINER_MAGIC
        + len(header).to_bytes(4, "little")
        + header
        + payload
    )


def load_compiled_container(blob: bytes) -> CompiledTraceLog | None:
    """Deserialize a container, or None if it is corrupt or foreign."""
    if len(blob) < 8 or blob[:4] != CONTAINER_MAGIC:
        return None
    header_len = int.from_bytes(blob[4:8], "little")
    try:
        header = json.loads(blob[8 : 8 + header_len].decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    compiled = CompiledTraceLog(
        benchmark=header["benchmark"],
        duration_seconds=header["duration_seconds"],
        code_footprint=header["code_footprint"],
    )
    if (
        header["byteorder"] != sys.byteorder
        or header["itemsize"] != compiled.time.itemsize
    ):
        return None
    n = header["n"]
    payload = memoryview(blob)[8 + header_len :]
    if hashlib.sha256(payload).hexdigest() != header["sha256"]:
        return None
    widths = [getattr(compiled, column).itemsize * n for column in _COLUMNS]
    if len(payload) != sum(widths):
        return None
    offset = 0
    for column, width in zip(_COLUMNS, widths):
        getattr(compiled, column).frombytes(payload[offset : offset + width])
        offset += width
    return compiled


def dump_plan_container(plan) -> bytes:
    """Serialize a :class:`~repro.fastpath.kernels.KernelPlan` as
    packed arrays: per-step kind/start/end/item-count/hit-total, plus
    the concatenated collapsed item columns.  Scalar ranges carry no
    payload — their rows are re-unpacked from the compiled log's own
    columns on load."""
    from array import array

    from repro.fastpath.kernels import KIND_STREAK

    kinds = array("B")
    starts = array("q")
    ends = array("q")
    item_counts = array("q")
    hit_totals = array("q")
    item_tid = array("q")
    item_total = array("q")
    item_last = array("q")
    for step in plan.steps:
        kinds.append(step[0])
        starts.append(step[1])
        ends.append(step[2])
        if step[0] == KIND_STREAK:
            items = step[3]
            item_counts.append(len(items))
            hit_totals.append(step[6])
            for tid, total, last in items:
                item_tid.append(tid)
                item_total.append(total)
                item_last.append(last)
        else:
            item_counts.append(0)
            hit_totals.append(0)
    columns = (
        kinds, starts, ends, item_counts, hit_totals,
        item_tid, item_total, item_last,
    )
    payload = b"".join(column.tobytes() for column in columns)
    header = json.dumps(
        {
            "n_records": plan.n_records,
            "n_steps": len(kinds),
            "n_items": len(item_tid),
            "byteorder": sys.byteorder,
            "itemsize": starts.itemsize,
            "sha256": hashlib.sha256(payload).hexdigest(),
        },
        sort_keys=True,
    ).encode("utf-8")
    return PLAN_MAGIC + len(header).to_bytes(4, "little") + header + payload


def load_plan_container(blob: bytes, compiled: CompiledTraceLog):
    """Deserialize a plan container built for *compiled*, or None if
    corrupt or foreign.  Scalar-range rows are re-unpacked from the
    compiled log's columns — the store never duplicates them."""
    from array import array

    from repro.fastpath.kernels import (
        KIND_SCALAR,
        KernelPlan,
        _chunk_windows,
        streak_step,
    )

    if len(blob) < 8 or blob[:4] != PLAN_MAGIC:
        return None
    header_len = int.from_bytes(blob[4:8], "little")
    try:
        header = json.loads(blob[8 : 8 + header_len].decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    kinds = array("B")
    starts = array("q")
    if (
        header.get("byteorder") != sys.byteorder
        or header.get("itemsize") != starts.itemsize
    ):
        return None
    n_steps = header["n_steps"]
    n_items = header["n_items"]
    payload = memoryview(blob)[8 + header_len :]
    if hashlib.sha256(payload).hexdigest() != header["sha256"]:
        return None
    widths = [n_steps] + [n_steps * starts.itemsize] * 4 + [
        n_items * starts.itemsize
    ] * 3
    if len(payload) != sum(widths):
        return None
    ends = array("q")
    item_counts = array("q")
    hit_totals = array("q")
    item_tid = array("q")
    item_total = array("q")
    item_last = array("q")
    columns = (
        kinds, starts, ends, item_counts, hit_totals,
        item_tid, item_total, item_last,
    )
    offset = 0
    for column, width in zip(columns, widths):
        column.frombytes(payload[offset : offset + width])
        offset += width
    tid_list = item_tid.tolist()
    total_list = item_total.tolist()
    last_list = item_last.tolist()
    starts_list = starts.tolist()
    ends_list = ends.tolist()
    counts_list = item_counts.tolist()
    hits_list = hit_totals.tolist()
    op_col = compiled.op
    time_col = compiled.time
    tid_col = compiled.trace_id
    size_col = compiled.size
    module_col = compiled.module
    # Chunk retry ladders are derived data (a pure function of the
    # columns and CHUNK_RECORDS), so the store never persists them —
    # they are rebuilt here from the same helper the builder uses.
    all_times = time_col.tolist()
    all_tids = tid_col.tolist()
    all_reps = compiled.repeat.tolist()
    steps: list = []
    position = 0
    for index in range(n_steps):
        if kinds[index] == KIND_SCALAR:
            start = starts_list[index]
            end = ends_list[index]
            if end > len(op_col):
                return None
            rows = list(
                zip(
                    op_col[start:end].tolist(),
                    time_col[start:end].tolist(),
                    tid_col[start:end].tolist(),
                    size_col[start:end].tolist(),
                    module_col[start:end].tolist(),
                )
            )
            steps.append((KIND_SCALAR, start, end, rows))
            continue
        count = counts_list[index]
        items = list(
            zip(
                tid_list[position : position + count],
                total_list[position : position + count],
                last_list[position : position + count],
            )
        )
        position += count
        start = starts_list[index]
        end = ends_list[index]
        if end > len(op_col):
            return None
        steps.append(
            streak_step(
                start,
                end,
                items,
                hits_list[index],
                _chunk_windows(all_tids, all_times, all_reps, start, end),
            )
        )
    if position != n_items:
        return None
    return KernelPlan(n_records=header["n_records"], steps=steps)


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------


class ArtifactCache:
    """A content-addressed directory of workload artifacts."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def _path(self, key: str, suffix: str) -> Path:
        return self.root / key[:2] / f"{key}{suffix}"

    def _read(self, path: Path) -> bytes | None:
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        return blob

    def _write(self, path: Path, blob: bytes) -> None:
        """Atomic publish: readers see the old entry or the new one,
        never a torn write (workers share the store concurrently)."""
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=f".{path.name}."
            )
            try:
                with os.fdopen(fd, "wb") as stream:
                    stream.write(blob)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            return  # a full or read-only disk must not fail the run
        ARTIFACT_TOTALS["stores"] += 1

    # -- compiled logs -------------------------------------------------

    def compiled_log(
        self,
        profile,
        seed: int,
        scale: float,
        synthesize: Callable[[], TraceLog],
    ) -> tuple[CompiledTraceLog, TraceLog | None]:
        """The compiled log for (profile, seed, scale).

        On a miss, *synthesize* produces the object log, which is
        compiled, stored, and returned alongside (so a caller that
        also wants the object form need not decompile).  On a hit the
        second element is None.
        """
        from repro.fastpath.compiled import compile_log

        path = self._path(artifact_key("compiled-log", profile, seed, scale), ".rac")
        blob = self._read(path)
        if blob is not None:
            compiled = load_compiled_container(blob)
            if compiled is not None:
                ARTIFACT_TOTALS["hits"] += 1
                return compiled, None
        ARTIFACT_TOTALS["misses"] += 1
        ARTIFACT_TOTALS["logs_synthesized"] += 1
        log = synthesize()
        compiled = compile_log(log)
        self._write(path, dump_compiled_container(compiled))
        return compiled, log

    # -- kernel specialization plans -----------------------------------

    def kernel_plan(
        self,
        compiled: CompiledTraceLog,
        build: Callable[[], object],
    ):
        """The specialization plan for *compiled*.

        Keyed on the log's content fingerprint (see :func:`plan_key`),
        so warm service/scenario/sweep runs skip the run-collapsing
        pass entirely.  On a miss, *build* runs and the result is
        stored.
        """
        path = self._path(plan_key(compiled), ".rkp")
        blob = self._read(path)
        if blob is not None:
            plan = load_plan_container(blob, compiled)
            if plan is not None:
                ARTIFACT_TOTALS["hits"] += 1
                return plan
        ARTIFACT_TOTALS["misses"] += 1
        plan = build()
        self._write(path, dump_plan_container(plan))
        return plan

    # -- log statistics ------------------------------------------------

    def log_stats(
        self,
        profile,
        seed: int,
        scale: float,
        compute: Callable[[], LogStatistics],
    ) -> LogStatistics:
        """The summary statistics for (profile, seed, scale)."""
        path = self._path(artifact_key("log-stats", profile, seed, scale), ".json")
        blob = self._read(path)
        if blob is not None:
            try:
                fields = json.loads(blob.decode("utf-8"))
                stats = LogStatistics(**fields)
            except (ValueError, TypeError, UnicodeDecodeError):
                stats = None
            if stats is not None:
                ARTIFACT_TOTALS["hits"] += 1
                return stats
        ARTIFACT_TOTALS["misses"] += 1
        stats = compute()
        self._write(
            path, json.dumps(asdict(stats), sort_keys=True).encode("utf-8")
        )
        return stats


# ----------------------------------------------------------------------
# Process-wide configuration
# ----------------------------------------------------------------------

_UNSET = object()
_cache: object = _UNSET


def get_cache() -> ArtifactCache | None:
    """The process-wide store, or None when caching is disabled.

    Resolved once from ``REPRO_ARTIFACT_DIR`` (empty/``0``/``off``
    disables; unset uses the default under ``~/.cache``); override
    with :func:`configure`.
    """
    global _cache
    if _cache is _UNSET:
        env = os.environ.get(ENV_DIR)
        if env is not None and env.strip().lower() in ("", "0", "off", "none"):
            _cache = None
        elif env is not None:
            _cache = ArtifactCache(env)
        else:
            _cache = ArtifactCache(
                Path.home() / ".cache" / "repro-gencache" / "artifacts"
            )
    return _cache  # type: ignore[return-value]


def configure(root: str | Path | None) -> ArtifactCache | None:
    """Point the process at *root* (None disables caching)."""
    global _cache
    _cache = None if root is None else ArtifactCache(root)
    return _cache


def cached_log(profile, seed: int, scale: float) -> TraceLog:
    """Synthesize (profile, seed, scale) through the artifact store.

    A warm store reconstructs the object log from the compiled
    artifact (lossless) instead of re-running the synthesizer — used
    by callers outside :class:`~repro.experiments.dataset.WorkloadDataset`
    (e.g. shared-cache workload composition) that need record objects.
    """
    from repro.workloads.synthesis import synthesize_log

    store = get_cache()
    if store is None:
        ARTIFACT_TOTALS["logs_synthesized"] += 1
        return synthesize_log(profile, seed=seed, scale=scale)
    compiled, log = store.compiled_log(
        profile,
        seed,
        scale,
        lambda: synthesize_log(profile, seed=seed, scale=scale),
    )
    return log if log is not None else compiled.decompile()
