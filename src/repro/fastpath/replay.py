"""The batched replay loop over a compiled log.

Semantically a line-for-line mirror of
:meth:`repro.cachesim.simulator.CacheSimulator`'s record handlers, but
restructured for throughput:

* **table dispatch** over the packed opcode column — integer compares
  against hoisted opcode constants instead of one ``isinstance`` chain
  per record object;
* **no residency lookups** — a ``trace_id -> cache_name`` map is
  maintained from the manager's own effect stream, replacing
  ``manager.lookup`` (a per-access scan over every cache) with one dict
  probe.  This is only sound for managers whose effect streams fully
  describe residency, declared via
  :attr:`repro.core.manager.CacheManager.fastpath_safe`;
* **batched hits** — a resident access calls the manager's
  :meth:`~repro.core.manager.CacheManager.hit_resident` fast hook
  (touch + promotion check, no ``AccessOutcome`` allocation, no cache
  scan) once per compressed record, never materializing per-entry hits;
* **local stats accumulation** — counters live in local variables for
  the whole replay and are flushed into :class:`CacheStats` once.

Overhead-account charges happen in exactly the object path's order, so
float accumulation — and therefore every experiment table — is
byte-identical between the two paths.  The equivalence suite in
``tests/fastpath`` pins this down for every policy and manager config.

The loop never runs with a sanitizer harness attached: sanitizers
observe per-record events and effect streams, which only the object
path produces, so :meth:`CacheSimulator.run` falls back automatically.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from repro.core.effects import Evicted, EvictionReason, Inserted, Promoted
from repro.errors import LogFormatError
from repro.fastpath.compiled import (
    OP_ACCESS,
    OP_CREATE,
    OP_END,
    OP_PIN,
    OP_UNMAP,
    OP_UNPIN,
    CompiledTraceLog,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cachesim.simulator import CacheSimulator

#: Process-wide counters for profiling and the perf-smoke CI job.
FASTPATH_TOTALS = {
    "fast_replays": 0,
    "object_replays": 0,
    "records_replayed": 0,
    # Kernel-specializer counters (repro.fastpath.kernels).
    "specialized_replays": 0,
    "vectorized_replays": 0,
    "streak_records": 0,
    "segment_commits": 0,
    "segment_side_exits": 0,
    "guard_aborts": 0,
    "plans_built": 0,
    "plans_loaded": 0,
}

#: The replay tiers, fastest first.  ``kernel`` (the default) lets the
#: specializer replace the batched loop with a policy-specialized
#: kernel when the manager publishes a
#: :class:`~repro.core.manager.KernelSpec`; ``batched`` pins replay to
#: the general batched loop (the pre-kernel fast path, and the
#: baseline the kernel speedups are measured against); ``off`` forces
#: the object path.
_MODES = ("kernel", "batched", "off")


def _mode_from_env(value: str | None) -> str:
    if value is None:
        return "kernel"
    lowered = value.lower()
    if lowered in ("0", "off", "no", "false"):
        return "off"
    if lowered == "batched":
        return "batched"
    return "kernel"


#: ``REPRO_FASTPATH=0`` (or ``off``/``no``/``false``) forces every
#: replay onto the object path; ``REPRO_FASTPATH=batched`` pins the
#: batched loop — the A/B/C switch the perf benchmarks and
#: ``docs/performance.md`` use to measure each tier.
_MODE = _mode_from_env(os.environ.get("REPRO_FASTPATH"))


def enable_fastpath() -> None:
    """Re-enable the compiled replay loop (the default: kernels on)."""
    global _MODE
    _MODE = "kernel"


def disable_fastpath() -> None:
    """Force every replay onto the object path (A/B testing and the
    equivalence suite)."""
    global _MODE
    _MODE = "off"


def fastpath_enabled() -> bool:
    """Whether a compiled loop (batched or kernel) may be selected."""
    return _MODE != "off"


def fastpath_mode() -> str:
    """The current replay tier: ``kernel``, ``batched``, or ``off``."""
    return _MODE


def set_fastpath_mode(mode: str) -> None:
    """Pin the replay tier (see :data:`_MODES`)."""
    if mode not in _MODES:
        raise ValueError(f"unknown fastpath mode {mode!r}; choose from {_MODES}")
    global _MODE
    _MODE = mode


def kernels_enabled() -> bool:
    """Whether the specialized kernels may be selected."""
    return _MODE == "kernel"


class object_path:
    """Context manager: run the enclosed replays on the object path."""

    def __enter__(self) -> None:
        self._was = _MODE
        disable_fastpath()

    def __exit__(self, *exc) -> None:
        global _MODE
        _MODE = self._was


class batched_path:
    """Context manager: pin the enclosed replays to the batched loop
    (kernels off) — the baseline for kernel A/B measurements."""

    def __enter__(self) -> None:
        self._was = _MODE
        set_fastpath_mode("batched")

    def __exit__(self, *exc) -> None:
        global _MODE
        _MODE = self._was


def replay_compiled(sim: CacheSimulator, compiled: CompiledTraceLog) -> None:
    """Replay *compiled* into *sim*'s manager, stats, and ledger.

    The caller (:meth:`CacheSimulator.run`) guarantees no sanitizer is
    attached and ``sim.manager.fastpath_safe`` is true.
    """
    manager = sim.manager
    account = sim.account
    stats = sim.stats
    insert = manager.insert
    charge_creation = account.charge_trace_creation if account else None
    if account is not None:
        # Hoisted Table 2 constants: fold prices evictions/promotions
        # with the exact expressions CostModel.eviction/promotion use,
        # accumulated onto the account in the same per-effect order,
        # so float totals match the object path bit for bit.
        model = account.model
        ev_per, ev_base = model.eviction_per_byte, model.eviction_base
        pr_per, pr_base = model.promotion_per_byte, model.promotion_base

    # One prototype entry per managed cache, resolved once.  A *plain*
    # cache (hits are exactly a trace-record touch) carries the cache
    # object so folding an insertion can capture the live CachedTrace;
    # the loop then mutates that record in place — no call at all.
    # Anything else carries a bound hit handler, and its prototype
    # doubles as the (shared, immutable) resident entry.
    plain_names = manager.plain_hit_caches()
    entries: dict[str, tuple] = {}
    for cache in manager.caches():
        if cache.name in plain_names:
            entries[cache.name] = (cache.name, None, cache)
        else:
            entries[cache.name] = (cache.name, manager.hit_handler(cache.name), None)

    # trace_id -> (size, module_id) of every trace ever created.
    known: dict[int, tuple[int, int]] = {}
    # trace_id -> (cache name, handler | None, CachedTrace | None),
    # maintained purely from the effect stream.
    resident: dict[int, tuple] = {}
    pending_pins: set[int] = set()

    hits = misses = creations = 0
    evictions = unmap_evictions = flush_evictions = 0
    evicted_bytes = promotions = promoted_bytes = 0
    hits_by_cache: dict[str, int] = {}

    def fold(effects) -> None:
        """Residency + counter update + effect pricing, in the same
        per-effect order as ``CacheSimulator._absorb`` followed by
        ``OverheadAccount.charge_effects``."""
        nonlocal evictions, unmap_evictions, flush_evictions
        nonlocal evicted_bytes, promotions, promoted_bytes
        for effect in effects:
            kind = type(effect)
            if kind is Inserted:
                proto = entries[effect.cache]
                cache = proto[2]
                if cache is None:
                    resident[effect.trace_id] = proto
                else:
                    # find, not get: the cascade may already have
                    # evicted this trace again — a later Evicted
                    # effect in this batch then pops the entry, and
                    # no access can land in between.
                    trace = cache.find(effect.trace_id)
                    resident[effect.trace_id] = (proto[0], None, trace)
            elif kind is Evicted:
                resident.pop(effect.trace_id, None)
                reason = effect.reason
                if reason is EvictionReason.UNMAP:
                    unmap_evictions += 1
                elif reason is EvictionReason.FLUSH:
                    flush_evictions += 1
                else:
                    evictions += 1
                evicted_bytes += effect.size
                if account is not None:
                    account.evictions += ev_per * effect.size + ev_base
            else:  # Promoted
                proto = entries[effect.dst]
                cache = proto[2]
                if cache is None:
                    resident[effect.trace_id] = proto
                else:
                    trace = cache.find(effect.trace_id)
                    resident[effect.trace_id] = (proto[0], None, trace)
                promotions += 1
                promoted_bytes += effect.size
                if account is not None:
                    account.promotions += pr_per * effect.size + pr_base

    resident_get = resident.get
    known_get = known.get

    # .tolist() converts the packed columns to plain ints once;
    # array.__getitem__ would re-box every element on every read.
    # zip re-packs them into per-record tuples, which unpack faster in
    # the loop than six list subscripts.
    n = len(compiled.op)
    records = zip(
        compiled.op.tolist(),
        compiled.time.tolist(),
        compiled.trace_id.tolist(),
        compiled.size.tolist(),
        compiled.module.tolist(),
        compiled.repeat.tolist(),
    )
    for op, time, trace_id, size, module_id, repeat in records:
        if op == OP_ACCESS:
            entry = resident_get(trace_id)
            if entry is not None:
                # Hot path: a resident access.
                cache_name, handler, trace = entry
                if trace is not None:
                    # Plain hit: mutate the trace record in place.
                    trace.access_count += repeat
                    trace.last_access = time
                else:
                    effects = handler(trace_id, time, repeat)
                    if effects:
                        fold(effects)
                hits += repeat
                if cache_name in hits_by_cache:
                    hits_by_cache[cache_name] += repeat
                else:
                    hits_by_cache[cache_name] = repeat
            else:
                info = known_get(trace_id)
                if info is None:
                    raise LogFormatError(
                        f"access to trace {trace_id} before its creation"
                    )
                # Conflict miss: regenerate and re-insert, then the
                # remaining repeats hit the fresh copy.
                size, module_id = info
                misses += 1
                if charge_creation:
                    charge_creation(size)
                fold(insert(trace_id, size, module_id, time))
                if trace_id in pending_pins:
                    manager.pin(trace_id)
                remaining = repeat - 1
                if remaining > 0:
                    entry = resident_get(trace_id)
                    if entry is None:
                        # Uncacheable trace: every entry regenerates
                        # from the basic-block cache.
                        misses += remaining
                        if charge_creation:
                            for _ in range(remaining):
                                charge_creation(size)
                    else:
                        cache_name, handler, trace = entry
                        if trace is not None:
                            trace.access_count += remaining
                            trace.last_access = time
                        else:
                            effects = handler(trace_id, time, remaining)
                            if effects:
                                fold(effects)
                        hits += remaining
                        if cache_name in hits_by_cache:
                            hits_by_cache[cache_name] += remaining
                        else:
                            hits_by_cache[cache_name] = remaining
        elif op == OP_CREATE:
            known[trace_id] = (size, module_id)
            creations += 1
            if charge_creation:
                charge_creation(size)
            fold(insert(trace_id, size, module_id, time))
        elif op == OP_UNMAP:
            fold(manager.unmap_module(module_id, time))
            # The unmapped code can never be re-entered under these ids.
            if pending_pins:
                for dead_id, (_, mod) in known.items():
                    if mod == module_id:
                        pending_pins.discard(dead_id)
        elif op == OP_PIN:
            if trace_id in resident:
                manager.pin(trace_id)
            else:
                pending_pins.add(trace_id)
        elif op == OP_UNPIN:
            pending_pins.discard(trace_id)
            if trace_id in resident:
                manager.unpin(trace_id)
        else:  # OP_END
            break

    # Every access entry lands in exactly one of hits/misses, so the
    # loop skips the per-record access counter.
    stats.accesses += hits + misses
    stats.hits += hits
    stats.misses += misses
    stats.creations += creations
    stats.evictions += evictions
    stats.unmap_evictions += unmap_evictions
    stats.flush_evictions += flush_evictions
    stats.promotions += promotions
    stats.evicted_bytes += evicted_bytes
    stats.promoted_bytes += promoted_bytes
    for cache_name, count in hits_by_cache.items():
        stats.hits_by_cache[cache_name] = (
            stats.hits_by_cache.get(cache_name, 0) + count
        )

    FASTPATH_TOTALS["fast_replays"] += 1
    FASTPATH_TOTALS["records_replayed"] += n
