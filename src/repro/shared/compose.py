"""Composing per-process workloads for multi-tenant scenarios.

A *process workload* pairs a trace log with the content key of every
trace it creates (:class:`~repro.shared.identity.TraceKey`), which is
what lets the multi-process simulator recognize identical code across
processes:

* Two processes running the **same benchmark** (same binary, same
  recording) generate identical logs, so every trace keys equal —
  the homogeneous mix deduplicates fully under sharing.
* Heterogeneous processes share through a **shared-library overlay**:
  one library log (synthesized once, from one library-private seed) is
  merged into every process's log with its trace/module ids remapped
  into reserved ranges and its times rescaled to the host process's
  duration.  Library keys are derived from the *original* library
  identity, so every process agrees on them — the cross-process
  overlap ShareJIT observes from frameworks and system libraries.

Library ``ModuleUnmap`` records are dropped during the overlay: a
shared library outlives any one process's phases, and per-process
unmap of shared code is exactly what the reference-counted shared
cache's detach path models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.rand import derive_seed
from repro.shared.identity import TraceKey
from repro.tracelog.records import (
    EndOfLog,
    ModuleUnmap,
    TraceAccess,
    TraceCreate,
    TraceLog,
    TracePin,
    TraceUnpin,
)
from repro.fastpath.artifacts import cached_log
from repro.workloads.catalog import get_profile

#: Namespace of shared-library trace keys (never collides with a
#: benchmark name).
LIBRARY_NAMESPACE = "__shlib__"

#: Library trace ids are remapped above every app trace id.
LIBRARY_TRACE_BASE = 1 << 24

#: Library module ids are remapped above every app module id.
LIBRARY_MODULE_BASE = 1 << 20

#: Benchmark profile the shared-library overlay is synthesized from.
DEFAULT_LIBRARY = "gap"

#: Extra scale divisor on the library profile (shrinks the library
#: relative to the app it is linked into).
DEFAULT_LIBRARY_SCALE = 2.0


@dataclass
class ProcessWorkload:
    """One process's replayable workload.

    Attributes:
        name: Display name (benchmark, plus ``+shlib`` when composed).
        log: The process's trace log.
        keys: Content key per created trace id (covering every
            ``TraceCreate`` in :attr:`log`).
    """

    name: str
    log: TraceLog
    keys: dict[int, TraceKey] = field(default_factory=dict)


def workload_keys(namespace: str, log: TraceLog) -> dict[int, TraceKey]:
    """Content keys of every trace a synthesized log creates."""
    return {
        record.trace_id: TraceKey.from_workload(
            namespace, record.trace_id, record.size, record.module_id
        )
        for record in log.creates()
    }


def compose_with_library(
    app_name: str, app_log: TraceLog, library_log: TraceLog
) -> ProcessWorkload:
    """Link the shared-library overlay into one process's log.

    Library record times are rescaled onto the app's virtual-time axis
    (so library reuse spreads across the whole run), ids are remapped
    into the reserved ranges, and library unmaps are dropped.
    """
    app_end = max(1, app_log.end_time)
    lib_end = max(1, library_log.end_time)
    keys = workload_keys(app_name, app_log)
    lib_records: list = []
    for record in library_log.records:
        if isinstance(record, (ModuleUnmap, EndOfLog)):
            continue
        time = record.time * app_end // lib_end
        if isinstance(record, TraceCreate):
            new_id = record.trace_id + LIBRARY_TRACE_BASE
            keys[new_id] = TraceKey.from_workload(
                LIBRARY_NAMESPACE, record.trace_id, record.size, record.module_id
            )
            lib_records.append(
                TraceCreate(
                    time=time,
                    trace_id=new_id,
                    size=record.size,
                    module_id=record.module_id + LIBRARY_MODULE_BASE,
                )
            )
        elif isinstance(record, TraceAccess):
            lib_records.append(
                TraceAccess(
                    time=time,
                    trace_id=record.trace_id + LIBRARY_TRACE_BASE,
                    repeat=record.repeat,
                )
            )
        elif isinstance(record, TracePin):
            lib_records.append(
                TracePin(time=time, trace_id=record.trace_id + LIBRARY_TRACE_BASE)
            )
        elif isinstance(record, TraceUnpin):
            lib_records.append(
                TraceUnpin(time=time, trace_id=record.trace_id + LIBRARY_TRACE_BASE)
            )
    merged = TraceLog(
        benchmark=f"{app_name}+shlib",
        duration_seconds=app_log.duration_seconds,
        code_footprint=app_log.code_footprint + library_log.code_footprint,
    )
    app_records = [r for r in app_log.records if not isinstance(r, EndOfLog)]
    a = b = 0
    while a < len(app_records) or b < len(lib_records):
        # Two-pointer merge; the app wins time ties so per-stream order
        # and the merge result are both deterministic.
        if b >= len(lib_records) or (
            a < len(app_records) and app_records[a].time <= lib_records[b].time
        ):
            merged.append(app_records[a])
            a += 1
        else:
            merged.append(lib_records[b])
            b += 1
    merged.append(EndOfLog(time=app_end))
    merged.validate()
    return ProcessWorkload(name=merged.benchmark, log=merged, keys=keys)


def build_process_workloads(
    benchmarks: list[str],
    seed: int = 42,
    scale_multiplier: float = 1.0,
    library: str | None = DEFAULT_LIBRARY,
    library_scale: float = DEFAULT_LIBRARY_SCALE,
) -> list[ProcessWorkload]:
    """One workload per entry of *benchmarks* (index = process id).

    Repeated benchmark names produce content-identical workloads (same
    binary run twice); with *library* set, every process additionally
    links the same shared-library overlay.

    Raises:
        ConfigError: for an empty mix or a non-positive library scale.
    """
    if not benchmarks:
        raise ConfigError("a process mix needs at least one benchmark")
    if library is not None and library_scale <= 0:
        raise ConfigError(f"library scale must be > 0, got {library_scale:g}")
    library_log = None
    if library is not None:
        profile = get_profile(library)
        library_log = cached_log(
            profile,
            seed=derive_seed(seed, "shared.library"),
            scale=profile.default_scale * scale_multiplier * library_scale,
        )
    composed: dict[str, ProcessWorkload] = {}
    workloads: list[ProcessWorkload] = []
    for name in benchmarks:
        if name not in composed:
            profile = get_profile(name)
            app_log = cached_log(
                profile,
                seed=seed,
                scale=profile.default_scale * scale_multiplier,
            )
            if library_log is None:
                composed[name] = ProcessWorkload(
                    name=name, log=app_log, keys=workload_keys(name, app_log)
                )
            else:
                composed[name] = compose_with_library(name, app_log, library_log)
        workloads.append(composed[name])
    return workloads
