"""Composing per-process workloads for multi-tenant scenarios.

A *process workload* pairs a trace log with the content key of every
trace it creates (:class:`~repro.shared.identity.TraceKey`), which is
what lets the multi-process simulator recognize identical code across
processes:

* Two processes running the **same benchmark** (same binary, same
  recording) generate identical logs, so every trace keys equal —
  the homogeneous mix deduplicates fully under sharing.
* Heterogeneous processes share through a **shared-library overlay**:
  one library log (synthesized once, from one library-private seed) is
  merged into every process's log with its trace/module ids remapped
  into reserved ranges and its times rescaled to the host process's
  duration.  Library keys are derived from the *original* library
  identity, so every process agrees on them — the cross-process
  overlap ShareJIT observes from frameworks and system libraries.

Libraries are prepared once per library log (:func:`prepare_library`):
the id remapping and the sha256 content keys are computed a single
time, and every app the library links into reuses the prepared form —
only the per-app time rescale runs per merge.

Fleet-scale mixes replace the single fixed overlay with a *catalog* of
libraries ranked by popularity (:data:`LIBRARY_CATALOG`).  Each process
draws a **reach** from a seeded Zipf distribution
(:func:`zipf_reaches`) and links the top-``reach`` catalog entries, so
the rank-``i`` library is mapped by a Zipf-shaped share of the fleet
(``P(reach > i)``) while per-process library sets stay nested prefixes
— which bounds the number of *distinct* workload contents by
``len(palette) * len(catalog)`` regardless of the process count.

Library ``ModuleUnmap`` records are dropped during the overlay: a
shared library outlives any one process's phases, and per-process
unmap of shared code is exactly what the reference-counted shared
cache's detach path models.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ConfigError
from repro.rand import derive_seed, substream
from repro.shared.identity import TraceKey
from repro.tracelog.records import (
    EndOfLog,
    LogRecord,
    ModuleUnmap,
    TraceAccess,
    TraceCreate,
    TraceLog,
    TracePin,
    TraceUnpin,
)
from repro.fastpath.artifacts import cached_log
from repro.workloads.catalog import get_profile

#: Namespace of shared-library trace keys (never collides with a
#: benchmark name).  Catalog ranks beyond the first suffix the library
#: name (``__shlib__:mcf``) so distinct libraries never alias.
LIBRARY_NAMESPACE = "__shlib__"

#: Library trace ids are remapped above every app trace id (the
#: rank-``k`` catalog entry uses the ``(k + 1)``-th multiple).
LIBRARY_TRACE_BASE = 1 << 24

#: Library module ids are remapped above every app module id.
LIBRARY_MODULE_BASE = 1 << 20

#: Benchmark profile the shared-library overlay is synthesized from.
DEFAULT_LIBRARY = "gap"

#: Extra scale divisor on the library profile (shrinks the library
#: relative to the app it is linked into).
DEFAULT_LIBRARY_SCALE = 2.0

#: Library catalog of the fleet mixes, in popularity-rank order.  The
#: rank-0 entry is the classic overlay (same profile, same seed
#: derivation), so a reach-1 fleet process is byte-identical to the
#: existing heterogeneous composition.
LIBRARY_CATALOG = ("gap", "mcf", "art", "eon")

#: Zipf skew of the per-process library-reach draw.
DEFAULT_ZIPF_SKEW = 1.1

# Compact record kinds of a prepared library (ModuleUnmap/EndOfLog are
# dropped at preparation time, so only four kinds survive).
_CREATE, _ACCESS, _PIN, _UNPIN = range(4)


@dataclass
class ProcessWorkload:
    """One process's replayable workload.

    Attributes:
        name: Display name (benchmark, plus ``+shlib`` when composed).
        log: The process's trace log.
        keys: Content key per created trace id (covering every
            ``TraceCreate`` in :attr:`log`).
    """

    name: str
    log: TraceLog
    keys: dict[int, TraceKey] = field(default_factory=dict)


@dataclass(frozen=True)
class PreparedLibrary:
    """A shared-library log pre-remapped for overlay composition.

    Trace/module ids are already shifted into the library's reserved
    range and every content key is already hashed, so linking the
    library into an app costs only the per-app time rescale — the
    remap and the sha256 work run once per library, not once per
    distinct app (let alone once per process).

    Attributes:
        name: Library benchmark name.
        rank: Popularity rank in the catalog (0 = most popular).
        end_time: The library log's own end time (rescale denominator).
        code_footprint: The library log's code footprint.
        keys: Content key per *remapped* trace id.
        records: ``(time, kind, trace_id, size, module_id, repeat)``
            tuples in log order, ids remapped, times unscaled.
    """

    name: str
    rank: int
    end_time: int
    code_footprint: int
    keys: dict[int, TraceKey]
    records: tuple[tuple[int, int, int, int, int, int], ...]


def workload_keys(namespace: str, log: TraceLog) -> dict[int, TraceKey]:
    """Content keys of every trace a synthesized log creates."""
    return {
        record.trace_id: TraceKey.from_workload(
            namespace, record.trace_id, record.size, record.module_id
        )
        for record in log.creates()
    }


def library_namespace(name: str, rank: int) -> str:
    """Key namespace of the rank-``rank`` catalog library."""
    if rank == 0:
        return LIBRARY_NAMESPACE
    return f"{LIBRARY_NAMESPACE}:{name}"


def prepare_library(
    name: str, library_log: TraceLog, rank: int = 0
) -> PreparedLibrary:
    """Pre-remap *library_log* into overlay form (once per library).

    Raises:
        ConfigError: for a negative rank.
    """
    if rank < 0:
        raise ConfigError(f"library rank must be >= 0, got {rank}")
    namespace = library_namespace(name, rank)
    trace_base = LIBRARY_TRACE_BASE * (rank + 1)
    module_base = LIBRARY_MODULE_BASE * (rank + 1)
    keys: dict[int, TraceKey] = {}
    records: list[tuple[int, int, int, int, int, int]] = []
    for record in library_log.records:
        if isinstance(record, (ModuleUnmap, EndOfLog)):
            continue
        if isinstance(record, TraceCreate):
            new_id = record.trace_id + trace_base
            keys[new_id] = TraceKey.from_workload(
                namespace, record.trace_id, record.size, record.module_id
            )
            records.append(
                (
                    record.time,
                    _CREATE,
                    new_id,
                    record.size,
                    record.module_id + module_base,
                    0,
                )
            )
        elif isinstance(record, TraceAccess):
            records.append(
                (
                    record.time,
                    _ACCESS,
                    record.trace_id + trace_base,
                    0,
                    0,
                    record.repeat,
                )
            )
        elif isinstance(record, TracePin):
            records.append(
                (record.time, _PIN, record.trace_id + trace_base, 0, 0, 0)
            )
        elif isinstance(record, TraceUnpin):
            records.append(
                (record.time, _UNPIN, record.trace_id + trace_base, 0, 0, 0)
            )
    return PreparedLibrary(
        name=name,
        rank=rank,
        end_time=max(1, library_log.end_time),
        code_footprint=library_log.code_footprint,
        keys=keys,
        records=tuple(records),
    )


def _rescaled_records(
    library: PreparedLibrary, app_end: int
) -> list[LogRecord]:
    """The library's record objects on the app's virtual-time axis."""
    lib_end = library.end_time
    out: list[LogRecord] = []
    for time, kind, trace_id, size, module_id, repeat in library.records:
        scaled = time * app_end // lib_end
        if kind == _ACCESS:
            out.append(
                TraceAccess(time=scaled, trace_id=trace_id, repeat=repeat)
            )
        elif kind == _CREATE:
            out.append(
                TraceCreate(
                    time=scaled, trace_id=trace_id, size=size, module_id=module_id
                )
            )
        elif kind == _PIN:
            out.append(TracePin(time=scaled, trace_id=trace_id))
        else:
            out.append(TraceUnpin(time=scaled, trace_id=trace_id))
    return out


def compose_with_libraries(
    app_name: str,
    app_log: TraceLog,
    libraries: Sequence[PreparedLibrary],
) -> ProcessWorkload:
    """Link prepared shared libraries into one process's log.

    Library record times are rescaled onto the app's virtual-time axis
    (so library reuse spreads across the whole run); the remapped ids
    and hashed keys come straight from the prepared form.  Libraries
    merge in rank order, and the already-merged stream wins time ties
    — for a single library this reproduces, byte for byte, the
    app-wins-ties merge the 2/4/8-process tables were built on.
    """
    app_end = max(1, app_log.end_time)
    keys = workload_keys(app_name, app_log)
    merged_records = [r for r in app_log.records if not isinstance(r, EndOfLog)]
    footprint = app_log.code_footprint
    for library in libraries:
        keys.update(library.keys)
        footprint += library.code_footprint
        lib_records = _rescaled_records(library, app_end)
        previous = merged_records
        merged_records = []
        a = b = 0
        while a < len(previous) or b < len(lib_records):
            # Two-pointer merge; the earlier-ranked stream wins time
            # ties so per-stream order and the merge result are both
            # deterministic.
            if b >= len(lib_records) or (
                a < len(previous) and previous[a].time <= lib_records[b].time
            ):
                merged_records.append(previous[a])
                a += 1
            else:
                merged_records.append(lib_records[b])
                b += 1
    suffix = "+shlib" if len(libraries) == 1 else f"+shlib{len(libraries)}"
    merged = TraceLog(
        benchmark=f"{app_name}{suffix}" if libraries else app_name,
        duration_seconds=app_log.duration_seconds,
        code_footprint=footprint,
    )
    merged.records = merged_records
    merged.append(EndOfLog(time=app_end))
    merged.validate()
    return ProcessWorkload(name=merged.benchmark, log=merged, keys=keys)


def compose_with_library(
    app_name: str, app_log: TraceLog, library_log: TraceLog
) -> ProcessWorkload:
    """Link one shared-library overlay into one process's log.

    Small-N convenience over :func:`prepare_library` +
    :func:`compose_with_libraries`; callers composing many apps against
    the same library should prepare it once instead.
    """
    prepared = prepare_library(DEFAULT_LIBRARY, library_log, rank=0)
    return compose_with_libraries(app_name, app_log, [prepared])


def zipf_reaches(
    processes: int,
    catalog_size: int,
    seed: int = 42,
    skew: float = DEFAULT_ZIPF_SKEW,
) -> list[int]:
    """Per-process library reach under a seeded Zipf draw.

    Process ``p`` links the top-``reaches[p]`` catalog libraries, so
    reach ``r`` is drawn with probability proportional to ``r**-skew``
    over ``{1, ..., catalog_size}``.  Nested prefixes keep distinct
    workload contents bounded while giving every library rank a
    Zipf-shaped fleet-wide popularity.

    Raises:
        ConfigError: for a non-positive process count, catalog size, or
            skew.
    """
    if processes < 1:
        raise ConfigError(f"reach draw needs >= 1 process, got {processes}")
    if catalog_size < 1:
        raise ConfigError(
            f"reach draw needs a non-empty catalog, got {catalog_size}"
        )
    if skew <= 0:
        raise ConfigError(f"zipf skew must be > 0, got {skew:g}")
    cumulative: list[float] = []
    total = 0.0
    for rank in range(1, catalog_size + 1):
        total += rank**-skew
        cumulative.append(total)
    rng = substream(seed, "shared.fleet.zipf")
    return [
        bisect_left(cumulative, rng.random() * total) + 1
        for _ in range(processes)
    ]


def build_library_catalog(
    seed: int = 42,
    scale_multiplier: float = 1.0,
    reach: int = 1,
    catalog: Sequence[str] = LIBRARY_CATALOG,
    library_scale: float = DEFAULT_LIBRARY_SCALE,
) -> list[PreparedLibrary]:
    """Synthesize and prepare the top-``reach`` catalog libraries.

    The rank-0 entry keeps the classic ``shared.library`` seed
    derivation (so reach-1 compositions reproduce the fixed-overlay
    workloads exactly); deeper ranks derive per-library seeds.

    Raises:
        ConfigError: for a reach outside ``[0, len(catalog)]`` or a
            non-positive library scale.
    """
    if not 0 <= reach <= len(catalog):
        raise ConfigError(
            f"library reach must be in [0, {len(catalog)}], got {reach}"
        )
    if library_scale <= 0:
        raise ConfigError(f"library scale must be > 0, got {library_scale:g}")
    prepared: list[PreparedLibrary] = []
    for rank in range(reach):
        name = catalog[rank]
        profile = get_profile(name)
        lib_seed = (
            derive_seed(seed, "shared.library")
            if rank == 0
            else derive_seed(seed, f"shared.library.{name}")
        )
        log = cached_log(
            profile,
            seed=lib_seed,
            scale=profile.default_scale * scale_multiplier * library_scale,
        )
        prepared.append(prepare_library(name, log, rank=rank))
    return prepared


def build_process_workloads(
    benchmarks: list[str],
    seed: int = 42,
    scale_multiplier: float = 1.0,
    library: str | None = DEFAULT_LIBRARY,
    library_scale: float = DEFAULT_LIBRARY_SCALE,
) -> list[ProcessWorkload]:
    """One workload per entry of *benchmarks* (index = process id).

    Repeated benchmark names produce content-identical workloads (same
    binary run twice); with *library* set, every process additionally
    links the same shared-library overlay (prepared once, however many
    distinct apps it links into).

    Raises:
        ConfigError: for an empty mix or a non-positive library scale.
    """
    if not benchmarks:
        raise ConfigError("a process mix needs at least one benchmark")
    if library is not None and library_scale <= 0:
        raise ConfigError(f"library scale must be > 0, got {library_scale:g}")
    prepared: list[PreparedLibrary] = []
    if library is not None:
        profile = get_profile(library)
        library_log = cached_log(
            profile,
            seed=derive_seed(seed, "shared.library"),
            scale=profile.default_scale * scale_multiplier * library_scale,
        )
        prepared = [prepare_library(library, library_log, rank=0)]
    composed: dict[str, ProcessWorkload] = {}
    workloads: list[ProcessWorkload] = []
    for name in benchmarks:
        if name not in composed:
            profile = get_profile(name)
            app_log = cached_log(
                profile,
                seed=seed,
                scale=profile.default_scale * scale_multiplier,
            )
            if not prepared:
                composed[name] = ProcessWorkload(
                    name=name, log=app_log, keys=workload_keys(name, app_log)
                )
            else:
                composed[name] = compose_with_libraries(
                    name, app_log, prepared
                )
        workloads.append(composed[name])
    return workloads
