"""Cache groups: N processes' hierarchies under one sharing policy.

A :class:`SharedCacheGroup` is the multi-process analogue of
:class:`~repro.core.manager.CacheManager`: every operation carries the
acting process index, trace identity is the interner's *gid* (content
address), and insertions report whether the generation work was
avoided because an identical trace was already shared
(:class:`InsertOutcome`).

Three concrete groups implement the :data:`~repro.shared.policy.SharingPolicy`
points; build them through :func:`make_group`:

* :class:`PrivateCacheGroup` — one full generational hierarchy per
  process (the paper's world, replicated N times; the baseline the
  shared experiments compare against).
* :class:`SharedPersistentGroup` — per-process nursery/probation in
  front of one :class:`~repro.shared.cache.SharedPersistentCache`;
  probation graduates *attach* instead of inserting when their content
  is already shared.
* :class:`SharedAllGroup` — a single hierarchy serves every process,
  with group-level reference counting so an unmap by one process only
  deletes traces no other process still maps.

All direct mutation of the shared cache lives here (and in
:mod:`repro.shared.cache` itself) — the ``shared-cache-api`` cachelint
rule keeps other layers out.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.core.config import GenerationalConfig, PromotionMode
from repro.core.effects import (
    AccessOutcome,
    Effect,
    Evicted,
    EvictionReason,
    Inserted,
    Promoted,
)
from repro.core.generational import NURSERY, PROBATION, GenerationalCacheManager
from repro.errors import ConfigError, InvariantViolation
from repro.policies import POLICIES
from repro.policies.base import CachedTrace, CodeCache
from repro.shared.cache import SHARED_PERSISTENT, SharedPersistentCache
from repro.shared.policy import SharingConfig, SharingPolicy, TemperatureTracker


@dataclass
class InsertOutcome:
    """Result of asking the group to insert a (re)generated trace.

    Attributes:
        effects: Physical effects (insertions, cascaded evictions and
            promotions).  Empty when the insert deduplicated.
        deduped: True when an identical trace was already resident in
            shared memory — the process attached to the existing copy
            and no code was generated.
    """

    effects: list[Effect] = field(default_factory=list)
    deduped: bool = False


def _make_cache(config: GenerationalConfig, capacity: int, name: str) -> CodeCache:
    policy_class = POLICIES.get(config.local_policy)
    if policy_class is None:
        raise ConfigError(
            f"unknown local policy {config.local_policy!r}; "
            f"choose from {sorted(POLICIES)}"
        )
    kwargs = {}
    if config.local_policy == "pseudo-circular":
        kwargs["fill_holes"] = config.fill_holes
    return policy_class(capacity, name=name, **kwargs)


class SharedCacheGroup(abc.ABC):
    """N per-process cache views over one sharing policy."""

    #: Human-readable description for reports.
    name: str = "abstract-group"

    def __init__(
        self,
        capacities: Sequence[int],
        config: GenerationalConfig,
        sharing: SharingConfig,
    ) -> None:
        if not capacities:
            raise ConfigError("a cache group needs at least one process")
        if any(cap < 3 for cap in capacities):
            raise ConfigError(f"per-process capacities too small: {capacities}")
        self.capacities = tuple(capacities)
        self.config = config
        self.sharing = sharing

    @property
    def n_processes(self) -> int:
        return len(self.capacities)

    @property
    def total_capacity(self) -> int:
        """Combined capacity across all caches in the group."""
        return sum(cache.capacity for cache in self._iter_caches())

    # -- abstract per-process operations --------------------------------

    @abc.abstractmethod
    def lookup(self, process: int, gid: int) -> str | None:
        """Name of the cache serving *gid* for *process*, or None."""

    @abc.abstractmethod
    def on_hit(
        self, process: int, gid: int, time: int, count: int, module_id: int
    ) -> AccessOutcome:
        """Notify the group of *count* hits by *process* at *time*."""

    @abc.abstractmethod
    def insert(
        self, process: int, gid: int, size: int, module_id: int, time: int
    ) -> InsertOutcome:
        """Insert a trace *process* just (re)generated — or attach to
        an identical shared copy without generating anything."""

    @abc.abstractmethod
    def unmap_module(
        self, process: int, module_id: int, time: int
    ) -> list[Effect]:
        """*process* unmapped *module_id*: drop its claims; evict only
        copies no process still maps."""

    @abc.abstractmethod
    def pin(self, process: int, gid: int) -> bool:
        """Pin *gid* on behalf of *process*; True when found."""

    @abc.abstractmethod
    def unpin(self, process: int, gid: int) -> bool:
        """Drop *process*'s pin claim on *gid*; True when found."""

    @abc.abstractmethod
    def check_invariants(self) -> None:
        """Verify every cache and the cross-process bookkeeping."""

    @abc.abstractmethod
    def _iter_caches(self) -> Iterable[CodeCache]:
        """Every physical cache arena in the group."""

    # -- group-wide accounting ------------------------------------------

    def resident_bytes(self) -> int:
        """Physical bytes resident across the whole group."""
        return sum(cache.used_bytes for cache in self._iter_caches())

    def resident_copies(self) -> dict[int, int]:
        """Physical copy count per resident gid (insertion order)."""
        counts: dict[int, int] = {}
        for cache in self._iter_caches():
            for gid in cache.arena.trace_ids():
                counts[gid] = counts.get(gid, 0) + 1
        return counts

    def duplicated_bytes(self, size_of: Callable[[int], int]) -> int:
        """Bytes spent on redundant copies: for each content resident
        more than once, every copy beyond the first."""
        return sum(
            (copies - 1) * size_of(gid)
            for gid, copies in self.resident_copies().items()
            if copies > 1
        )


def make_group(
    capacities: Sequence[int],
    config: GenerationalConfig,
    sharing: SharingConfig,
) -> SharedCacheGroup:
    """Build the cache group *sharing* describes.

    Raises:
        ConfigError: for inconsistent policy/knob combinations.
    """
    if sharing.temperature and sharing.policy is not SharingPolicy.SHARED_PERSISTENT:
        raise ConfigError(
            "temperature promotion requires the shared-persistent policy "
            f"(got {sharing.policy.value!r})"
        )
    if sharing.policy is SharingPolicy.PRIVATE:
        return PrivateCacheGroup(capacities, config, sharing)
    if sharing.policy is SharingPolicy.SHARED_ALL:
        return SharedAllGroup(capacities, config, sharing)
    return SharedPersistentGroup(capacities, config, sharing)


# ----------------------------------------------------------------------
# private: the replicated-paper baseline
# ----------------------------------------------------------------------


class PrivateCacheGroup(SharedCacheGroup):
    """Every process owns a full generational hierarchy; no sharing."""

    def __init__(
        self,
        capacities: Sequence[int],
        config: GenerationalConfig,
        sharing: SharingConfig,
    ) -> None:
        super().__init__(capacities, config, sharing)
        self._managers = [
            GenerationalCacheManager(cap, config) for cap in self.capacities
        ]
        self.name = f"group[private x{self.n_processes}]"

    def lookup(self, process: int, gid: int) -> str | None:
        return self._managers[process].lookup(gid)

    def on_hit(
        self, process: int, gid: int, time: int, count: int, module_id: int
    ) -> AccessOutcome:
        return self._managers[process].on_hit(gid, time, count)

    def insert(
        self, process: int, gid: int, size: int, module_id: int, time: int
    ) -> InsertOutcome:
        effects = self._managers[process].insert(gid, size, module_id, time)
        return InsertOutcome(effects=effects, deduped=False)

    def unmap_module(
        self, process: int, module_id: int, time: int
    ) -> list[Effect]:
        return self._managers[process].unmap_module(module_id, time)

    def pin(self, process: int, gid: int) -> bool:
        return self._managers[process].pin(gid)

    def unpin(self, process: int, gid: int) -> bool:
        return self._managers[process].unpin(gid)

    def check_invariants(self) -> None:
        for manager in self._managers:
            manager.check_invariants()

    def _iter_caches(self) -> Iterable[CodeCache]:
        for manager in self._managers:
            yield from manager.caches()


# ----------------------------------------------------------------------
# shared-persistent: private churn, shared long-lived code
# ----------------------------------------------------------------------


class SharedPersistentGroup(SharedCacheGroup):
    """Per-process nursery/probation over one shared persistent cache.

    Each process keeps its configured nursery and probation fractions
    of its own budget; the per-process persistent shares pool into one
    :class:`SharedPersistentCache`, so total capacity equals the
    private baseline exactly.
    """

    def __init__(
        self,
        capacities: Sequence[int],
        config: GenerationalConfig,
        sharing: SharingConfig,
    ) -> None:
        super().__init__(capacities, config, sharing)
        self._nurseries: list[CodeCache] = []
        self._probations: list[CodeCache] = []
        shared_capacity = 0
        for cap in self.capacities:
            nursery_size, probation_size, persistent_size = config.sizes(cap)
            self._nurseries.append(_make_cache(config, nursery_size, NURSERY))
            self._probations.append(_make_cache(config, probation_size, PROBATION))
            shared_capacity += persistent_size
        self.shared = SharedPersistentCache(
            _make_cache(config, shared_capacity, SHARED_PERSISTENT)
        )
        self._tracker = (
            TemperatureTracker(
                threshold=sharing.temperature_threshold,
                half_life=sharing.temperature_half_life,
            )
            if sharing.temperature
            else None
        )
        #: Pin claims on shared copies: gid -> claiming processes.
        self._pin_claims: dict[int, set[int]] = {}
        self.name = (
            f"group[{sharing.label()} x{self.n_processes}, {config.label()}]"
        )

    # -- operations ------------------------------------------------------

    def lookup(self, process: int, gid: int) -> str | None:
        if gid in self._nurseries[process]:
            return NURSERY
        if gid in self._probations[process]:
            return PROBATION
        if self.shared.contains(gid):
            return SHARED_PERSISTENT
        return None

    def on_hit(
        self, process: int, gid: int, time: int, count: int, module_id: int
    ) -> AccessOutcome:
        if self._tracker is not None:
            self._tracker.observe(gid, time, count)
        nursery = self._nurseries[process]
        if gid in nursery:
            nursery.touch(gid, time, count)
            return AccessOutcome(cache=NURSERY, effects=[])
        probation = self._probations[process]
        if gid in probation:
            trace = probation.touch(gid, time, count)
            effects: list[Effect] = []
            if self._qualifies_on_hit(gid, trace, time) and not trace.pinned:
                self._promote_to_shared(process, trace, probation, time, effects)
            return AccessOutcome(cache=PROBATION, effects=effects)
        if self.shared.contains(gid):
            # A process may hit code it never compiled (or whose own
            # copy already died): it links to the shared copy.
            self.shared.attach(gid, process, module_id)
            self.shared.touch(gid, time, count, process)
            return AccessOutcome(cache=SHARED_PERSISTENT, effects=[])
        raise KeyError(
            f"on_hit called for trace {gid} not resident for process {process}"
        )

    def insert(
        self, process: int, gid: int, size: int, module_id: int, time: int
    ) -> InsertOutcome:
        if self.shared.contains(gid):
            # The dedup win: identical content is already shared, so
            # the process attaches instead of generating code.
            self.shared.attach(gid, process, module_id)
            return InsertOutcome(effects=[], deduped=True)
        effects: list[Effect] = []
        self._insert_new_trace(process, gid, size, module_id, time, effects)
        return InsertOutcome(effects=effects, deduped=False)

    def unmap_module(
        self, process: int, module_id: int, time: int
    ) -> list[Effect]:
        effects: list[Effect] = []
        for cache in (self._nurseries[process], self._probations[process]):
            for trace in cache.remove_module(module_id):
                effects.append(
                    Evicted(
                        trace_id=trace.trace_id,
                        size=trace.size,
                        cache=cache.name,
                        reason=EvictionReason.UNMAP,
                    )
                )
        evicted, detached = self.shared.detach_module(process, module_id)
        for gid in detached:
            self._drop_pin_claim(process, gid)
        for trace in evicted:
            self._forget(trace.trace_id)
            effects.append(
                Evicted(
                    trace_id=trace.trace_id,
                    size=trace.size,
                    cache=SHARED_PERSISTENT,
                    reason=EvictionReason.UNMAP,
                )
            )
        return effects

    def pin(self, process: int, gid: int) -> bool:
        for cache in (self._nurseries[process], self._probations[process]):
            if gid in cache:
                cache.pin(gid)
                return True
        if self.shared.contains(gid):
            self._pin_claims.setdefault(gid, set()).add(process)
            self.shared.pin(gid)
            return True
        return False

    def unpin(self, process: int, gid: int) -> bool:
        for cache in (self._nurseries[process], self._probations[process]):
            if gid in cache:
                cache.unpin(gid)
                return True
        if self.shared.contains(gid):
            self._drop_pin_claim(process, gid)
            return True
        return False

    def check_invariants(self) -> None:
        self.shared.check_invariants()
        for process in range(self.n_processes):
            nursery = self._nurseries[process]
            probation = self._probations[process]
            nursery.check_invariants()
            probation.check_invariants()
            both = set(nursery.arena.trace_ids()) & set(
                probation.arena.trace_ids()
            )
            if both:
                raise InvariantViolation(
                    "dual-residency",
                    f"traces {sorted(both)} resident in process {process}'s "
                    "nursery and probation",
                    cache=NURSERY,
                    trace_id=min(both),
                )

    def _iter_caches(self) -> Iterable[CodeCache]:
        yield from self._nurseries
        yield from self._probations
        yield self.shared._cache

    # -- internals -------------------------------------------------------

    def _qualifies_on_hit(self, gid: int, trace: CachedTrace, time: int) -> bool:
        if self._tracker is not None:
            return self._tracker.is_hot(gid, time)
        return (
            self.config.promotion_mode is PromotionMode.ON_HIT
            and trace.access_count >= self.config.promotion_threshold
        )

    def _qualifies_on_eviction(self, victim: CachedTrace, time: int) -> bool:
        if self._tracker is not None:
            return self._tracker.is_hot(victim.trace_id, time)
        return (
            self.config.promotion_mode is PromotionMode.ON_EVICTION
            and victim.access_count >= self.config.promotion_threshold
        )

    def _insert_new_trace(
        self,
        process: int,
        gid: int,
        size: int,
        module_id: int,
        time: int,
        effects: list[Effect],
    ) -> None:
        nursery = self._nurseries[process]
        if size > nursery.capacity:
            # Oversized-trace fallback, mirroring the generational
            # manager: place directly in the largest cache that fits.
            probation = self._probations[process]
            if self.shared.capacity >= size and self.shared.capacity >= probation.capacity:
                victims = self.shared.insert(gid, size, time, process, module_id)
                effects.append(
                    Inserted(trace_id=gid, size=size, cache=SHARED_PERSISTENT)
                )
                for victim in victims:
                    self._forget(victim.trace_id)
                    effects.append(
                        Evicted(
                            trace_id=victim.trace_id,
                            size=victim.size,
                            cache=SHARED_PERSISTENT,
                            reason=EvictionReason.CAPACITY,
                        )
                    )
                return
            if probation.capacity >= size:
                result = probation.insert(gid, size, module_id, time)
                effects.append(Inserted(trace_id=gid, size=size, cache=PROBATION))
                for victim in result.evicted:
                    self._handle_probation_eviction(process, victim, time, effects)
                return
            return  # uncacheable: no cache will ever hold it
        result = nursery.insert(gid, size, module_id, time)
        effects.append(Inserted(trace_id=gid, size=size, cache=NURSERY))
        for victim in result.evicted:
            self._promote_to_probation(process, victim, time, effects)

    def _promote_to_probation(
        self,
        process: int,
        victim: CachedTrace,
        time: int,
        effects: list[Effect],
    ) -> None:
        nursery = self._nurseries[process]
        probation = self._probations[process]
        if victim.trace_id in nursery:
            nursery.remove(victim.trace_id)
        if victim.size > probation.capacity:
            effects.append(
                Evicted(
                    trace_id=victim.trace_id,
                    size=victim.size,
                    cache=NURSERY,
                    reason=EvictionReason.CAPACITY,
                )
            )
            return
        result = probation.insert(victim.trace_id, victim.size, victim.module_id, time)
        if victim.pinned:
            probation.pin(victim.trace_id)
        effects.append(
            Promoted(
                trace_id=victim.trace_id,
                size=victim.size,
                src=NURSERY,
                dst=PROBATION,
            )
        )
        for displaced in result.evicted:
            self._handle_probation_eviction(process, displaced, time, effects)

    def _handle_probation_eviction(
        self,
        process: int,
        victim: CachedTrace,
        time: int,
        effects: list[Effect],
    ) -> None:
        if self._qualifies_on_eviction(victim, time):
            self._promote_to_shared(
                process, victim, self._probations[process], time, effects
            )
        else:
            effects.append(
                Evicted(
                    trace_id=victim.trace_id,
                    size=victim.size,
                    cache=PROBATION,
                    reason=EvictionReason.CAPACITY,
                )
            )

    def _promote_to_shared(
        self,
        process: int,
        trace: CachedTrace,
        src: CodeCache,
        time: int,
        effects: list[Effect],
    ) -> None:
        if trace.trace_id in src:
            src.remove(trace.trace_id)
        if self.shared.contains(trace.trace_id):
            # Another process already graduated identical content: the
            # local copy is dropped and the process attaches (a
            # relocation-priced move, but no new shared bytes).
            self.shared.attach(trace.trace_id, process, trace.module_id)
            effects.append(
                Promoted(
                    trace_id=trace.trace_id,
                    size=trace.size,
                    src=src.name,
                    dst=SHARED_PERSISTENT,
                )
            )
            return
        if trace.size > self.shared.capacity:
            effects.append(
                Evicted(
                    trace_id=trace.trace_id,
                    size=trace.size,
                    cache=src.name,
                    reason=EvictionReason.CAPACITY,
                )
            )
            return
        victims = self.shared.insert(
            trace.trace_id, trace.size, time, process, trace.module_id
        )
        if trace.pinned:
            self._pin_claims.setdefault(trace.trace_id, set()).add(process)
            self.shared.pin(trace.trace_id)
        effects.append(
            Promoted(
                trace_id=trace.trace_id,
                size=trace.size,
                src=src.name,
                dst=SHARED_PERSISTENT,
            )
        )
        for victim in victims:
            self._forget(victim.trace_id)
            effects.append(
                Evicted(
                    trace_id=victim.trace_id,
                    size=victim.size,
                    cache=SHARED_PERSISTENT,
                    reason=EvictionReason.CAPACITY,
                )
            )

    def _drop_pin_claim(self, process: int, gid: int) -> None:
        claims = self._pin_claims.get(gid)
        if claims is None:
            return
        claims.discard(process)
        if not claims:
            del self._pin_claims[gid]
            if self.shared.contains(gid):
                self.shared.unpin(gid)

    def _forget(self, gid: int) -> None:
        if self._tracker is not None:
            self._tracker.forget(gid)
        self._pin_claims.pop(gid, None)


# ----------------------------------------------------------------------
# shared-all: one hierarchy for everyone
# ----------------------------------------------------------------------


class SharedAllGroup(SharedCacheGroup):
    """One generational hierarchy serves every process.

    Maximum dedup (a trace exists at most once anywhere) and maximum
    interference (everyone churns everyone's nursery).  Group-level
    reference counting preserves the unmap contract: a trace dies on
    unmap only when no process still maps its module.
    """

    def __init__(
        self,
        capacities: Sequence[int],
        config: GenerationalConfig,
        sharing: SharingConfig,
    ) -> None:
        super().__init__(capacities, config, sharing)
        self._manager = GenerationalCacheManager(sum(capacities), config)
        #: gid -> {module id -> bitmask of processes mapping it from
        #: that module}.  A process appears in at most one module's
        #: mask per gid (latest mapping wins).  Bitmasks keep this
        #: O(gids x modules) rather than O(gids x processes) — the
        #: difference between kilobytes and megabytes for 1000-process
        #: fleets replaying a handful of distinct binaries.
        self._attachments: dict[int, dict[int, int]] = {}
        self._pin_claims: dict[int, set[int]] = {}
        self.name = f"group[shared-all x{self.n_processes}, {config.label()}]"

    def lookup(self, process: int, gid: int) -> str | None:
        return self._manager.lookup(gid)

    def on_hit(
        self, process: int, gid: int, time: int, count: int, module_id: int
    ) -> AccessOutcome:
        outcome = self._manager.on_hit(gid, time, count)
        self._attach(gid, process, module_id)
        self._sync_attachments(outcome.effects)
        return outcome

    def insert(
        self, process: int, gid: int, size: int, module_id: int, time: int
    ) -> InsertOutcome:
        if self._manager.lookup(gid) is not None:
            self._attach(gid, process, module_id)
            return InsertOutcome(effects=[], deduped=True)
        effects = self._manager.insert(gid, size, module_id, time)
        if self._manager.lookup(gid) is not None:
            self._attachments[gid] = {module_id: 1 << process}
        self._sync_attachments(effects)
        return InsertOutcome(effects=effects, deduped=False)

    def unmap_module(
        self, process: int, module_id: int, time: int
    ) -> list[Effect]:
        effects: list[Effect] = []
        bit = 1 << process
        mine = [
            gid
            for gid, holders in self._attachments.items()
            if holders.get(module_id, 0) & bit
        ]
        for gid in mine:
            holders = self._attachments[gid]
            mask = holders[module_id] & ~bit
            if mask:
                holders[module_id] = mask
            else:
                del holders[module_id]
            self._drop_pin_claim(process, gid)
            if holders:
                continue  # other processes still map this code
            del self._attachments[gid]
            for cache in self._manager.caches():
                if gid in cache:
                    trace = cache.remove(gid)
                    effects.append(
                        Evicted(
                            trace_id=trace.trace_id,
                            size=trace.size,
                            cache=cache.name,
                            reason=EvictionReason.UNMAP,
                        )
                    )
                    break
        return effects

    def pin(self, process: int, gid: int) -> bool:
        if not self._manager.pin(gid):
            return False
        self._pin_claims.setdefault(gid, set()).add(process)
        return True

    def unpin(self, process: int, gid: int) -> bool:
        if self._manager.lookup(gid) is None:
            return False
        self._drop_pin_claim(process, gid)
        return True

    def check_invariants(self) -> None:
        self._manager.check_invariants()
        resident: set[int] = set()
        for cache in self._manager.caches():
            resident |= set(cache.arena.trace_ids())
        attached = set(self._attachments)
        if resident != attached:
            raise InvariantViolation(
                "shared-attachment",
                f"residency/attachment disagree: resident-only="
                f"{sorted(resident - attached)}, attached-only="
                f"{sorted(attached - resident)}",
                cache=self._manager.name,
            )

    def _iter_caches(self) -> Iterable[CodeCache]:
        yield from self._manager.caches()

    def _attach(self, gid: int, process: int, module_id: int) -> None:
        """Record that *process* maps *gid* via *module_id* (latest
        mapping wins, as a remap moves the process between masks)."""
        holders = self._attachments.setdefault(gid, {})
        bit = 1 << process
        mask = holders.get(module_id, 0)
        if not mask & bit:
            for other, other_mask in holders.items():
                if other_mask & bit:
                    other_mask &= ~bit
                    if other_mask:
                        holders[other] = other_mask
                    else:
                        del holders[other]
                    break
        holders[module_id] = mask | bit

    def _sync_attachments(self, effects: list[Effect]) -> None:
        for effect in effects:
            if isinstance(effect, Evicted):
                self._attachments.pop(effect.trace_id, None)
                self._pin_claims.pop(effect.trace_id, None)

    def _drop_pin_claim(self, process: int, gid: int) -> None:
        claims = self._pin_claims.get(gid)
        if claims is None:
            return
        claims.discard(process)
        if not claims:
            del self._pin_claims[gid]
            self._manager.unpin(gid)
