"""The reference-counted shared persistent cache.

One :class:`SharedPersistentCache` wraps a single
:class:`~repro.policies.base.CodeCache` arena holding one physical copy
per distinct trace content (gids from the
:class:`~repro.shared.identity.TraceInterner`).  Around it the class
keeps the cross-process bookkeeping the paper's single-process
persistent cache never needed:

* **Attachments** — which processes map each trace, and from which of
  their modules.  Attaching is how a process starts executing a copy
  another process compiled (ShareJIT's dedup win).
* **Unmap invalidation** — ``detach_module`` drops one process's claim;
  the physical copy is evicted only when *every* sharing process has
  unmapped the trace's module.  Evicting earlier would invalidate code
  another process is still mapped to.
* **Per-process hit accounting** — who is actually reusing the shared
  copies, for the experiment tables.

Mutating the wrapped arena directly from outside :mod:`repro.shared`
is a layering violation (enforced by the ``shared-cache-api`` cachelint
rule); other layers drive it through the cache group manager.
"""

from __future__ import annotations

from repro.errors import InvariantViolation, UnknownTraceError
from repro.policies.base import CachedTrace, CodeCache

#: Cache name used in effects and hit breakdowns.
SHARED_PERSISTENT = "shared-persistent"


class SharedPersistentCache:
    """A content-deduplicated persistent cache shared by N processes."""

    def __init__(self, cache: CodeCache) -> None:
        self._cache = cache
        #: gid -> {process index -> module id it attached with}.
        self._attachments: dict[int, dict[int, int]] = {}
        #: Hits served, per process index.
        self.hits_by_process: dict[int, int] = {}
        #: Times attach() reused an already-resident copy.
        self.attach_reuses = 0
        #: Bytes of compilation avoided by those reuses.
        self.reused_bytes = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self._cache.name

    @property
    def capacity(self) -> int:
        return self._cache.capacity

    @property
    def used_bytes(self) -> int:
        return self._cache.used_bytes

    @property
    def n_traces(self) -> int:
        return self._cache.n_traces

    def contains(self, gid: int) -> bool:
        """True when a physical copy of *gid* is resident."""
        return gid in self._cache

    def processes_of(self, gid: int) -> tuple[int, ...]:
        """Process indices currently attached to *gid* (sorted)."""
        return tuple(sorted(self._attachments.get(gid, ())))

    def resident_gids(self) -> list[int]:
        """Resident gids in arena address order."""
        return [trace.trace_id for trace in self._cache.traces()]

    def trace(self, gid: int) -> CachedTrace:
        """The resident record for *gid* (raises if absent)."""
        return self._cache.get(gid)

    def fragmentation(self) -> float:
        return self._cache.fragmentation()

    # ------------------------------------------------------------------
    # Mutation (confined to repro.shared by the shared-cache-api rule)
    # ------------------------------------------------------------------

    def insert(
        self, gid: int, size: int, time: int, process: int, module_id: int
    ) -> list[CachedTrace]:
        """Insert the first physical copy of *gid*, attached by
        *process*; returns the victims the placement evicted (their
        attachments are already cleared)."""
        result = self._cache.insert(gid, size, module_id, time)
        self._attachments[gid] = {process: module_id}
        for victim in result.evicted:
            self._attachments.pop(victim.trace_id, None)
        return result.evicted

    def attach(self, gid: int, process: int, module_id: int) -> None:
        """Record that *process* now maps the resident copy of *gid*
        (compiled by some other process) from *module_id*.

        Raises:
            UnknownTraceError: if no copy is resident.
        """
        if gid not in self._cache:
            raise UnknownTraceError(
                f"cannot attach to non-resident shared trace {gid}"
            )
        holders = self._attachments.setdefault(gid, {})
        if process not in holders:
            self.attach_reuses += 1
            self.reused_bytes += self._cache.get(gid).size
        holders[process] = module_id

    def touch(self, gid: int, time: int, count: int, process: int) -> CachedTrace:
        """Record *count* hits by *process* on the shared copy."""
        trace = self._cache.touch(gid, time, count)
        self.hits_by_process[process] = (
            self.hits_by_process.get(process, 0) + count
        )
        return trace

    def detach_module(
        self, process: int, module_id: int
    ) -> tuple[list[CachedTrace], list[int]]:
        """Drop *process*'s claims made from *module_id*.

        A trace is physically evicted only when its last attachment
        goes — other processes may still be mapped to the module's
        code.

        Returns:
            ``(evicted, detached)``: the physically removed traces, and
            the gids whose claim was dropped (including those that left
            the copy resident for other sharers).
        """
        evicted: list[CachedTrace] = []
        detached: list[int] = []
        for gid in [
            gid
            for gid, holders in self._attachments.items()
            if holders.get(process) == module_id
        ]:
            holders = self._attachments[gid]
            del holders[process]
            detached.append(gid)
            if not holders:
                del self._attachments[gid]
                evicted.append(self._cache.remove(gid))
        return evicted, detached

    def evict(self, gid: int) -> CachedTrace:
        """Capacity-evict the copy of *gid*, clearing all attachments."""
        self._attachments.pop(gid, None)
        return self._cache.remove(gid)

    def pin(self, gid: int) -> None:
        self._cache.pin(gid)

    def unpin(self, gid: int) -> None:
        self._cache.unpin(gid)

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Residency and attachments must agree exactly.

        Raises:
            InvariantViolation: a resident copy has no sharers, or an
                attachment references a non-resident copy.
        """
        self._cache.check_invariants()
        resident = set(self._cache.arena.trace_ids())
        attached = set(self._attachments)
        if resident != attached:
            raise InvariantViolation(
                "shared-attachment",
                f"residency/attachment disagree: resident-only="
                f"{sorted(resident - attached)}, attached-only="
                f"{sorted(attached - resident)}",
                cache=self.name,
            )
        for gid, holders in self._attachments.items():
            if not holders:
                raise InvariantViolation(
                    "shared-attachment",
                    f"shared trace {gid} resident with zero sharers",
                    cache=self.name,
                    trace_id=gid,
                )
