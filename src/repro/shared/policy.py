"""Sharing policies and the TRRIP-style reuse-temperature signal.

Three sharing policies span the design space the ShareJIT paper
explores:

* ``private`` — the paper's baseline: every process owns a full
  nursery/probation/persistent hierarchy; nothing is shared.
* ``shared-persistent`` — per-process nursery and probation
  generations in front of one reference-counted persistent cache.
  Only traces that proved themselves graduate into shared memory, so
  churn stays process-local (ShareJIT's "share the long-lived code"
  deviation from a fully shared cache).
* ``shared-all`` — one hierarchy serves every process (maximum
  dedup, maximum cross-process interference; the other endpoint).

Promotion into the shared persistent cache normally uses the paper's
fixed access-count threshold.  With :attr:`SharingConfig.temperature`
set, a decayed per-trace reuse temperature replaces the raw count
(TRRIP-style): every hit adds 1, and the accumulated value halves every
``temperature_half_life`` virtual instructions, so a burst of old hits
cannot promote a trace that stopped being reused.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigError


class SharingPolicy(enum.Enum):
    """How N processes' cache hierarchies relate."""

    PRIVATE = "private"
    SHARED_PERSISTENT = "shared-persistent"
    SHARED_ALL = "shared-all"


#: Mix kinds the shared experiment family composes.
MIX_KINDS = ("homogeneous", "heterogeneous")

#: Policy variant names accepted by job specs and the experiment table
#: (``shared-persistent-temp`` = shared-persistent with the temperature
#: promotion knob on).
POLICY_VARIANTS = (
    "private",
    "shared-persistent",
    "shared-persistent-temp",
    "shared-all",
)


@dataclass(frozen=True)
class SharingConfig:
    """Configuration of one cache group.

    Attributes:
        policy: Sharing policy.
        temperature: Replace the fixed promotion threshold with the
            decayed reuse temperature.
        temperature_threshold: Temperature at which a probation trace
            qualifies for the shared persistent cache.
        temperature_half_life: Virtual instructions for a trace's
            temperature to halve.
    """

    policy: SharingPolicy = SharingPolicy.SHARED_PERSISTENT
    temperature: bool = False
    temperature_threshold: float = 2.0
    temperature_half_life: int = 1_000_000

    def __post_init__(self) -> None:
        if self.temperature_threshold <= 0:
            raise ConfigError(
                f"temperature threshold must be > 0, got "
                f"{self.temperature_threshold}"
            )
        if self.temperature_half_life < 1:
            raise ConfigError(
                f"temperature half-life must be >= 1, got "
                f"{self.temperature_half_life}"
            )

    def label(self) -> str:
        """Short human-readable form for tables and manager names."""
        suffix = "+temp" if self.temperature else ""
        return self.policy.value + suffix


def sharing_config_for(variant: str) -> SharingConfig:
    """The :class:`SharingConfig` a policy-variant name denotes.

    Raises:
        ConfigError: for a name outside :data:`POLICY_VARIANTS`.
    """
    if variant not in POLICY_VARIANTS:
        raise ConfigError(
            f"unknown sharing policy {variant!r}; choose from "
            f"{', '.join(POLICY_VARIANTS)}"
        )
    if variant == "shared-persistent-temp":
        return SharingConfig(
            policy=SharingPolicy.SHARED_PERSISTENT, temperature=True
        )
    return SharingConfig(policy=SharingPolicy(variant))


class TemperatureTracker:
    """Per-trace reuse temperature with exponential decay.

    The tracker is lazy: temperatures decay only when observed, so the
    cost is one power per touch instead of a global sweep.
    """

    def __init__(self, threshold: float, half_life: int) -> None:
        if threshold <= 0:
            raise ConfigError(f"temperature threshold must be > 0, got {threshold}")
        if half_life < 1:
            raise ConfigError(f"temperature half-life must be >= 1, got {half_life}")
        self.threshold = threshold
        self.half_life = half_life
        self._state: dict[int, tuple[float, int]] = {}

    def observe(self, gid: int, time: int, count: int = 1) -> float:
        """Record *count* reuses of *gid* at *time*; returns the new
        temperature."""
        value = self._decayed(gid, time) + count
        self._state[gid] = (value, time)
        return value

    def temperature(self, gid: int, time: int) -> float:
        """The decayed temperature of *gid* at *time* (0 if unseen)."""
        return self._decayed(gid, time)

    def is_hot(self, gid: int, time: int) -> bool:
        """True when *gid*'s decayed temperature reaches the threshold."""
        return self._decayed(gid, time) >= self.threshold

    def forget(self, gid: int) -> None:
        """Drop all state for *gid* (it left the system)."""
        self._state.pop(gid, None)

    def _decayed(self, gid: int, time: int) -> float:
        state = self._state.get(gid)
        if state is None:
            return 0.0
        value, last = state
        elapsed = max(0, time - last)
        if elapsed == 0:
            return value
        return value * 0.5 ** (elapsed / self.half_life)
