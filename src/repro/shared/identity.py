"""Content-addressed trace identity.

Two processes running the same binary generate structurally identical
traces with unrelated trace ids.  Sharing a cache across processes
therefore needs an identity that depends only on *what the trace is*,
not on who generated it: :class:`TraceKey` is a stable SHA-256 content
address (the same hashing discipline as :func:`repro.rand.derive_seed`,
so keys never depend on ``PYTHONHASHSEED`` or process state).

Two constructors cover the two places identity is needed:

* :meth:`TraceKey.from_blocks` hashes a materialized trace's
  block/instruction structure (opcode sequence, branch kinds, and
  *trace-relative* branch targets — block ids and addresses differ
  across processes and are deliberately excluded).
* :meth:`TraceKey.from_workload` derives the key of a synthesized-log
  trace from its workload-level identity ``(namespace, trace id, size,
  module)``; the same benchmark binary always yields the same keys, so
  homogeneous process mixes deduplicate fully.

The :class:`TraceInterner` maps keys to compact integer *gids* (what
the shared cache group stores) and accounts the duplicate bytes it
folded away.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import InvariantViolation
from repro.isa.blocks import BasicBlock

#: Bump when the canonical content serialization changes; part of every
#: digest, so old and new keys can never collide silently.
TRACE_KEY_VERSION = 1

#: Hex digits kept from the SHA-256 digest (128 bits — collision-safe
#: for any plausible trace population).
_DIGEST_HEX_LEN = 32


def _digest(parts: Iterable[str]) -> str:
    body = f"trace-key-v{TRACE_KEY_VERSION}:" + "\x1f".join(parts)
    return hashlib.sha256(body.encode("utf-8")).hexdigest()[:_DIGEST_HEX_LEN]


@dataclass(frozen=True, order=True)
class TraceKey:
    """Content address of one trace.

    Attributes:
        digest: Truncated SHA-256 hex digest of the canonical content
            serialization.
    """

    digest: str

    @classmethod
    def from_blocks(cls, blocks: Sequence[BasicBlock]) -> "TraceKey":
        """Key a materialized trace by its instruction structure.

        Block ids, addresses and module ids are process-local, so the
        serialization uses only what two processes executing the same
        code would agree on: per-block instruction streams (opcode and
        branch kind) and branch targets normalized to the target
        block's *position within the trace* (external targets collapse
        to a single marker).
        """
        positions = {block.block_id: idx for idx, block in enumerate(blocks)}
        parts: list[str] = [f"blocks={len(blocks)}"]
        for block in blocks:
            for instruction in block.instructions:
                target = instruction.target_block
                if target is None:
                    where = "-"
                elif target in positions:
                    where = f"i{positions[target]}"
                else:
                    where = "ext"
                parts.append(
                    f"{instruction.opcode.value},"
                    f"{instruction.branch_kind.value},"
                    f"{int(instruction.backward)},{where}"
                )
            parts.append("|")
        return cls(digest=_digest(parts))

    @classmethod
    def from_workload(
        cls, namespace: str, trace_id: int, size: int, module_id: int
    ) -> "TraceKey":
        """Key a synthesized-log trace by its workload identity.

        Synthesized logs carry no instruction bodies; the trace's
        identity within its binary is ``(trace id, size, module)``, and
        *namespace* names the binary (benchmark or shared library), so
        the same program yields the same keys in every process.
        """
        return cls(
            digest=_digest(
                [f"workload:{namespace}", str(trace_id), str(size), str(module_id)]
            )
        )

    def short(self) -> str:
        """First 12 hex digits, for labels and logs."""
        return self.digest[:12]


class TraceInterner:
    """Assigns one compact integer *gid* per distinct :class:`TraceKey`.

    The shared cache group stores gids (cheap dict keys with
    deterministic ordering); the interner owns the key <-> gid mapping
    and the dedup accounting.
    """

    def __init__(self) -> None:
        self._gids: dict[TraceKey, int] = {}
        self._keys: list[TraceKey] = []
        self._sizes: list[int] = []
        #: intern() calls that found an existing key.
        self.duplicate_requests = 0
        #: Total bytes of those duplicate requests (the code that did
        #: not need a second copy anywhere in the system).
        self.duplicate_bytes = 0

    def intern(self, key: TraceKey, size: int) -> tuple[int, bool]:
        """Return ``(gid, fresh)`` for *key*; ``fresh`` is True when
        the key was not seen before.

        Raises:
            InvariantViolation: if *key* was previously interned with a
                different size — content-equal traces must be
                byte-equal.
        """
        gid = self._gids.get(key)
        if gid is not None:
            if self._sizes[gid] != size:
                raise InvariantViolation(
                    "content-identity",
                    f"trace key {key.short()} interned with size {size} "
                    f"but previously {self._sizes[gid]}",
                    trace_id=gid,
                )
            self.duplicate_requests += 1
            self.duplicate_bytes += size
            return gid, False
        gid = len(self._keys)
        self._gids[key] = gid
        self._keys.append(key)
        self._sizes.append(size)
        return gid, True

    def lookup(self, key: TraceKey) -> int | None:
        """The gid for *key*, or None if never interned."""
        return self._gids.get(key)

    def key_of(self, gid: int) -> TraceKey:
        """The key a gid was assigned to."""
        return self._keys[gid]

    def size_of(self, gid: int) -> int:
        """The byte size recorded for a gid."""
        return self._sizes[gid]

    @property
    def n_unique(self) -> int:
        """Distinct keys interned."""
        return len(self._keys)

    @property
    def unique_bytes(self) -> int:
        """Total bytes over distinct keys."""
        return sum(self._sizes)
