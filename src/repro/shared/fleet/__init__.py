"""Fleet-scale shared-cache simulation.

The :mod:`repro.shared` reference stack (eager per-process logs, a
per-record interleaver, :class:`~repro.shared.simulator.MultiProcessSimulator`)
is built for the paper's 2–8 process tables.  This package is the
same experiment at four more doublings — P = 1024 and beyond — built
from three scaling ideas:

* **streaming scheduler** (:func:`stream_segments`): O(1)-amortized
  turns over stream *shapes*, yielding index-range
  :class:`Segment`\\ s instead of per-record objects, with
  spawn/exit churn (:class:`ProcessStream`, :func:`churn_plan`) and
  optional weighted draws;
* **lazy workloads** (:class:`FleetWorkloads`): each distinct
  (benchmark, library-reach) content is synthesized and compiled
  once; processes are assignments plus cursors, so memory scales with
  *distinct* workloads, not the process count;
* **columnar replay** (:class:`FleetSimulator`): the reference
  simulator's exact record semantics driven over shared compiled
  columns — byte-identical results at small P, a thousand processes
  at large P.

The Zipf library-popularity model feeding heterogeneous fleets lives
with the composition code (:func:`repro.shared.compose.zipf_reaches`).

This package root is the public surface; the ``fleet-api`` cachelint
rule confines the scheduler/workload/simulator internals to it.
"""

from repro.shared.fleet.scheduler import (
    ProcessStream,
    Segment,
    stream_segments,
)
from repro.shared.fleet.simulator import FleetSimulator
from repro.shared.fleet.workloads import (
    DEFAULT_CHURN_FRACTION,
    DistinctWorkload,
    FleetWorkloads,
    churn_plan,
)

__all__ = [
    "DEFAULT_CHURN_FRACTION",
    "DistinctWorkload",
    "FleetSimulator",
    "FleetWorkloads",
    "ProcessStream",
    "Segment",
    "churn_plan",
    "stream_segments",
]
