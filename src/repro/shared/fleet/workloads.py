"""Lazy per-process workloads over shared compiled logs (fleet internals).

``build_process_workloads`` materializes one object ``TraceLog`` per
process — O(P) record objects even when all P processes run the same
binary.  A fleet holds the *distinct* workload contents instead:

* each distinct ``(benchmark, library reach)`` pair is synthesized
  once (through the artifact cache), composed once, and compiled once
  into one columnar log (:class:`DistinctWorkload`);
* every process is an *assignment* to a distinct workload — its replay
  state is just a cursor over the shared columns, so fleet memory is
  O(distinct workloads) + O(P) integers, not O(P) logs.

Because per-process library sets are nested catalog prefixes (the
Zipf *reach* model — :func:`repro.shared.compose.zipf_reaches`), the
distinct count is bounded by ``len(palette) * len(catalog)`` however
large the fleet grows.

Churn plans live here too: :func:`churn_plan` draws which processes
spawn late and which are killed early from a seeded substream, so a
churned fleet remains a pure function of its cell parameters.

This module is fleet-internal (``fleet-api`` lint rule): other layers
import the package root.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigError
from repro.fastpath import OP_CREATE, log_columns
from repro.fastpath.artifacts import cached_log
from repro.rand import substream
from repro.shared.compose import (
    LIBRARY_CATALOG,
    ProcessWorkload,
    build_library_catalog,
    compose_with_libraries,
    workload_keys,
)
from repro.shared.fleet.scheduler import ProcessStream
from repro.shared.identity import TraceKey
from repro.workloads.catalog import get_profile

#: Fraction of fleet processes subject to each churn event kind.
DEFAULT_CHURN_FRACTION = 0.25


@dataclass
class DistinctWorkload:
    """One distinct workload content, compiled and shared by cursors.

    Attributes:
        name: Display name (mirrors :class:`ProcessWorkload` naming).
        columns: The packed ``(op, time, trace_id, size, module,
            repeat)`` columns every assigned process replays.
        keys: Content key per created trace id.
        n_records: Packed record count.
        total_trace_bytes: Sum of created trace sizes (capacity sizing).
        modules: Sorted module ids the workload creates traces in
            (early-exit cleanup unmaps exactly these).
        traces_by_module: Created trace ids grouped by module.
    """

    name: str
    columns: tuple
    keys: dict[int, TraceKey]
    n_records: int
    total_trace_bytes: int
    modules: tuple[int, ...]
    traces_by_module: dict[int, frozenset[int]]


def _distill(workload: ProcessWorkload) -> DistinctWorkload:
    """Compile one workload's log and index its create structure."""
    columns = log_columns(workload.log)
    op, _time, trace_id, size, module, _repeat = columns
    by_module: dict[int, set[int]] = {}
    total = 0
    for index, code in enumerate(op):
        if code == OP_CREATE:
            by_module.setdefault(module[index], set()).add(trace_id[index])
            total += size[index]
    return DistinctWorkload(
        name=workload.name,
        columns=columns,
        keys=workload.keys,
        n_records=len(op),
        total_trace_bytes=total,
        modules=tuple(sorted(by_module)),
        traces_by_module={
            mod: frozenset(traces) for mod, traces in by_module.items()
        },
    )


class FleetWorkloads:
    """P processes assigned onto D ≤ P distinct compiled workloads."""

    def __init__(
        self, distinct: list[DistinctWorkload], assignment: list[int]
    ) -> None:
        if not assignment:
            raise ConfigError("a fleet needs at least one process")
        for index in assignment:
            if not 0 <= index < len(distinct):
                raise ConfigError(
                    f"assignment references distinct workload {index} of "
                    f"{len(distinct)}"
                )
        self.distinct = distinct
        self.assignment = assignment

    @property
    def n_processes(self) -> int:
        return len(self.assignment)

    def workload_of(self, process: int) -> DistinctWorkload:
        """The distinct workload process *process* replays."""
        return self.distinct[self.assignment[process]]

    def lengths(self) -> list[int]:
        """Per-process stream lengths (scheduler input)."""
        return [self.workload_of(p).n_records for p in range(self.n_processes)]

    @classmethod
    def from_process_workloads(
        cls, workloads: Sequence[ProcessWorkload]
    ) -> "FleetWorkloads":
        """Wrap eagerly built workloads (the small-P compatibility path).

        ``build_process_workloads`` reuses one ``ProcessWorkload``
        object per distinct benchmark, so identity-dedup recovers the
        distinct set without hashing any content.
        """
        distinct: list[DistinctWorkload] = []
        index_of: dict[int, int] = {}
        assignment: list[int] = []
        for workload in workloads:
            key = id(workload)
            if key not in index_of:
                index_of[key] = len(distinct)
                distinct.append(_distill(workload))
            assignment.append(index_of[key])
        return cls(distinct, assignment)

    @classmethod
    def from_specs(
        cls,
        specs: Sequence[tuple[str, int]],
        seed: int = 42,
        scale_multiplier: float = 1.0,
        catalog: Sequence[str] = LIBRARY_CATALOG,
    ) -> "FleetWorkloads":
        """Lazily synthesize a fleet from ``(benchmark, reach)`` specs.

        Each distinct spec is synthesized/composed/compiled exactly
        once; the remaining P − D processes only record an assignment.
        App logs are synthesized once per distinct *benchmark* and the
        library catalog once per distinct *rank*, so total synthesis
        work is independent of the process count.

        Raises:
            ConfigError: for an empty fleet or a reach outside the
                catalog.
        """
        if not specs:
            raise ConfigError("a fleet needs at least one process")
        max_reach = 0
        for benchmark, reach in specs:
            if not 0 <= reach <= len(catalog):
                raise ConfigError(
                    f"library reach must be in [0, {len(catalog)}], got "
                    f"{reach} for {benchmark!r}"
                )
            max_reach = max(max_reach, reach)
        libraries = build_library_catalog(
            seed=seed,
            scale_multiplier=scale_multiplier,
            reach=max_reach,
            catalog=catalog,
        )
        app_logs: dict[str, object] = {}
        distinct: list[DistinctWorkload] = []
        index_of: dict[tuple[str, int], int] = {}
        assignment: list[int] = []
        for benchmark, reach in specs:
            key = (benchmark, reach)
            if key not in index_of:
                if benchmark not in app_logs:
                    profile = get_profile(benchmark)
                    app_logs[benchmark] = cached_log(
                        profile,
                        seed=seed,
                        scale=profile.default_scale * scale_multiplier,
                    )
                app_log = app_logs[benchmark]
                if reach:
                    workload = compose_with_libraries(
                        benchmark, app_log, libraries[:reach]
                    )
                else:
                    workload = ProcessWorkload(
                        name=benchmark,
                        log=app_log,
                        keys=workload_keys(benchmark, app_log),
                    )
                index_of[key] = len(distinct)
                distinct.append(_distill(workload))
            assignment.append(index_of[key])
        return cls(distinct, assignment)


def churn_plan(
    lengths: Sequence[int],
    seed: int = 42,
    fraction: float = DEFAULT_CHURN_FRACTION,
) -> list[ProcessStream]:
    """Deterministic spawn/exit churn over a fleet's streams.

    Each process independently spawns late with probability *fraction*
    (uniform spawn turn within the fleet's first ``2 P`` turns) and is
    killed early with probability *fraction* (keeping a uniform
    50–90% prefix of its records).  All draws come from one seeded
    substream, so the plan is a pure function of ``(lengths, seed,
    fraction)``.

    Raises:
        ConfigError: for a fraction outside ``[0, 1]``.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ConfigError(f"churn fraction must be in [0, 1], got {fraction:g}")
    rng = substream(seed, "shared.fleet.churn")
    horizon = max(1, 2 * len(lengths))
    streams: list[ProcessStream] = []
    for length in lengths:
        spawn_turn = 0
        limit = None
        if rng.random() < fraction:
            spawn_turn = rng.randrange(1, horizon + 1)
        if rng.random() < fraction:
            limit = int(length * (0.5 + 0.4 * rng.random()))
        streams.append(
            ProcessStream(length=length, spawn_turn=spawn_turn, limit=limit)
        )
    return streams
